//! The prepared-statement registry: parse/optimize once, execute many.
//!
//! This is the serving-layer realization of the paper's economics:
//! compile-time optimization of a dynamic plan is expensive and performed
//! **once**; each execution then pays only the cheap start-up decision.
//! The registry keys statements by normalized text, bounds its size with
//! LRU eviction, and owns the per-statement decision cache and
//! observed-cardinality feedback state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dqep_plan::{NodeId, Observations, PlanNode};
use dqep_sql::Query;
use parking_lot::Mutex;

use crate::decision::{CachedDecision, RegionKey};

/// Normalizes statement text for registry keying: trims, collapses
/// whitespace runs to single spaces, and drops a trailing `;`. Identifier
/// case is preserved (the catalog is case-sensitive), so normalization
/// never changes what a statement means — only how it is keyed.
#[must_use]
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    for token in sql.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(token);
    }
    while out.ends_with(';') {
        out.pop();
        while out.ends_with(' ') {
            out.pop();
        }
    }
    out
}

/// A statement optimized once into a dynamic plan, plus its per-statement
/// run-time state: the bind-time decision cache and the cardinality
/// observations fed back from completed executions.
#[derive(Debug)]
pub struct PreparedStatement {
    /// Normalized statement text (the registry key).
    pub sql: String,
    /// The parsed query: host-variable names, predicates, order-by.
    pub query: Query,
    /// The compile-time dynamic plan (choose-plan nodes included).
    pub plan: Arc<PlanNode>,
    decisions: Mutex<HashMap<RegionKey, CachedDecision>>,
    observations: Mutex<Observations>,
    invalidations: AtomicU64,
}

impl PreparedStatement {
    /// Wraps a freshly optimized statement.
    #[must_use]
    pub fn new(sql: String, query: Query, plan: Arc<PlanNode>) -> PreparedStatement {
        PreparedStatement {
            sql,
            query,
            plan,
            decisions: Mutex::new(HashMap::new()),
            observations: Mutex::new(Observations::new()),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The cached decision for a binding region, if any.
    #[must_use]
    pub fn decision(&self, key: &RegionKey) -> Option<CachedDecision> {
        self.decisions.lock().get(key).cloned()
    }

    /// Memoizes the arbitration outcome for a binding region.
    pub fn store_decision(&self, key: RegionKey, decision: CachedDecision) {
        self.decisions.lock().insert(key, decision);
    }

    /// Drops one region's cached decision (e.g. after its resolved plan
    /// failed retryably and execution fell back to full arbitration).
    pub fn invalidate_decision(&self, key: &RegionKey) {
        self.decisions.lock().remove(key);
    }

    /// Number of cached decisions currently held.
    #[must_use]
    pub fn cached_decisions(&self) -> usize {
        self.decisions.lock().len()
    }

    /// Snapshot of the statement's cardinality observations, for
    /// `evaluate_startup_observed`.
    #[must_use]
    pub fn observations(&self) -> Observations {
        self.observations.lock().clone()
    }

    /// Pins an observed cardinality for a plan node and clears the
    /// decision cache (used by tests and external feedback sources; the
    /// service's own loop goes through [`PreparedStatement::record_feedback`]).
    pub fn observe(&self, node: NodeId, cardinality: f64) {
        self.observations.lock().insert(node, cardinality);
        self.decisions.lock().clear();
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Feeds one execution's observed root cardinality back into the
    /// statement. If the observation leaves the current estimate interval
    /// — the compile-time interval, or a previously pinned observation —
    /// by more than a factor of `tolerance`, the observation is recorded
    /// (keyed by the dynamic plan root, so choose-plan equivalence-class
    /// expansion propagates it to every alternative), the decision cache
    /// is cleared, and later arbitrations re-optimize against the observed
    /// value. Returns whether an invalidation happened.
    pub fn record_feedback(&self, observed_rows: u64, tolerance: f64) -> bool {
        let tolerance = tolerance.max(1.0);
        let observed = (observed_rows as f64).max(1.0);
        let mut observations = self.observations.lock();
        let (lo, hi) = match observations.get(&self.plan.id) {
            Some(&pinned) => {
                let p = pinned.max(1.0);
                (p / tolerance, p * tolerance)
            }
            None => {
                let card = self.plan.stats.card;
                (card.lo().max(1.0) / tolerance, card.hi().max(1.0) * tolerance)
            }
        };
        if observed >= lo && observed <= hi {
            return false;
        }
        observations.insert(self.plan.id, observed_rows as f64);
        drop(observations);
        self.decisions.lock().clear();
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// How many times feedback invalidated this statement's decisions.
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

/// Registry hit/miss/eviction accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a fresh parse + optimize.
    pub misses: u64,
    /// Statements evicted by the LRU policy.
    pub evictions: u64,
    /// Statements currently resident.
    pub resident: usize,
}

impl RegistryStats {
    /// Hits over all lookups, in `[0, 1]`; 1.0 for an untouched registry.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Slot {
    stmt: Arc<PreparedStatement>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    map: HashMap<String, Slot>,
    tick: u64,
}

/// A bounded, LRU-evicting map from normalized statement text to
/// [`PreparedStatement`]. Lookups bump recency; inserts past capacity
/// evict the least recently used entry.
#[derive(Debug)]
pub struct PreparedRegistry {
    inner: Mutex<RegistryInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PreparedRegistry {
    /// A registry holding at most `capacity` statements (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> PreparedRegistry {
        PreparedRegistry {
            inner: Mutex::new(RegistryInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a normalized statement, bumping its recency. Counts a hit
    /// or a miss.
    #[must_use]
    pub fn get(&self, normalized: &str) -> Option<Arc<PreparedStatement>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(normalized) {
            Some(slot) => {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.stmt))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly prepared statement, evicting the LRU entry when
    /// over capacity. If another session inserted the same statement
    /// concurrently, the incumbent wins and is returned — callers always
    /// use the returned statement so feedback state is never split.
    pub fn insert(
        &self,
        normalized: String,
        stmt: Arc<PreparedStatement>,
    ) -> Arc<PreparedStatement> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.map.get_mut(&normalized) {
            slot.last_used = tick;
            return Arc::clone(&slot.stmt);
        }
        inner.map.insert(
            normalized,
            Slot {
                stmt: Arc::clone(&stmt),
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            // O(n) victim scan: capacities are small (dozens) and inserts
            // are rare once the working set is resident.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        stmt
    }

    /// Accounting snapshot.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: self.inner.lock().map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::{CatalogBuilder, SystemConfig};
    use dqep_core::Optimizer;
    use dqep_cost::Environment;
    use dqep_sql::parse_query;

    fn prepared(sql: &str) -> Arc<PreparedStatement> {
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 1000, 512, |r| r.attr("a", 1000.0).btree("a", false))
            .build()
            .unwrap();
        let norm = normalize_sql(sql);
        let query = parse_query(&norm, &cat).unwrap();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&query.expr).unwrap().plan;
        Arc::new(PreparedStatement::new(norm, query, plan))
    }

    #[test]
    fn normalization_collapses_whitespace_only() {
        assert_eq!(
            normalize_sql("  SELECT *\n FROM  r\tWHERE r.a < :x ; "),
            "SELECT * FROM r WHERE r.a < :x"
        );
        // Identifier case is preserved.
        assert_eq!(normalize_sql("SELECT * FROM R1"), "SELECT * FROM R1");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let reg = PreparedRegistry::new(2);
        let a = prepared("SELECT * FROM r WHERE r.a < :x");
        let b = prepared("SELECT * FROM r WHERE r.a > :x");
        let c = prepared("SELECT * FROM r WHERE r.a = :x");
        reg.insert(a.sql.clone(), Arc::clone(&a));
        reg.insert(b.sql.clone(), Arc::clone(&b));
        // Touch `a`, making `b` the LRU victim.
        assert!(reg.get(&a.sql).is_some());
        reg.insert(c.sql.clone(), Arc::clone(&c));
        assert!(reg.get(&a.sql).is_some());
        assert!(reg.get(&b.sql).is_none(), "b was evicted");
        assert!(reg.get(&c.sql).is_some());
        let stats = reg.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident, 2);
    }

    #[test]
    fn racing_inserts_keep_the_incumbent() {
        let reg = PreparedRegistry::new(4);
        let first = prepared("SELECT * FROM r WHERE r.a < :x");
        let second = prepared("SELECT * FROM r WHERE r.a < :x");
        let kept = reg.insert(first.sql.clone(), Arc::clone(&first));
        assert!(Arc::ptr_eq(&kept, &first));
        let kept = reg.insert(second.sql.clone(), Arc::clone(&second));
        assert!(Arc::ptr_eq(&kept, &first), "incumbent wins the race");
    }

    #[test]
    fn feedback_outside_interval_invalidates_once() {
        let stmt = prepared("SELECT * FROM r WHERE r.a < :x");
        let hi = stmt.plan.stats.card.hi();
        // Observation far above the estimate interval: invalidates.
        let breach = (hi * 10.0) as u64;
        assert!(stmt.record_feedback(breach, 2.0));
        assert_eq!(stmt.invalidations(), 1);
        assert!(
            stmt.observations().contains_key(&stmt.plan.id),
            "observation pinned at the plan root"
        );
        // The same observation again is now *inside* the pinned interval:
        // no repeated invalidation on a stable workload.
        assert!(!stmt.record_feedback(breach, 2.0));
        assert_eq!(stmt.invalidations(), 1);
    }

    #[test]
    fn feedback_inside_interval_is_accepted_silently() {
        let stmt = prepared("SELECT * FROM r WHERE r.a < :x");
        let inside = stmt.plan.stats.card.lo().max(1.0) as u64;
        assert!(!stmt.record_feedback(inside, 2.0));
        assert_eq!(stmt.invalidations(), 0);
        assert!(stmt.observations().is_empty());
    }
}
