//! Bind-time decision caching: binding regions and the cached arbitration
//! outcome per region.
//!
//! The start-up decision procedure is cheap but not free — one cost
//! function evaluation per DAG node. A serving workload binds the same
//! statement thousands of times, and nearby bindings almost always select
//! the same alternative (the paper's Figure 3 regions are wide). The
//! decision cache exploits that: each binding is mapped to a coarse
//! **region key** (one bucket per host-variable selectivity plus a memory
//! bucket), and the resolved plan chosen for a region is replayed for
//! every later binding landing in the same region.

use std::sync::Arc;

use dqep_algebra::Scalar;
use dqep_catalog::Catalog;
use dqep_cost::Bindings;
use dqep_plan::PlanNode;
use dqep_sql::{ParsedPredicate, Query};

/// A coarse equivalence class of bindings: one bucket index per unbound
/// selection predicate (in source order) plus a trailing memory bucket.
/// Bindings with equal keys get the same cached start-up decision.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegionKey(Vec<u32>);

/// How many pages one memory bucket spans.
const MEMORY_BUCKET_PAGES: f64 = 16.0;

/// Computes the region key for `bindings` against `query`.
///
/// Each host-variable selection `rel.attr < :v` is bucketed by the bound
/// value's position in the attribute's domain (`buckets` equal-width
/// buckets — the same uniform-domain model the cost functions use).
/// Unbound variables map to a sentinel bucket so they never alias a bound
/// region. The memory grant is bucketed in [`MEMORY_BUCKET_PAGES`]-page
/// steps.
#[must_use]
pub fn region_key(
    query: &Query,
    catalog: &Catalog,
    bindings: &Bindings,
    buckets: u32,
    memory_pages: f64,
) -> RegionKey {
    let buckets = buckets.max(1);
    let mut key = Vec::new();
    for pred in &query.predicates {
        let ParsedPredicate::Select(sel) = pred else {
            continue;
        };
        let Scalar::Host(var) = sel.rhs else {
            continue;
        };
        let bucket = match bindings.value(var) {
            Some(v) => {
                let domain = catalog.attribute(sel.attr).domain_size;
                let frac = (v as f64 / domain).clamp(0.0, 1.0);
                ((frac * buckets as f64) as u32).min(buckets - 1)
            }
            None => u32::MAX,
        };
        key.push(bucket);
    }
    key.push((memory_pages.max(0.0) / MEMORY_BUCKET_PAGES) as u32);
    RegionKey(key)
}

/// One memoized start-up arbitration: the alternative chosen for a binding
/// region, ready to execute without re-evaluating any cost function.
#[derive(Debug, Clone)]
pub struct CachedDecision {
    /// The resolved (choose-plan-free) plan the decision procedure picked.
    pub resolved: Arc<PlanNode>,
    /// Its predicted run time under the bindings that created the entry.
    pub predicted_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::{CatalogBuilder, SystemConfig};
    use dqep_sql::parse_query;

    fn fixture() -> (Catalog, Query) {
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 1000, 512, |r| r.attr("a", 1000.0).btree("a", false))
            .build()
            .unwrap();
        let q = parse_query("SELECT * FROM r WHERE r.a < :x", &cat).unwrap();
        (cat, q)
    }

    #[test]
    fn nearby_bindings_share_a_region() {
        let (cat, q) = fixture();
        let k1 = region_key(&q, &cat, &q.bindings(&[("x", 100)]).unwrap(), 10, 64.0);
        let k2 = region_key(&q, &cat, &q.bindings(&[("x", 150)]).unwrap(), 10, 64.0);
        let k3 = region_key(&q, &cat, &q.bindings(&[("x", 900)]).unwrap(), 10, 64.0);
        assert_eq!(k1, k2, "values in the same decile share a region");
        assert_ne!(k1, k3, "distant values do not");
    }

    #[test]
    fn memory_and_unbound_vars_split_regions() {
        let (cat, q) = fixture();
        let b = q.bindings(&[("x", 100)]).unwrap();
        let small = region_key(&q, &cat, &b, 10, 16.0);
        let large = region_key(&q, &cat, &b, 10, 512.0);
        assert_ne!(small, large, "memory grant is part of the region");
        let unbound = region_key(&q, &cat, &Bindings::new(), 10, 16.0);
        assert_ne!(unbound, small, "unbound variables get a sentinel bucket");
    }

    #[test]
    fn extreme_values_clamp_into_edge_buckets() {
        let (cat, q) = fixture();
        let lo = region_key(&q, &cat, &q.bindings(&[("x", -50)]).unwrap(), 8, 64.0);
        let lo2 = region_key(&q, &cat, &q.bindings(&[("x", 0)]).unwrap(), 8, 64.0);
        let hi = region_key(&q, &cat, &q.bindings(&[("x", 10_000)]).unwrap(), 8, 64.0);
        let hi2 = region_key(&q, &cat, &q.bindings(&[("x", 999)]).unwrap(), 8, 64.0);
        assert_eq!(lo, lo2);
        assert_eq!(hi, hi2);
        assert_ne!(lo, hi);
    }
}
