//! The [`QueryService`]: session lifecycle from submission to completion.
//!
//! A fixed pool of worker threads drains a shared job queue. Each worker
//! owns a **replica** of the stored database, generated deterministically
//! from the same catalog and seed — replicas are bit-identical, every
//! session's I/O is accounted on its worker's private disk, and
//! per-session [`dqep_executor::SharedCounters`] snapshots are merged
//! into service totals only at completion, so concurrent queries never
//! bleed work into each other's accounting.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dqep_catalog::Catalog;
use dqep_core::Optimizer;
use dqep_cost::{Bindings, Environment};
use dqep_executor::{
    execute_plan_reopt_ctx, run_compiled, run_dynamic, ExecContext, ExecMode, ExecSummary,
    PlanCacheInfo, ReoptConfig, ResourceLimits, SharedCounters,
};
use dqep_plan::evaluate_startup_observed;
use dqep_sql::parse_query;
use dqep_storage::{FaultPlan, StoredDatabase, ValueDistribution};
use parking_lot::Mutex;

use crate::admission::MemoryPool;
use crate::decision::{region_key, CachedDecision};
use crate::error::ServiceError;
use crate::metrics::{MetricsRegistry, MetricsReport};
use crate::registry::{normalize_sql, PreparedRegistry, PreparedStatement, RegistryStats};

/// Service-wide tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (concurrent sessions). Minimum 1.
    pub workers: usize,
    /// Prepared-statement registry capacity (LRU-evicted past this).
    pub registry_capacity: usize,
    /// Buckets per host variable in the decision-cache region key.
    pub decision_buckets: u32,
    /// Feedback tolerance: an observed root cardinality outside the
    /// estimate interval widened by this factor invalidates the
    /// statement's cached decisions.
    pub feedback_tolerance: f64,
    /// Global memory-grant pool shared by all sessions, in bytes.
    pub global_memory_bytes: u64,
    /// How long a session may wait for admission (queue + memory grant)
    /// before failing with [`ServiceError::AdmissionTimeout`].
    pub queue_timeout_ms: u64,
    /// Default per-session resource budgets (a [`Request`] may override).
    pub session_limits: ResourceLimits,
    /// Tuple or batch execution for all sessions.
    pub exec_mode: ExecMode,
    /// Seed for the deterministic per-worker database replicas.
    pub data_seed: u64,
    /// Zipf exponent for stored values (`None`: uniform).
    pub skew: Option<f64>,
    /// Simulated per-page-I/O device latency, in microseconds, applied to
    /// every worker replica's disk. Zero disables pacing.
    pub io_latency_micros: u64,
    /// Requested intra-query parallelism per session. The DOP a session
    /// actually runs with is bounded by its admitted memory grant — see
    /// [`ServiceConfig::effective_dop`].
    pub dop: usize,
    /// Mid-query re-optimization budget. `Some`: every session runs
    /// through [`dqep_executor::execute_plan_reopt_ctx`] — checkpoints at
    /// the pipeline breakers, bounded re-planning on cardinality escape —
    /// and its escape observations feed the statement's decision cache.
    /// `None` (the default): sessions run the cached-decision fast path.
    pub reopt: Option<ReoptConfig>,
}

impl ServiceConfig {
    /// The degree of intra-query parallelism a session admitted with
    /// `memory_bytes` of grant may use: the configured `dop`, but never
    /// more than one worker thread per 16 pages of admitted grant. Tying
    /// DOP to the admission-controlled memory pool keeps `sessions × dop`
    /// from oversubscribing what admission handed out — a session that
    /// squeezed in with a tiny grant does not also get to fan out.
    #[must_use]
    pub fn effective_dop(&self, memory_bytes: u64) -> usize {
        let bytes_per_worker = 16 * dqep_storage::PAGE_SIZE as u64;
        self.dop
            .max(1)
            .min((memory_bytes / bytes_per_worker).max(1) as usize)
    }
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            registry_capacity: 64,
            decision_buckets: 16,
            feedback_tolerance: 2.0,
            global_memory_bytes: 64 << 20,
            queue_timeout_ms: 10_000,
            session_limits: ResourceLimits::unlimited(),
            exec_mode: ExecMode::default(),
            data_seed: 42,
            skew: None,
            io_latency_micros: 0,
            dop: 1,
            reopt: None,
        }
    }
}

/// One query submission: statement text plus per-execution parameters.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// The SQL text (normalized internally for registry keying).
    pub sql: String,
    /// Host-variable bindings by name.
    pub binds: Vec<(String, i64)>,
    /// Memory grant in pages (`None`: the environment's expected grant).
    pub memory_pages: Option<f64>,
    /// Per-session budget override (`None`: the service default).
    pub limits: Option<ResourceLimits>,
    /// Storage faults to inject on this session's worker disk for the
    /// duration of the execution (testing and chaos drills).
    pub fault_plan: Option<FaultPlan>,
}

impl Request {
    /// A request with bindings and all other parameters defaulted.
    #[must_use]
    pub fn new(sql: &str, binds: &[(&str, i64)]) -> Request {
        Request {
            sql: sql.to_string(),
            binds: binds.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
            ..Request::default()
        }
    }
}

/// What one completed session reports back.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Execution accounting, including plan-cache provenance.
    pub summary: ExecSummary,
    /// Predicted run time of the plan the arbitration chose, in seconds.
    pub predicted_seconds: f64,
    /// Time between submission and a worker picking the session up.
    pub queue_wait: Duration,
    /// Index of the worker that ran the session.
    pub worker: usize,
}

/// Service-level accounting: totals across all completed sessions plus
/// cache and feedback counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Accumulated execution summaries of successful sessions.
    pub totals: ExecSummary,
    /// Sessions completed successfully.
    pub completed: u64,
    /// Sessions that failed (any [`ServiceError`]).
    pub failed: u64,
    /// Executions whose start-up decision was served from the cache.
    pub decision_hits: u64,
    /// Executions that ran the full start-up decision procedure.
    pub decision_misses: u64,
    /// Cached resolved plans that failed retryably and were re-arbitrated
    /// through the full choose-plan path.
    pub cached_plan_retries: u64,
    /// Decision-cache invalidations triggered by cardinality feedback.
    pub feedback_invalidations: u64,
    /// Prepared-statement registry accounting.
    pub registry: RegistryStats,
}

impl ServiceStats {
    /// Decision-cache hits over all arbitrations, in `[0, 1]`; 1.0 when
    /// nothing was arbitrated yet.
    #[must_use]
    pub fn decision_hit_rate(&self) -> f64 {
        let total = self.decision_hits + self.decision_misses;
        if total == 0 {
            1.0
        } else {
            self.decision_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    totals: ExecSummary,
    completed: u64,
    failed: u64,
    decision_hits: u64,
    decision_misses: u64,
    cached_plan_retries: u64,
    feedback_invalidations: u64,
}

struct Job {
    request: Request,
    ctx: ExecContext,
    submitted: Instant,
    deadline: Instant,
    reply: Sender<Result<SessionResult, ServiceError>>,
}

/// A submitted session: await its result, or cancel it cooperatively.
#[derive(Debug)]
pub struct SessionHandle {
    rx: Receiver<Result<SessionResult, ServiceError>>,
    ctx: ExecContext,
}

impl SessionHandle {
    /// Requests cooperative cancellation; the session fails with
    /// [`dqep_executor::ExecError::Cancelled`] at its next check.
    pub fn cancel(&self) {
        self.ctx.governor.cancel();
    }

    /// Blocks until the session completes.
    ///
    /// # Errors
    /// The session's [`ServiceError`], or [`ServiceError::Shutdown`] if
    /// the service dropped the session without answering.
    pub fn wait(self) -> Result<SessionResult, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Shutdown))
    }
}

/// The prepared-query service. See the crate docs for the architecture.
///
/// Dropping the service closes the queue, lets the workers drain every
/// already-submitted session, and joins them.
pub struct QueryService {
    catalog: Arc<Catalog>,
    config: ServiceConfig,
    registry: Arc<PreparedRegistry>,
    stats: Arc<Mutex<StatsInner>>,
    metrics: Arc<MetricsRegistry>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("workers", &self.workers.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl QueryService {
    /// Starts a service over `catalog`: spawns the worker pool, each
    /// worker generating its own deterministic database replica
    /// (identical across workers — same catalog, seed, and distribution).
    #[must_use]
    pub fn new(catalog: Catalog, config: ServiceConfig) -> QueryService {
        let catalog = Arc::new(catalog);
        let registry = Arc::new(PreparedRegistry::new(config.registry_capacity));
        let pool = MemoryPool::new(config.global_memory_bytes);
        let stats = Arc::new(Mutex::new(StatsInner::default()));
        let metrics = Arc::new(MetricsRegistry::new());
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|index| {
                let worker = Worker {
                    index,
                    catalog: Arc::clone(&catalog),
                    config: config.clone(),
                    registry: Arc::clone(&registry),
                    pool: Arc::clone(&pool),
                    stats: Arc::clone(&stats),
                    metrics: Arc::clone(&metrics),
                };
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker.run(&rx))
            })
            .collect();
        QueryService {
            catalog,
            config,
            registry,
            stats,
            metrics,
            tx: Some(tx),
            workers,
        }
    }

    /// The catalog the service serves.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a session and returns a handle to await or cancel it.
    /// The admission clock starts now: queue wait counts against the
    /// configured queue timeout, and any wall-clock budget in the
    /// session's [`ResourceLimits`] covers queue wait plus execution (a
    /// submission-to-completion latency bound).
    pub fn submit(&self, request: Request) -> SessionHandle {
        let limits = request.limits.unwrap_or(self.config.session_limits);
        let ctx = ExecContext::with_limits(SharedCounters::new(), limits)
            .with_mode(self.config.exec_mode);
        let submitted = Instant::now();
        let (reply, rx) = mpsc::channel();
        let job = Job {
            request,
            ctx: ctx.clone(),
            submitted,
            deadline: submitted + Duration::from_millis(self.config.queue_timeout_ms),
            reply,
        };
        if let Some(tx) = &self.tx {
            // A send can only fail once workers are gone; the handle then
            // observes Shutdown.
            let _ = tx.send(job);
        }
        SessionHandle { rx, ctx }
    }

    /// Submits a request and blocks for its result.
    ///
    /// # Errors
    /// The session's [`ServiceError`].
    pub fn execute(&self, request: Request) -> Result<SessionResult, ServiceError> {
        self.submit(request).wait()
    }

    /// Submits every request up front — keeping all workers busy — then
    /// collects the results in request order.
    pub fn run_batch(&self, requests: Vec<Request>) -> Vec<Result<SessionResult, ServiceError>> {
        let handles: Vec<SessionHandle> = requests.into_iter().map(|r| self.submit(r)).collect();
        handles.into_iter().map(SessionHandle::wait).collect()
    }

    /// Accounting snapshot across all sessions so far.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let inner = self.stats.lock();
        ServiceStats {
            totals: inner.totals,
            completed: inner.completed,
            failed: inner.failed,
            decision_hits: inner.decision_hits,
            decision_misses: inner.decision_misses,
            cached_plan_retries: inner.cached_plan_retries,
            feedback_invalidations: inner.feedback_invalidations,
            registry: self.registry.stats(),
        }
    }

    /// Metrics snapshot: latency and queue-wait histograms, refusal
    /// counters, plus the session/cache accounting of [`Self::stats`].
    #[must_use]
    pub fn metrics(&self) -> MetricsReport {
        self.metrics.report(self.stats())
    }

    /// [`Self::metrics`] serialized as a JSON document.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.metrics().to_json()
    }

    /// [`Self::metrics`] in Prometheus text exposition format.
    #[must_use]
    pub fn metrics_prom(&self) -> String {
        self.metrics().to_prometheus()
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        // Closing the channel lets workers drain queued sessions and exit.
        self.tx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

struct Worker {
    index: usize,
    catalog: Arc<Catalog>,
    config: ServiceConfig,
    registry: Arc<PreparedRegistry>,
    pool: Arc<MemoryPool>,
    stats: Arc<Mutex<StatsInner>>,
    metrics: Arc<MetricsRegistry>,
}

impl Worker {
    fn run(&self, rx: &Mutex<Receiver<Job>>) {
        let dist = match self.config.skew {
            Some(exponent) => ValueDistribution::Zipf { exponent },
            None => ValueDistribution::Uniform,
        };
        let db = StoredDatabase::generate_with(&self.catalog, self.config.data_seed, dist);
        db.disk.set_io_latency_micros(self.config.io_latency_micros);
        let env = Environment::dynamic_compile_time(&self.catalog.config);
        loop {
            // Holding the lock only while blocked on recv: the next idle
            // worker takes over the queue as soon as a job is handed out.
            let job = match rx.lock().recv() {
                Ok(job) => job,
                Err(_) => return, // service dropped, queue drained
            };
            let queue_wait = job.submitted.elapsed();
            let result = self.session(&db, &env, &job, queue_wait);
            self.metrics.record_outcome(&result, job.submitted.elapsed());
            {
                let mut stats = self.stats.lock();
                match &result {
                    Ok(r) => {
                        stats.completed += 1;
                        stats.totals.accumulate(&r.summary);
                    }
                    Err(_) => stats.failed += 1,
                }
            }
            // A dropped handle just means nobody is waiting for the answer.
            let _ = job.reply.send(result);
        }
    }

    fn session(
        &self,
        db: &StoredDatabase,
        env: &Environment,
        job: &Job,
        queue_wait: Duration,
    ) -> Result<SessionResult, ServiceError> {
        let (stmt, statement_hit) = self.prepare(&job.request.sql, env)?;

        let binds: Vec<(&str, i64)> = job
            .request
            .binds
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        let mut bindings = stmt.query.bindings(&binds).map_err(ServiceError::Bind)?;
        if let Some(pages) = job.request.memory_pages {
            bindings = bindings.with_memory(pages);
        }
        let memory_pages = bindings.memory_pages.unwrap_or_else(|| env.memory.expected());
        let memory_bytes = (memory_pages * self.catalog.config.page_size as f64) as u64;

        // Admission: the grant is held for the whole execution and
        // returned on drop (including every error path below). A
        // transient timeout gets one jittered retry, bounded by a tenth
        // of the queue timeout.
        let retry_extension = Duration::from_millis(self.config.queue_timeout_ms / 10);
        let (_grant, retried) =
            self.pool.acquire_retry(memory_bytes, job.deadline, retry_extension)?;
        if retried {
            self.metrics.record_admission_retry();
        }
        // Intra-query parallelism is rationed by the admitted grant:
        // the execution context shares the handle's counters and
        // governor (cancellation still works), only the DOP differs.
        let ctx = job
            .ctx
            .clone()
            .with_dop(self.config.effective_dop(memory_bytes));

        if let Some(faults) = &job.request.fault_plan {
            db.disk.set_fault_plan(faults.clone());
        }
        let io_before = db.disk.stats();
        let outcome = match self.config.reopt {
            Some(reopt_config) => {
                self.execute_reopt(db, env, &ctx, &stmt, &bindings, reopt_config)
            }
            None => {
                let key = region_key(
                    &stmt.query,
                    &self.catalog,
                    &bindings,
                    self.config.decision_buckets,
                    memory_pages,
                );
                let (decision, decision_hit) = match stmt.decision(&key) {
                    Some(cached) => (cached, true),
                    None => {
                        let startup = evaluate_startup_observed(
                            &stmt.plan,
                            &self.catalog,
                            env,
                            &bindings,
                            &stmt.observations(),
                        );
                        let fresh = CachedDecision {
                            resolved: startup.resolved,
                            predicted_seconds: startup.predicted_run_seconds,
                        };
                        stmt.store_decision(key.clone(), fresh.clone());
                        (fresh, false)
                    }
                };
                self.execute_arbitrated(
                    db,
                    env,
                    &ctx,
                    &stmt,
                    &key,
                    &decision,
                    &bindings,
                    memory_bytes as usize,
                )
                .map(|rows| (rows, decision.predicted_seconds, decision_hit))
            }
        };
        let io = db.disk.stats().since(&io_before);
        if job.request.fault_plan.is_some() {
            db.disk.set_fault_plan(FaultPlan::none());
        }
        let (rows, predicted_seconds, decision_hit) = outcome?;

        if stmt.record_feedback(rows, self.config.feedback_tolerance) {
            self.stats.lock().feedback_invalidations += 1;
        }
        {
            let mut stats = self.stats.lock();
            if decision_hit {
                stats.decision_hits += 1;
            } else {
                stats.decision_misses += 1;
            }
        }

        Ok(SessionResult {
            summary: ExecSummary {
                rows,
                cpu: job.ctx.counters.snapshot(),
                io,
                fallbacks: job.ctx.counters.fallbacks(),
                plan_cache: PlanCacheInfo {
                    statement_hit: Some(statement_hit),
                    decision_hit: Some(decision_hit),
                },
            },
            predicted_seconds,
            queue_wait,
            worker: self.index,
        })
    }

    /// Runs a session through the mid-query re-optimization driver. The
    /// decision cache is *fed*, not consulted: the driver gathers its own
    /// checkpoint observations, and every escape is pinned back onto the
    /// statement — clearing its cached decisions so later fast-path
    /// sessions arbitrate against the observed cardinalities.
    fn execute_reopt(
        &self,
        db: &StoredDatabase,
        env: &Environment,
        ctx: &ExecContext,
        stmt: &PreparedStatement,
        bindings: &Bindings,
        reopt_config: ReoptConfig,
    ) -> Result<(u64, f64, bool), ServiceError> {
        let outcome =
            execute_plan_reopt_ctx(&stmt.plan, db, &self.catalog, env, bindings, reopt_config, ctx)
                .map_err(ServiceError::Exec)?;
        self.metrics.record_reopt(&outcome.report.counters);
        let escaped = outcome.report.escaped_observations();
        if !escaped.is_empty() {
            for (node, cardinality) in &escaped {
                stmt.observe(*node, *cardinality);
            }
            self.stats.lock().feedback_invalidations += 1;
        }
        Ok((
            outcome.summary.rows,
            outcome.startup.predicted_run_seconds,
            false,
        ))
    }

    /// Registry lookup, or parse + optimize on a miss. The double-checked
    /// insert keeps one canonical [`PreparedStatement`] per text even when
    /// two workers prepare the same statement concurrently.
    fn prepare(
        &self,
        sql: &str,
        env: &Environment,
    ) -> Result<(Arc<PreparedStatement>, bool), ServiceError> {
        let normalized = normalize_sql(sql);
        if let Some(stmt) = self.registry.get(&normalized) {
            return Ok((stmt, true));
        }
        let query = parse_query(&normalized, &self.catalog)
            .map_err(|e| ServiceError::Sql(e.to_string()))?;
        let props = query.required_props();
        let plan = Optimizer::new(&self.catalog, env)
            .optimize_with_props(&query.expr, props)
            .map_err(|e| ServiceError::Optimizer(e.to_string()))?
            .plan;
        let stmt = Arc::new(PreparedStatement::new(normalized.clone(), query, plan));
        Ok((self.registry.insert(normalized, stmt), false))
    }

    /// Runs the arbitrated resolved plan. If a *cached* plan fails
    /// retryably (a storage fault, a refused memory reservation), the
    /// memoized decision is dropped and the session re-arbitrates through
    /// the full dynamic plan — whose choose-plan operators can then fall
    /// back alternative by alternative. The retry is accounted as one
    /// fallback: a preferred plan failed and execution degraded.
    #[allow(clippy::too_many_arguments)]
    fn execute_arbitrated(
        &self,
        db: &StoredDatabase,
        env: &Environment,
        ctx: &ExecContext,
        stmt: &PreparedStatement,
        key: &crate::decision::RegionKey,
        decision: &CachedDecision,
        bindings: &Bindings,
        memory_bytes: usize,
    ) -> Result<u64, ServiceError> {
        match run_compiled(
            &decision.resolved,
            db,
            &self.catalog,
            bindings,
            memory_bytes,
            ctx,
        ) {
            Ok(rows) => Ok(rows),
            Err(e) if e.is_retryable() => {
                stmt.invalidate_decision(key);
                self.stats.lock().cached_plan_retries += 1;
                ctx.counters.add_fallbacks(1);
                run_dynamic(
                    &stmt.plan,
                    db,
                    &self.catalog,
                    env,
                    bindings,
                    memory_bytes,
                    ctx,
                )
                .map_err(ServiceError::Exec)
            }
            Err(e) => Err(ServiceError::Exec(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::{make_chain_catalog, SyntheticSpec, SystemConfig};

    fn chain_sql(n: usize) -> String {
        let from: Vec<String> = (1..=n).map(|i| format!("R{i}")).collect();
        let mut preds: Vec<String> =
            (1..n).map(|i| format!("R{i}.jr = R{}.jl", i + 1)).collect();
        preds.extend((1..=n).map(|i| format!("R{i}.a < :v{i}")));
        format!("SELECT * FROM {} WHERE {}", from.join(", "), preds.join(" AND "))
    }

    fn service(workers: usize) -> QueryService {
        let catalog =
            make_chain_catalog(&SyntheticSpec::paper(2, 7), SystemConfig::paper_1994());
        QueryService::new(
            catalog,
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn repeated_statement_hits_both_caches() {
        let svc = service(1);
        let sql = chain_sql(2);
        let first = svc.execute(Request::new(&sql, &[("v1", 500), ("v2", 500)])).unwrap();
        assert_eq!(first.summary.plan_cache.statement_hit, Some(false));
        assert_eq!(first.summary.plan_cache.decision_hit, Some(false));
        let second = svc.execute(Request::new(&sql, &[("v1", 510), ("v2", 505)])).unwrap();
        assert_eq!(second.summary.plan_cache.statement_hit, Some(true));
        assert_eq!(second.summary.plan_cache.decision_hit, Some(true), "nearby binding region");
        assert_eq!(first.summary.rows, svc.execute(Request::new(&sql, &[("v1", 500), ("v2", 500)])).unwrap().summary.rows);
        let stats = svc.stats();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.registry.misses, 1);
        assert_eq!(stats.registry.hits, 2);
    }

    #[test]
    fn distant_bindings_rerun_arbitration() {
        let svc = service(1);
        let sql = chain_sql(2);
        svc.execute(Request::new(&sql, &[("v1", 50), ("v2", 50)])).unwrap();
        let far = svc.execute(Request::new(&sql, &[("v1", 950), ("v2", 950)])).unwrap();
        assert_eq!(far.summary.plan_cache.statement_hit, Some(true));
        assert_eq!(far.summary.plan_cache.decision_hit, Some(false), "different region");
    }

    #[test]
    fn parse_errors_fail_the_session_only() {
        let svc = service(1);
        let err = svc.execute(Request::new("SELECT * FROM nosuch", &[])).unwrap_err();
        assert!(matches!(err, ServiceError::Sql(_)));
        let ok = svc.execute(Request::new(&chain_sql(2), &[("v1", 100), ("v2", 100)]));
        assert!(ok.is_ok(), "service still serves after a failed session");
        let stats = svc.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn oversized_grant_is_rejected_not_queued() {
        let catalog =
            make_chain_catalog(&SyntheticSpec::paper(2, 7), SystemConfig::paper_1994());
        let svc = QueryService::new(
            catalog,
            ServiceConfig {
                workers: 1,
                global_memory_bytes: 4096,
                ..ServiceConfig::default()
            },
        );
        let mut request = Request::new(&chain_sql(2), &[("v1", 100), ("v2", 100)]);
        request.memory_pages = Some(1024.0);
        let err = svc.execute(request).unwrap_err();
        assert!(matches!(err, ServiceError::GrantTooLarge { .. }));
    }

    #[test]
    fn effective_dop_is_bounded_by_the_admitted_grant() {
        let config = ServiceConfig {
            dop: 8,
            ..ServiceConfig::default()
        };
        let page = dqep_storage::PAGE_SIZE as u64;
        assert_eq!(config.effective_dop(1024 * page), 8, "big grant: full dop");
        assert_eq!(config.effective_dop(32 * page), 2, "32 pages admit 2 workers");
        assert_eq!(config.effective_dop(page), 1, "tiny grant runs serial");
        let serial = ServiceConfig::default();
        assert_eq!(serial.effective_dop(1024 * page), 1, "dop off by default");
    }

    #[test]
    fn parallel_sessions_match_serial_results_and_accounting() {
        let sql = chain_sql(2);
        let binds = [("v1", 500i64), ("v2", 500i64)];
        let serial = service(1).execute(Request::new(&sql, &binds)).unwrap();
        let catalog =
            make_chain_catalog(&SyntheticSpec::paper(2, 7), SystemConfig::paper_1994());
        let svc = QueryService::new(
            catalog,
            ServiceConfig {
                workers: 2,
                dop: 4,
                ..ServiceConfig::default()
            },
        );
        let par = svc.execute(Request::new(&sql, &binds)).unwrap();
        assert_eq!(par.summary.rows, serial.summary.rows);
        assert_eq!(
            par.summary.cpu.records, serial.summary.cpu.records,
            "worker counters merge to the serial totals"
        );
        assert_eq!(par.summary.io.total(), serial.summary.io.total());
    }

    #[test]
    fn reopt_sessions_match_the_fast_path_and_export_counters() {
        let sql = chain_sql(2);
        let binds = [("v1", 100i64), ("v2", 900i64)];
        let mk = |reopt| {
            let catalog =
                make_chain_catalog(&SyntheticSpec::paper(2, 7), SystemConfig::paper_1994());
            QueryService::new(
                catalog,
                ServiceConfig {
                    workers: 1,
                    skew: Some(1.1),
                    reopt,
                    ..ServiceConfig::default()
                },
            )
        };
        let plain = mk(None).execute(Request::new(&sql, &binds)).unwrap();
        let svc = mk(Some(ReoptConfig::default()));
        let first = svc.execute(Request::new(&sql, &binds)).unwrap();
        assert_eq!(first.summary.rows, plain.summary.rows, "reopt preserves results");
        let second = svc.execute(Request::new(&sql, &binds)).unwrap();
        assert_eq!(second.summary.rows, plain.summary.rows);
        let report = svc.metrics();
        assert!(report.reopt_checkpoints >= 2, "each session observes its checkpoints: {report:?}");
        let doc = dqep_executor::parse_json(&svc.metrics_json()).unwrap();
        assert!(
            doc.get("reopt").and_then(|r| r.get("checkpoints")).is_some(),
            "reopt counters are exported"
        );
    }

    #[test]
    fn drop_drains_submitted_sessions() {
        let svc = service(2);
        let sql = chain_sql(2);
        let handles: Vec<SessionHandle> = (0..6)
            .map(|i| svc.submit(Request::new(&sql, &[("v1", 300 + i), ("v2", 400)])))
            .collect();
        drop(svc);
        for handle in handles {
            assert!(handle.wait().is_ok(), "queued sessions complete during shutdown");
        }
    }
}
