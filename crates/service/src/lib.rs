//! Prepared-query serving layer: compile once, execute many, concurrently.
//!
//! The paper's economics only pay off when a dynamic plan is optimized
//! **once** and executed many times, each start-up paying only the cheap
//! choose-plan decision. This crate supplies the serving layer that
//! realizes those economics under concurrent load:
//!
//! * [`PreparedRegistry`] — statements are parsed and optimized once into
//!   a dynamic plan, keyed by normalized text, LRU-bounded, with hit/miss
//!   accounting.
//! * **Bind-time arbitration with a decision cache** — each execution maps
//!   its host-variable bindings to a coarse [`decision::RegionKey`]; the
//!   start-up decision procedure runs only on a region's first visit, and
//!   hot parameter ranges replay the memoized resolved plan with zero
//!   cost-function evaluations.
//! * [`QueryService`] — a fixed worker pool running concurrent sessions,
//!   each against its own deterministic replica of the stored database
//!   (so I/O accounting never bleeds between sessions), with admission
//!   control layered on the per-session
//!   [`dqep_executor::ResourceGovernor`]: a global [`MemoryPool`] bounds
//!   the sum of memory grants, queueing sessions with a timeout.
//! * **Cardinality feedback** — every completed execution reports its
//!   observed result cardinality back to its statement; an observation
//!   outside the plan's estimate interval invalidates the decision cache
//!   and later arbitrations re-optimize through
//!   [`dqep_plan::evaluate_startup_observed`].

#![warn(missing_docs)]
// Serving-layer code must propagate errors, not panic: unwrap/expect are
// reserved for tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::perf)]

pub mod admission;
pub mod decision;
mod error;
pub mod live;
mod metrics;
pub mod registry;
mod service;
pub mod shard;

pub use admission::{MemoryGrant, MemoryPool};
pub use decision::{region_key, CachedDecision, RegionKey};
pub use error::ServiceError;
pub use live::{CommitOutcome, LiveConfig, LiveViewInfo, LiveViewRegistry, WriteOp};
pub use metrics::{
    lint_prometheus, Histogram, HistogramSnapshot, MetricsRegistry, MetricsReport,
    SHARD_WINNER_SLOTS,
};
pub use registry::{normalize_sql, PreparedRegistry, PreparedStatement, RegistryStats};
pub use service::{
    QueryService, Request, ServiceConfig, ServiceStats, SessionHandle, SessionResult,
};
pub use shard::{LinkTraffic, Shard, ShardConfig, ShardOutcome, ShardRouting, ShardedService};
