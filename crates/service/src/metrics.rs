//! Service metrics: fixed log-scale latency histograms plus refusal
//! counters, snapshotable (together with the cache and session counters
//! the service already keeps) as a JSON document.
//!
//! Histograms use power-of-two nanosecond buckets: `record` is two atomic
//! adds and a `fetch_max` — safe from every worker thread with no lock —
//! and quantiles are read from the bucket boundaries, so p50/p95/p99 are
//! upper bounds with at most one octave of error. That is the standard
//! trade for fixed-memory, lock-free latency tracking; the mean and max
//! are exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dqep_executor::{journal, EventKind, ExecError, Resource, NO_ID};

use crate::error::ServiceError;
use crate::service::{ServiceStats, SessionResult};

/// Power-of-two buckets from 1 ns up: bucket `i` covers
/// `[2^i, 2^(i+1))` ns, the last bucket everything above (~3.2 hours).
const BUCKETS: usize = 44;

/// A lock-free fixed-bucket log-scale histogram of durations.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

fn bucket_of(ns: u64) -> usize {
    (63 - ns.max(1).leading_zeros() as usize).min(BUCKETS - 1)
}

/// The upper bound of bucket `i`, in seconds.
fn bucket_upper_seconds(i: usize) -> f64 {
    2u64.saturating_pow(i as u32 + 1) as f64 / 1e9
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, duration: Duration) {
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        self.counts[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// The `q`-quantile (`0 < q <= 1`) in seconds, as the containing
    /// bucket's upper bound clamped to the observed maximum; `0.0` when
    /// nothing was recorded.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        let max_seconds = self.max_ns.load(Ordering::Relaxed) as f64 / 1e9;
        for (i, bucket) in self.counts.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper_seconds(i).min(max_seconds);
            }
        }
        max_seconds
    }

    /// A point-in-time summary of the histogram.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let total_ns = self.total_ns.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            mean_seconds: if count == 0 {
                0.0
            } else {
                total_ns as f64 / count as f64 / 1e9
            },
            p50_seconds: self.quantile(0.50),
            p95_seconds: self.quantile(0.95),
            p99_seconds: self.quantile(0.99),
            max_seconds: self.max_ns.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

/// Summary statistics read from a [`Histogram`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Exact mean, seconds.
    pub mean_seconds: f64,
    /// Median upper bound, seconds.
    pub p50_seconds: f64,
    /// 95th-percentile upper bound, seconds.
    pub p95_seconds: f64,
    /// 99th-percentile upper bound, seconds.
    pub p99_seconds: f64,
    /// Exact maximum, seconds.
    pub max_seconds: f64,
}

/// The service's metrics collectors: latency and admission-queue-wait
/// histograms plus refusal classification. Session, fallback, and cache
/// counters live in [`ServiceStats`]; [`MetricsReport`] combines both.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Submission-to-completion latency of successful sessions.
    pub latency: Histogram,
    /// Time successful sessions spent queued before a worker picked them
    /// up (admission wait).
    pub queue_wait: Histogram,
    /// Per-commit incremental refresh latency across all live views.
    pub live_refresh: Histogram,
    /// Credit-wait of network-exchange sends that actually stalled
    /// (unstalled sends are not recorded — the histogram reads as "when
    /// backpressure bit, how hard").
    pub net_queue_wait: Histogram,
    refused_admission_timeout: AtomicU64,
    refused_grant_too_large: AtomicU64,
    refused_link_fault: AtomicU64,
    refused_memory_exhausted: AtomicU64,
    admission_retries: AtomicU64,
    reopt_checkpoints: AtomicU64,
    reopt_escapes: AtomicU64,
    reopt_replans: AtomicU64,
    reopt_fallbacks: AtomicU64,
    live_views_registered: AtomicU64,
    live_delta_batches: AtomicU64,
    live_rows_propagated: AtomicU64,
    live_rearbitrations: AtomicU64,
    net_bytes: AtomicU64,
    net_frames: AtomicU64,
    net_retransmits: AtomicU64,
    net_credit_stalls: AtomicU64,
    shard_queries: AtomicU64,
    shard_winners: [AtomicU64; SHARD_WINNER_SLOTS],
    shard_divergent_nodes: AtomicU64,
}

/// Tracked choose-plan alternative indices in the per-winner counters;
/// higher indices fold into the last slot. Real dynamic plans carry a
/// handful of alternatives per choose node, so 8 slots lose nothing.
pub const SHARD_WINNER_SLOTS: usize = 8;

impl MetricsRegistry {
    /// A fresh registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Records one finished session: latencies for successes, refusal
    /// classification for admission failures. Other failures are counted
    /// by the service's session stats.
    pub fn record_outcome(
        &self,
        outcome: &Result<SessionResult, ServiceError>,
        total_latency: Duration,
    ) {
        match outcome {
            Ok(result) => {
                self.latency.record(total_latency);
                self.queue_wait.record(result.queue_wait);
            }
            Err(e) => self.classify_failure(e),
        }
    }

    /// Classifies one failed query into the refusal counters: admission
    /// timeouts and oversized grants keep their dedicated buckets, a
    /// network error (retransmission budget exhausted on a link fault)
    /// counts as a link-fault refusal, and a refused memory reservation
    /// (the shard-join degradation ladder running dry included) counts as
    /// a memory-exhaustion refusal. Each classified refusal also lands an
    /// [`EventKind::AdmissionRefusal`] event in the flight recorder.
    pub fn classify_failure(&self, error: &ServiceError) {
        let bucket = match error {
            ServiceError::AdmissionTimeout { .. } => Some(&self.refused_admission_timeout),
            ServiceError::GrantTooLarge { .. } => Some(&self.refused_grant_too_large),
            ServiceError::Exec(ExecError::Network(_)) => Some(&self.refused_link_fault),
            ServiceError::Exec(ExecError::ResourceExhausted(Resource::Memory { .. })) => {
                Some(&self.refused_memory_exhausted)
            }
            _ => None,
        };
        if let Some(counter) = bucket {
            let total = counter.fetch_add(1, Ordering::Relaxed) + 1;
            journal().record(EventKind::AdmissionRefusal, 0, NO_ID, NO_ID, total, NO_ID);
        }
    }

    /// Sessions refused because admission timed out waiting for a grant.
    #[must_use]
    pub fn refused_admission_timeout(&self) -> u64 {
        self.refused_admission_timeout.load(Ordering::Relaxed)
    }

    /// Sessions refused because the requested grant exceeds the pool.
    #[must_use]
    pub fn refused_grant_too_large(&self) -> u64 {
        self.refused_grant_too_large.load(Ordering::Relaxed)
    }

    /// Queries failed by a link fault exhausting its retransmission
    /// budget.
    #[must_use]
    pub fn refused_link_fault(&self) -> u64 {
        self.refused_link_fault.load(Ordering::Relaxed)
    }

    /// Queries failed by an unservable memory reservation (every rung of
    /// a degradation ladder refused).
    #[must_use]
    pub fn refused_memory_exhausted(&self) -> u64 {
        self.refused_memory_exhausted.load(Ordering::Relaxed)
    }

    /// Counts one admission that was granted only on its retry rung.
    pub fn record_admission_retry(&self) {
        self.admission_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Admissions that succeeded only after a backoff-and-retry.
    #[must_use]
    pub fn admission_retries(&self) -> u64 {
        self.admission_retries.load(Ordering::Relaxed)
    }

    /// Folds one session's re-optimization counters into the service
    /// totals: checkpoints observed, interval escapes, re-plans adopted,
    /// and reverts to the original arbitration.
    pub fn record_reopt(&self, counters: &dqep_executor::ReoptCounters) {
        self.reopt_checkpoints.fetch_add(counters.checkpoints, Ordering::Relaxed);
        self.reopt_escapes.fetch_add(counters.escapes, Ordering::Relaxed);
        self.reopt_replans.fetch_add(counters.replans_adopted, Ordering::Relaxed);
        self.reopt_fallbacks.fetch_add(counters.fallbacks, Ordering::Relaxed);
    }

    /// Pipeline-breaker checkpoints observed across all sessions.
    #[must_use]
    pub fn reopt_checkpoints(&self) -> u64 {
        self.reopt_checkpoints.load(Ordering::Relaxed)
    }

    /// Checkpoint observations that escaped their estimate interval.
    #[must_use]
    pub fn reopt_escapes(&self) -> u64 {
        self.reopt_escapes.load(Ordering::Relaxed)
    }

    /// Mid-query re-plans adopted across all sessions.
    #[must_use]
    pub fn reopt_replans(&self) -> u64 {
        self.reopt_replans.load(Ordering::Relaxed)
    }

    /// Re-planned runs that reverted to the original arbitration.
    #[must_use]
    pub fn reopt_fallbacks(&self) -> u64 {
        self.reopt_fallbacks.load(Ordering::Relaxed)
    }

    /// Counts one live view registered (and materialized).
    pub fn record_live_view(&self) {
        self.live_views_registered.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one committed write batch propagated through a live view,
    /// with the delta rows it produced at the view's root.
    pub fn record_live_batch(&self, rows_propagated: u64) {
        self.live_delta_batches.fetch_add(1, Ordering::Relaxed);
        self.live_rows_propagated.fetch_add(rows_propagated, Ordering::Relaxed);
    }

    /// Counts one drift-triggered choose-plan re-arbitration of a live
    /// view.
    pub fn record_live_rearbitration(&self) {
        self.live_rearbitrations.fetch_add(1, Ordering::Relaxed);
    }

    /// Live views registered.
    #[must_use]
    pub fn live_views_registered(&self) -> u64 {
        self.live_views_registered.load(Ordering::Relaxed)
    }

    /// Delta batches applied to live views.
    #[must_use]
    pub fn live_delta_batches(&self) -> u64 {
        self.live_delta_batches.load(Ordering::Relaxed)
    }

    /// Delta rows emitted at live-view roots.
    #[must_use]
    pub fn live_rows_propagated(&self) -> u64 {
        self.live_rows_propagated.load(Ordering::Relaxed)
    }

    /// Drift-triggered re-arbitrations fired by live views.
    #[must_use]
    pub fn live_rearbitrations(&self) -> u64 {
        self.live_rearbitrations.load(Ordering::Relaxed)
    }

    /// Folds the wire-traffic delta of one sharded query into the
    /// cross-shard totals. Pass the *difference* of two
    /// [`dqep_executor::NetStats`] snapshots, not a running total.
    pub fn record_net(&self, delta: &dqep_executor::NetStats) {
        self.net_bytes.fetch_add(delta.bytes, Ordering::Relaxed);
        self.net_frames.fetch_add(delta.frames, Ordering::Relaxed);
        self.net_retransmits.fetch_add(delta.retransmits, Ordering::Relaxed);
        self.net_credit_stalls.fetch_add(delta.credit_stalls, Ordering::Relaxed);
    }

    /// Counts one per-shard choose-plan arbitration won by alternative
    /// `index` (indices past the tracked slots fold into the last).
    pub fn record_shard_winner(&self, index: usize) {
        self.shard_winners[index.min(SHARD_WINNER_SLOTS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one completed sharded query with how many of its choose
    /// nodes resolved to *different* winners on different shards.
    pub fn record_shard_query(&self, divergent_nodes: u64) {
        self.shard_queries.fetch_add(1, Ordering::Relaxed);
        self.shard_divergent_nodes.fetch_add(divergent_nodes, Ordering::Relaxed);
    }

    /// Cross-shard bytes put on the wire (retransmissions included).
    #[must_use]
    pub fn net_bytes(&self) -> u64 {
        self.net_bytes.load(Ordering::Relaxed)
    }

    /// Cross-shard frames delivered.
    #[must_use]
    pub fn net_frames(&self) -> u64 {
        self.net_frames.load(Ordering::Relaxed)
    }

    /// Transmissions dropped by link faults and re-sent.
    #[must_use]
    pub fn net_retransmits(&self) -> u64 {
        self.net_retransmits.load(Ordering::Relaxed)
    }

    /// Sends that blocked on credit backpressure.
    #[must_use]
    pub fn net_credit_stalls(&self) -> u64 {
        self.net_credit_stalls.load(Ordering::Relaxed)
    }

    /// Per-alternative-index winner counts across all per-shard
    /// arbitrations.
    #[must_use]
    pub fn shard_winners(&self) -> [u64; SHARD_WINNER_SLOTS] {
        std::array::from_fn(|i| self.shard_winners[i].load(Ordering::Relaxed))
    }

    /// Sharded queries executed.
    #[must_use]
    pub fn shard_queries(&self) -> u64 {
        self.shard_queries.load(Ordering::Relaxed)
    }

    /// Choose nodes whose winner diverged across shards, summed over all
    /// sharded queries.
    #[must_use]
    pub fn shard_divergent_nodes(&self) -> u64 {
        self.shard_divergent_nodes.load(Ordering::Relaxed)
    }

    /// A full [`MetricsReport`] combining this registry's collectors with
    /// the given session/cache accounting.
    #[must_use]
    pub fn report(&self, service: ServiceStats) -> MetricsReport {
        MetricsReport {
            latency: self.latency.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
            refused_admission_timeout: self.refused_admission_timeout(),
            refused_grant_too_large: self.refused_grant_too_large(),
            refused_link_fault: self.refused_link_fault(),
            refused_memory_exhausted: self.refused_memory_exhausted(),
            admission_retries: self.admission_retries(),
            reopt_checkpoints: self.reopt_checkpoints(),
            reopt_escapes: self.reopt_escapes(),
            reopt_replans: self.reopt_replans(),
            reopt_fallbacks: self.reopt_fallbacks(),
            live_views_registered: self.live_views_registered(),
            live_delta_batches: self.live_delta_batches(),
            live_rows_propagated: self.live_rows_propagated(),
            live_rearbitrations: self.live_rearbitrations(),
            live_refresh: self.live_refresh.snapshot(),
            net_bytes: self.net_bytes(),
            net_frames: self.net_frames(),
            net_retransmits: self.net_retransmits(),
            net_credit_stalls: self.net_credit_stalls(),
            net_queue_wait: self.net_queue_wait.snapshot(),
            shard_queries: self.shard_queries(),
            shard_winners: self.shard_winners(),
            shard_divergent_nodes: self.shard_divergent_nodes(),
            service,
        }
    }
}

/// Everything the service exports on shutdown (and on demand): histogram
/// summaries, refusal counters, and the session/cache accounting.
#[derive(Debug, Clone, Copy)]
pub struct MetricsReport {
    /// Submission-to-completion latency of successful sessions.
    pub latency: HistogramSnapshot,
    /// Admission-queue wait of successful sessions.
    pub queue_wait: HistogramSnapshot,
    /// Sessions refused by admission timeout.
    pub refused_admission_timeout: u64,
    /// Sessions refused for requesting more than the pool holds.
    pub refused_grant_too_large: u64,
    /// Queries failed by a link fault exhausting its retransmission
    /// budget.
    pub refused_link_fault: u64,
    /// Queries failed by an unservable memory reservation.
    pub refused_memory_exhausted: u64,
    /// Admissions that succeeded only after a backoff-and-retry.
    pub admission_retries: u64,
    /// Pipeline-breaker checkpoints observed across all sessions.
    pub reopt_checkpoints: u64,
    /// Checkpoint observations that escaped their estimate interval.
    pub reopt_escapes: u64,
    /// Mid-query re-plans adopted across all sessions.
    pub reopt_replans: u64,
    /// Re-planned runs that reverted to the original arbitration.
    pub reopt_fallbacks: u64,
    /// Live views registered.
    pub live_views_registered: u64,
    /// Delta batches applied to live views.
    pub live_delta_batches: u64,
    /// Delta rows emitted at live-view roots.
    pub live_rows_propagated: u64,
    /// Drift-triggered re-arbitrations fired by live views.
    pub live_rearbitrations: u64,
    /// Per-commit incremental refresh latency across live views.
    pub live_refresh: HistogramSnapshot,
    /// Cross-shard bytes on the wire (retransmissions included).
    pub net_bytes: u64,
    /// Cross-shard frames delivered.
    pub net_frames: u64,
    /// Transmissions dropped by link faults and re-sent.
    pub net_retransmits: u64,
    /// Sends that blocked on credit backpressure.
    pub net_credit_stalls: u64,
    /// Credit-wait of stalled network sends.
    pub net_queue_wait: HistogramSnapshot,
    /// Sharded queries executed.
    pub shard_queries: u64,
    /// Per-alternative-index winner counts across per-shard arbitrations.
    pub shard_winners: [u64; SHARD_WINNER_SLOTS],
    /// Choose nodes whose winner diverged across shards (all queries).
    pub shard_divergent_nodes: u64,
    /// Session totals and cache counters.
    pub service: ServiceStats,
}

fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn histogram_json(out: &mut String, key: &str, h: &HistogramSnapshot) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "  \"{key}\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
        h.count,
        jnum(h.mean_seconds),
        jnum(h.p50_seconds),
        jnum(h.p95_seconds),
        jnum(h.p99_seconds),
        jnum(h.max_seconds),
    );
}

impl MetricsReport {
    /// Serializes the report as a JSON document (hand-rolled — this build
    /// has no JSON crate). Histogram values are in seconds.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let s = &self.service;
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"sessions\": {{\"completed\": {}, \"failed\": {}, \
             \"refused_admission_timeout\": {}, \"refused_grant_too_large\": {}, \
             \"refused_link_fault\": {}, \"refused_memory_exhausted\": {}, \
             \"admission_retries\": {}, \"fallbacks\": {}, \"rows\": {}, \
             \"simulated_io_pages\": {}}},",
            s.completed,
            s.failed,
            self.refused_admission_timeout,
            self.refused_grant_too_large,
            self.refused_link_fault,
            self.refused_memory_exhausted,
            self.admission_retries,
            s.totals.fallbacks,
            s.totals.rows,
            s.totals.io.total(),
        );
        histogram_json(&mut out, "latency_seconds", &self.latency);
        out.push_str(",\n");
        histogram_json(&mut out, "queue_wait_seconds", &self.queue_wait);
        out.push_str(",\n");
        let _ = writeln!(
            out,
            "  \"plan_cache\": {{\"statement_hits\": {}, \"statement_misses\": {}, \
             \"statement_evictions\": {}, \"statement_resident\": {}, \
             \"statement_hit_rate\": {}, \"decision_hits\": {}, \"decision_misses\": {}, \
             \"decision_hit_rate\": {}, \"cached_plan_retries\": {}, \
             \"feedback_invalidations\": {}}}",
            s.registry.hits,
            s.registry.misses,
            s.registry.evictions,
            s.registry.resident,
            jnum(s.registry.hit_rate()),
            s.decision_hits,
            s.decision_misses,
            jnum(s.decision_hit_rate()),
            s.cached_plan_retries,
            s.feedback_invalidations,
        );
        out.push_str(",\n");
        let _ = writeln!(
            out,
            "  \"reopt\": {{\"checkpoints\": {}, \"escapes\": {}, \"replans\": {}, \
             \"fallbacks\": {}}},",
            self.reopt_checkpoints, self.reopt_escapes, self.reopt_replans, self.reopt_fallbacks,
        );
        let _ = writeln!(
            out,
            "  \"live\": {{\"views_registered\": {}, \"delta_batches\": {}, \
             \"rows_propagated\": {}, \"rearbitrations\": {}}},",
            self.live_views_registered,
            self.live_delta_batches,
            self.live_rows_propagated,
            self.live_rearbitrations,
        );
        histogram_json(&mut out, "live_refresh_seconds", &self.live_refresh);
        out.push_str(",\n");
        let winners: Vec<String> =
            self.shard_winners.iter().map(u64::to_string).collect();
        let _ = writeln!(
            out,
            "  \"shard\": {{\"queries\": {}, \"net_bytes\": {}, \"net_frames\": {}, \
             \"net_retransmits\": {}, \"net_credit_stalls\": {}, \
             \"winner_counts\": [{}], \"divergent_nodes\": {}}},",
            self.shard_queries,
            self.net_bytes,
            self.net_frames,
            self.net_retransmits,
            self.net_credit_stalls,
            winners.join(", "),
            self.shard_divergent_nodes,
        );
        histogram_json(&mut out, "net_queue_wait_seconds", &self.net_queue_wait);
        out.push('\n');
        out.push('}');
        out
    }

    /// The report as one line of JSON (same schema as [`Self::to_json`],
    /// newlines collapsed) — the unit of the append-only JSON-lines
    /// time-series export.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        self.to_json().replace('\n', "")
    }

    /// The report as a Prometheus text exposition: `# HELP`/`# TYPE`
    /// metadata, `dqep_`-prefixed counters, and histogram summaries with
    /// `quantile` labels plus `_sum`/`_count` series.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        let s = &self.service;
        counter("dqep_sessions_completed_total", "Sessions completed successfully.", s.completed);
        counter("dqep_sessions_failed_total", "Sessions that failed.", s.failed);
        counter(
            "dqep_refused_admission_timeout_total",
            "Sessions refused by admission timeout.",
            self.refused_admission_timeout,
        );
        counter(
            "dqep_refused_grant_too_large_total",
            "Sessions refused for requesting more memory than the pool holds.",
            self.refused_grant_too_large,
        );
        counter(
            "dqep_refused_link_fault_total",
            "Queries failed by an exhausted link retransmission budget.",
            self.refused_link_fault,
        );
        counter(
            "dqep_refused_memory_exhausted_total",
            "Queries failed by an unservable memory reservation.",
            self.refused_memory_exhausted,
        );
        counter(
            "dqep_admission_retries_total",
            "Admissions granted only on a retry rung.",
            self.admission_retries,
        );
        counter("dqep_fallbacks_total", "Retryable failures absorbed by fallback.", s.totals.fallbacks);
        counter(
            "dqep_reopt_checkpoints_total",
            "Pipeline-breaker checkpoints observed.",
            self.reopt_checkpoints,
        );
        counter(
            "dqep_reopt_escapes_total",
            "Checkpoint observations outside their estimate interval.",
            self.reopt_escapes,
        );
        counter("dqep_reopt_replans_total", "Mid-query re-plans adopted.", self.reopt_replans);
        counter(
            "dqep_reopt_fallbacks_total",
            "Re-planned runs reverted to the original arbitration.",
            self.reopt_fallbacks,
        );
        counter(
            "dqep_live_views_registered_total",
            "Live views registered.",
            self.live_views_registered,
        );
        counter(
            "dqep_live_delta_batches_total",
            "Committed write batches propagated through live views.",
            self.live_delta_batches,
        );
        counter(
            "dqep_live_rearbitrations_total",
            "Drift-triggered live-view re-arbitrations.",
            self.live_rearbitrations,
        );
        counter("dqep_shard_queries_total", "Sharded queries executed.", self.shard_queries);
        counter(
            "dqep_shard_divergent_nodes_total",
            "Choose nodes whose winner diverged across shards.",
            self.shard_divergent_nodes,
        );
        counter("dqep_net_bytes_total", "Cross-shard bytes on the wire.", self.net_bytes);
        counter("dqep_net_frames_total", "Cross-shard frames delivered.", self.net_frames);
        counter(
            "dqep_net_retransmits_total",
            "Transmissions dropped by link faults and re-sent.",
            self.net_retransmits,
        );
        counter(
            "dqep_net_credit_stalls_total",
            "Sends blocked on credit backpressure.",
            self.net_credit_stalls,
        );
        let _ = writeln!(out, "# HELP dqep_shard_winner_total Per-shard arbitration wins by alternative index.");
        let _ = writeln!(out, "# TYPE dqep_shard_winner_total counter");
        for (i, &wins) in self.shard_winners.iter().enumerate() {
            let _ = writeln!(out, "dqep_shard_winner_total{{alternative=\"{i}\"}} {wins}");
        }
        let mut summary = |name: &str, help: &str, h: &HistogramSnapshot| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} summary");
            let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", pnum(h.p50_seconds));
            let _ = writeln!(out, "{name}{{quantile=\"0.95\"}} {}", pnum(h.p95_seconds));
            let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", pnum(h.p99_seconds));
            let _ = writeln!(out, "{name}_sum {}", pnum(h.mean_seconds * h.count as f64));
            let _ = writeln!(out, "{name}_count {}", h.count);
        };
        summary(
            "dqep_latency_seconds",
            "Submission-to-completion latency of successful sessions.",
            &self.latency,
        );
        summary("dqep_queue_wait_seconds", "Admission-queue wait of successful sessions.", &self.queue_wait);
        summary(
            "dqep_live_refresh_seconds",
            "Per-commit incremental refresh latency of live views.",
            &self.live_refresh,
        );
        summary(
            "dqep_net_queue_wait_seconds",
            "Credit-wait of stalled network sends.",
            &self.net_queue_wait,
        );
        out
    }
}

/// A Prometheus sample value: finite floats print plainly, non-finite
/// ones as `NaN` (the exposition format's spelling).
fn pnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "NaN".into()
    }
}

/// Lints a Prometheus text exposition: every non-comment line must be a
/// `name[{labels}] value` sample whose metric family was declared by a
/// preceding `# TYPE` line with a known type, sample values must parse as
/// floats, and `_sum`/`_count` series must belong to a declared summary.
///
/// # Errors
/// A description of the first malformed line.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    let mut families: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
    let valid_name =
        |s: &str| !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    for (no, line) in text.lines().enumerate() {
        let n = no + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| format!("line {n}: TYPE without a name"))?;
            let kind = it.next().ok_or_else(|| format!("line {n}: TYPE without a type"))?;
            if !valid_name(name) {
                return Err(format!("line {n}: invalid metric name `{name}`"));
            }
            if !matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped") {
                return Err(format!("line {n}: unknown metric type `{kind}`"));
            }
            families.insert(name, kind);
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and free comments
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample without a value"))?;
        let name = name_part.split('{').next().unwrap_or(name_part);
        if name_part.contains('{') && !name_part.ends_with('}') {
            return Err(format!("line {n}: unterminated label set"));
        }
        if !valid_name(name) {
            return Err(format!("line {n}: invalid sample name `{name}`"));
        }
        if value_part != "NaN" && value_part.parse::<f64>().is_err() {
            return Err(format!("line {n}: unparseable sample value `{value_part}`"));
        }
        let family = families.get(name).copied().or_else(|| {
            name.strip_suffix("_sum")
                .or_else(|| name.strip_suffix("_count"))
                .and_then(|base| families.get(base).copied().filter(|k| *k == "summary" || *k == "histogram"))
        });
        if family.is_none() {
            return Err(format!("line {n}: sample `{name}` has no preceding # TYPE"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        for ms in [1u64, 2, 4, 100] {
            h.record(Duration::from_millis(ms));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        // p50 must cover the 2 ms observation but not reach the max.
        assert!(snap.p50_seconds >= 0.002 && snap.p50_seconds < 0.1, "{snap:?}");
        // The top quantiles clamp to the exact max.
        assert!((snap.p99_seconds - 0.1).abs() < 0.03, "{snap:?}");
        assert!((snap.max_seconds - 0.1).abs() < 1e-6);
        assert!((snap.mean_seconds - 0.026_75).abs() < 1e-3);
        // Quantiles are monotone in q.
        assert!(snap.p50_seconds <= snap.p95_seconds);
        assert!(snap.p95_seconds <= snap.p99_seconds);
    }

    #[test]
    fn buckets_are_log_spaced_and_saturating() {
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1, "saturates at the top");
        assert_eq!(bucket_of(0), 0, "zero maps to the first bucket");
    }

    #[test]
    fn refusals_are_classified() {
        let m = MetricsRegistry::new();
        m.record_outcome(
            &Err(ServiceError::AdmissionTimeout { waited_ms: 5 }),
            Duration::from_millis(5),
        );
        m.record_outcome(
            &Err(ServiceError::GrantTooLarge {
                requested: 10,
                capacity: 1,
            }),
            Duration::ZERO,
        );
        m.record_outcome(
            &Err(ServiceError::Sql("nope".into())),
            Duration::ZERO,
        );
        assert_eq!(m.refused_admission_timeout(), 1);
        assert_eq!(m.refused_grant_too_large(), 1);
        assert_eq!(m.latency.snapshot().count, 0, "failures record no latency");
    }

    #[test]
    fn report_serializes_to_parseable_json() {
        let m = MetricsRegistry::new();
        m.record_outcome(
            &Err(ServiceError::AdmissionTimeout { waited_ms: 1 }),
            Duration::from_millis(1),
        );
        m.record_admission_retry();
        m.record_reopt(&dqep_executor::ReoptCounters {
            checkpoints: 3,
            escapes: 2,
            replans_adopted: 1,
            fallbacks: 1,
            ..Default::default()
        });
        m.record_live_view();
        m.record_live_batch(7);
        m.record_live_rearbitration();
        m.live_refresh.record(Duration::from_micros(40));
        let report = m.report(ServiceStats::default());
        let json = report.to_json();
        let doc = dqep_executor::parse_json(&json).expect("valid JSON");
        assert_eq!(
            doc.get("sessions").and_then(|s| s.get("refused_admission_timeout")).and_then(dqep_executor::JsonValue::as_num),
            Some(1.0)
        );
        assert_eq!(
            doc.get("sessions").and_then(|s| s.get("admission_retries")).and_then(dqep_executor::JsonValue::as_num),
            Some(1.0)
        );
        assert_eq!(
            doc.get("reopt").and_then(|r| r.get("checkpoints")).and_then(dqep_executor::JsonValue::as_num),
            Some(3.0)
        );
        assert_eq!(
            doc.get("reopt").and_then(|r| r.get("escapes")).and_then(dqep_executor::JsonValue::as_num),
            Some(2.0)
        );
        assert!(doc.get("latency_seconds").is_some());
        assert!(doc.get("plan_cache").is_some());
    }

    #[test]
    fn shard_counters_are_exported() {
        let m = MetricsRegistry::new();
        m.record_net(&dqep_executor::NetStats {
            frames: 5,
            bytes: 4096,
            retransmits: 1,
            credit_stalls: 2,
            credit_wait_ns: 1_000,
        });
        m.record_shard_winner(0);
        m.record_shard_winner(2);
        m.record_shard_winner(99); // folds into the last slot
        m.record_shard_query(1);
        m.net_queue_wait.record(Duration::from_micros(3));
        assert_eq!(m.net_bytes(), 4096);
        assert_eq!(m.net_frames(), 5);
        assert_eq!(m.shard_winners()[0], 1);
        assert_eq!(m.shard_winners()[2], 1);
        assert_eq!(m.shard_winners()[SHARD_WINNER_SLOTS - 1], 1);
        let json = m.report(ServiceStats::default()).to_json();
        let doc = dqep_executor::parse_json(&json).expect("valid JSON");
        let shard = doc.get("shard").expect("shard section");
        assert_eq!(
            shard.get("net_bytes").and_then(dqep_executor::JsonValue::as_num),
            Some(4096.0)
        );
        assert_eq!(
            shard.get("divergent_nodes").and_then(dqep_executor::JsonValue::as_num),
            Some(1.0)
        );
        assert!(doc.get("net_queue_wait_seconds").is_some());
    }

    #[test]
    fn classify_failure_buckets_refusals() {
        let m = MetricsRegistry::new();
        m.classify_failure(&crate::ServiceError::Exec(ExecError::Network(
            "link 0->1 exhausted".into(),
        )));
        m.classify_failure(&crate::ServiceError::Exec(ExecError::ResourceExhausted(
            Resource::Memory { requested: 10, limit: 1 },
        )));
        m.classify_failure(&crate::ServiceError::AdmissionTimeout { waited_ms: 5 });
        m.classify_failure(&crate::ServiceError::Shutdown); // unclassified: no bucket
        assert_eq!(m.refused_link_fault(), 1);
        assert_eq!(m.refused_memory_exhausted(), 1);
        let report = m.report(ServiceStats::default());
        assert_eq!(report.refused_link_fault, 1);
        assert_eq!(report.refused_memory_exhausted, 1);
        assert_eq!(report.refused_admission_timeout, 1);
        let doc = dqep_executor::parse_json(&report.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("sessions")
                .and_then(|s| s.get("refused_link_fault"))
                .and_then(dqep_executor::JsonValue::as_num),
            Some(1.0)
        );
    }

    #[test]
    fn prometheus_exposition_passes_lint() {
        let m = MetricsRegistry::new();
        m.latency.record(Duration::from_millis(3));
        m.record_shard_winner(1);
        m.record_net(&dqep_executor::NetStats {
            frames: 2,
            bytes: 128,
            retransmits: 0,
            credit_stalls: 0,
            credit_wait_ns: 0,
        });
        let text = m.report(ServiceStats::default()).to_prometheus();
        lint_prometheus(&text).expect("exposition lints clean");
        assert!(text.contains("# TYPE dqep_latency_seconds summary"));
        assert!(text.contains("dqep_latency_seconds{quantile=\"0.95\"}"));
        assert!(text.contains("dqep_latency_seconds_count 1"));
        assert!(text.contains("dqep_net_bytes_total 128"));
        assert!(text.contains("dqep_shard_winner_total{alternative=\"1\"} 1"));
    }

    #[test]
    fn prometheus_lint_rejects_malformed_text() {
        assert!(lint_prometheus("dqep_orphan_total 1\n").is_err(), "sample without TYPE");
        assert!(
            lint_prometheus("# TYPE x widget\nx 1\n").is_err(),
            "unknown metric type"
        );
        assert!(
            lint_prometheus("# TYPE x counter\nx notanumber\n").is_err(),
            "unparseable value"
        );
        assert!(
            lint_prometheus("# TYPE x counter\nx_sum 1\n").is_err(),
            "_sum on a counter family"
        );
        assert!(lint_prometheus("# TYPE x summary\nx_sum 1\nx_count 2\n").is_ok());
    }

    #[test]
    fn json_line_is_single_line_and_parses() {
        let m = MetricsRegistry::new();
        let line = m.report(ServiceStats::default()).to_json_line();
        assert!(!line.contains('\n'));
        assert!(dqep_executor::parse_json(&line).is_ok());
    }
}
