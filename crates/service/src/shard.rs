//! Sharded query execution: partitioned replicas, repartitioning network
//! exchange, and **per-shard** dynamic-plan arbitration.
//!
//! A [`ShardedService`] partitions every relation of one generated
//! database across `N` shard replicas (hash or range routing on a chosen
//! attribute). Each shard owns its own [`StoredDatabase`], its own
//! **local catalog statistics** (cardinalities refreshed and histograms
//! rebuilt from its partition alone), its own resource governor, and its
//! own tracer. The coordinator optimizes each query **once** into
//! dynamic per-relation access plans and broadcasts them; every shard
//! then resolves its *own* winner at bind time, because choose-plan
//! arbitration runs against the shard-local catalog. On skewed
//! partitions the shards legitimately disagree — a shard holding three
//! rows of a relation picks the index plan while a shard holding the
//! bulk scans — which is the paper's start-up-time decision procedure
//! applied per data partition. `force_uniform_winner` disables exactly
//! this: the coordinator resolves the plans against its *global*
//! statistics and broadcasts the already-resolved (choose-free) plans,
//! the baseline the shard benchmark beats.
//!
//! Joins run as hash-repartitioning exchange stages: both sides are
//! routed with the batched multiply-xor kernel
//! ([`dqep_executor::shard_route`]) on the join key, so co-partitioning
//! is guaranteed by construction and the union of shard-local joins is
//! exactly the global join. Batches travel as length-prefixed columnar
//! frames over a simulated network ([`SimNet`]) with per-link pacing,
//! deterministic fault injection, and credit-based backpressure; every
//! byte is accounted. The final gather merges order-preservingly (k-way
//! merge by the `ORDER BY` column) or deterministically concatenates in
//! shard order.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use dqep_algebra::LogicalExpr;
use dqep_catalog::{AttrId, Catalog, RelationId};
use dqep_core::Optimizer;
use dqep_cost::{Bindings, Environment};
use dqep_executor::{
    compile_dynamic_plan, credit_frames, decode_frame_traced, drain, drain_batch,
    encode_frame_traced, execute_plan_reopt_ctx, journal, merge_distributed, presized_batch,
    scatter_by_shard, ChooseAudit, EventKind, ExecContext, ExecError, ExecMode, FrameTrace,
    LinkFaultPlan, NetChannel, NetConfig, NetSpanStats, NetStats, ReoptConfig, ResourceLimits,
    RowBatch, SharedCounters, SimNet, SpanId, SpanStats, TraceReport, Tracer, Tuple, TupleLayout,
    BATCH_CAPACITY, NO_ID,
};
use dqep_plan::{evaluate_startup, PlanNode};
use dqep_sql::{parse_query, ParsedPredicate};
use dqep_storage::{install_histograms, refresh_histograms, StoredDatabase, ValueDistribution};

use crate::error::ServiceError;
use crate::metrics::MetricsRegistry;

/// How base rows are placed on shards at load time. Repartitioning
/// exchanges always hash on the *join key* regardless — this only decides
/// the initial layout, and with it how skewed the per-shard statistics
/// come out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRouting {
    /// Hash the given attribute index through the batched multiply-xor
    /// kernel: near-uniform placement whatever the value distribution.
    Hash {
        /// Attribute index to hash (clamped to the relation's arity).
        attr: u32,
    },
    /// Contiguous ranges of the attribute's domain: shard
    /// `⌊value · N / domain⌋`. Under a skewed value distribution this
    /// deliberately produces *unequal* partitions — the setting where
    /// per-shard arbitration diverges from the global winner.
    Range {
        /// Attribute index to range-partition on (clamped to arity).
        attr: u32,
    },
}

impl ShardRouting {
    fn attr_index(self, arity: usize) -> usize {
        let attr = match self {
            ShardRouting::Hash { attr } | ShardRouting::Range { attr } => attr as usize,
        };
        attr.min(arity.saturating_sub(1))
    }
}

/// Tuning knobs of a [`ShardedService`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shard replicas (minimum 1).
    pub shards: usize,
    /// Pacing of every inter-shard link.
    pub net: NetConfig,
    /// Deterministic link faults installed on the network at start.
    pub link_faults: LinkFaultPlan,
    /// Base-data placement policy.
    pub routing: ShardRouting,
    /// Buckets of the per-shard histograms (and the coordinator's).
    pub histogram_buckets: usize,
    /// Tuple or batch execution on every shard.
    pub exec_mode: ExecMode,
    /// Intra-shard degree of parallelism for local access plans.
    pub dop: usize,
    /// Per-shard resource budgets (each shard gets its own governor).
    pub limits: ResourceLimits,
    /// Simulated per-page I/O latency on every shard's disk, µs.
    pub io_latency_micros: u64,
    /// Seed of the deterministic global database the partitions are
    /// routed from.
    pub data_seed: u64,
    /// Zipf exponent applied to the *selection* attribute (index 0) of
    /// every relation; join attributes stay uniform. `None`: uniform.
    pub skew: Option<f64>,
    /// Memory grant in pages for bind-time arbitration (`None`: the
    /// environment's expected grant). Each shard arbitrates and executes
    /// under this grant independently — a shard is its own node.
    pub memory_pages: Option<f64>,
    /// Mid-query re-optimization budget for the per-shard access stages;
    /// `None` (default) arbitrates once at bind time.
    pub reopt: Option<ReoptConfig>,
    /// Resolve every choose-plan at the coordinator against the global
    /// statistics and broadcast the resolved plan — the "single-node
    /// winner everywhere" baseline. Default `false`: per-shard winners.
    pub force_uniform_winner: bool,
    /// Record a full distributed trace: coordinator and shard operator
    /// spans plus network-exchange spans, merged into one connected
    /// timeline in [`ShardOutcome::trace`]. Default `false`: shards run
    /// audit-only tracers (arbitration audits still flow, no per-operator
    /// wrapper cost).
    pub trace: bool,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 2,
            net: NetConfig::default(),
            link_faults: LinkFaultPlan::none(),
            routing: ShardRouting::Hash { attr: 0 },
            histogram_buckets: 16,
            exec_mode: ExecMode::default(),
            dop: 1,
            limits: ResourceLimits::unlimited(),
            io_latency_micros: 0,
            data_seed: 42,
            skew: None,
            memory_pages: None,
            reopt: None,
            force_uniform_winner: false,
            trace: false,
        }
    }
}

/// One shard replica: its partition of the data plus its local view of
/// the statistics.
#[derive(Debug)]
pub struct Shard {
    /// The shard's partition, with all catalog indexes built.
    pub db: StoredDatabase,
    /// The shard-local catalog: global schema, **local** cardinalities
    /// and histograms. This is what makes per-shard arbitration differ —
    /// the same dynamic plan costed against different statistics.
    pub catalog: Catalog,
}

/// What one sharded query returns.
#[derive(Debug)]
pub struct ShardOutcome {
    /// The merged result rows, in [`ShardOutcome::layout`] order.
    pub rows: Vec<Tuple>,
    /// Column layout of the result: the query's relations concatenated
    /// in `FROM` order (the canonical layout parity tests remap to).
    pub layout: TupleLayout,
    /// Result rows contributed by each shard.
    pub per_shard_rows: Vec<u64>,
    /// Choose-plan audit trails per shard, in arbitration order. Audits
    /// for the same plan node carry the same `node` id on every shard,
    /// so winners are comparable across shards.
    pub audits: Vec<Vec<ChooseAudit>>,
    /// Plan nodes whose winning alternative differed between shards.
    pub divergent_nodes: Vec<u64>,
    /// Wire traffic of this query alone (cross-shard + gather frames).
    pub net: NetStats,
    /// Per-link wire traffic of this query, in deterministic link order
    /// (stage by stage, then the gather links). Only links that carried
    /// at least one transmission appear.
    pub links: Vec<LinkTraffic>,
    /// Retryable failures absorbed across all shards (choose-plan
    /// fallbacks plus chunked-join degradations).
    pub fallbacks: u64,
    /// The merged distributed trace (coordinator + every shard + network
    /// exchange spans), present when [`ShardConfig::trace`] was set.
    pub trace: Option<TraceReport>,
}

/// One link's wire traffic for one query. Channels are created fresh per
/// query, so the channel counters *are* the query's per-link delta.
#[derive(Debug, Clone, Copy)]
pub struct LinkTraffic {
    /// Sending node (shards `0..n`; the coordinator is node `n`).
    pub from: u32,
    /// Receiving node.
    pub to: u32,
    /// The link's traffic counters.
    pub stats: NetStats,
}

impl ShardOutcome {
    /// How often each alternative index won a per-shard arbitration.
    #[must_use]
    pub fn winner_counts(&self) -> BTreeMap<usize, u64> {
        let mut counts = BTreeMap::new();
        for audit in self.audits.iter().flatten() {
            if let Some(w) = audit.winner {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Whether at least one choose node resolved differently on
    /// different shards.
    #[must_use]
    pub fn divergent(&self) -> bool {
        !self.divergent_nodes.is_empty()
    }
}

/// The distributed form of one parsed query: per-relation dynamic access
/// plans plus the repartitioning join chain gluing them together.
struct DistPlan {
    rels: Vec<RelationId>,
    access: Vec<Arc<PlanNode>>,
    joins: Vec<JoinStage>,
    order_by: Option<AttrId>,
}

/// One repartitioning join stage: the accumulated left side joins
/// `rels[index + 1]` on `left_attr = right_attr`; any further equi-join
/// predicates between the two sides apply as residual filters.
struct JoinStage {
    left_attr: AttrId,
    right_attr: AttrId,
    residual: Vec<(AttrId, AttrId)>,
}

/// Per-stage channel fan-out/fan-in of one shard. `None` marks the
/// shard's own slot (self-partitions never touch the wire).
struct StageWires {
    left_out: Vec<Option<NetChannel>>,
    left_in: Vec<Option<NetChannel>>,
    right_out: Vec<Option<NetChannel>>,
    right_in: Vec<Option<NetChannel>>,
}

struct ShardWires {
    stages: Vec<StageWires>,
    gather: NetChannel,
}

/// Accumulates the receive side of one link so a single receive span can
/// be recorded once the link drains: row/batch totals plus the first
/// propagated remote span id recovered from the frame headers.
#[derive(Default)]
struct RecvTrace {
    rows: u64,
    batches: u64,
    remote: Option<u64>,
}

impl RecvTrace {
    fn observe(&mut self, batch: &RowBatch, ft: FrameTrace) {
        self.rows += batch.len() as u64;
        self.batches += 1;
        if self.remote.is_none() {
            self.remote = ft.span;
        }
    }

    /// Records the receive span under `parent` when any frame arrived.
    /// Receive spans carry no byte accounting (the send side owns it, so
    /// totals never double count) — just the delivered rows and the
    /// propagated remote span.
    fn flush(&self, tracer: &Tracer, parent: Option<SpanId>, ch: &NetChannel) {
        if self.batches == 0 || !tracer.records_spans() {
            return;
        }
        let span = tracer.span(
            format!("Net-Recv {}<-{}", ch.to_node(), ch.from_node()),
            "Net-Recv",
            None,
            None,
            parent,
            1,
        );
        tracer.merge_span(
            span,
            &SpanStats { rows: self.rows, batches: self.batches, ..SpanStats::default() },
        );
        tracer.set_net(
            span,
            NetSpanStats {
                from: ch.from_node(),
                to: ch.to_node(),
                sent: false,
                remote_span: self.remote,
                ..NetSpanStats::default()
            },
        );
    }
}

/// What a shard worker reports back besides the rows it pushed over its
/// gather link.
struct ShardRun {
    rows_out: u64,
    fallbacks: u64,
    /// Audits synthesized from start-up decisions on the re-optimizing
    /// path (where resolved plans carry no choose operators to audit).
    synth_audits: Vec<ChooseAudit>,
}

/// A sharded query service: `N` partitioned replicas joined by a
/// simulated repartitioning network, with per-shard bind-time
/// arbitration. See the module docs for the architecture.
pub struct ShardedService {
    catalog: Catalog,
    env: Environment,
    config: ShardConfig,
    shards: Vec<Shard>,
    net: SimNet,
    metrics: Arc<MetricsRegistry>,
    completed: std::sync::atomic::AtomicU64,
    failed: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.shards.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl ShardedService {
    /// Builds the service: generates the global database
    /// deterministically, routes every relation's rows to its shard,
    /// loads each partition with all indexes, and refreshes each shard's
    /// catalog statistics (cardinalities *and* histograms) from its
    /// partition alone. The coordinator keeps global statistics with
    /// histograms over the full data.
    ///
    /// # Panics
    /// Panics when the catalog's page size differs from the storage page
    /// size (misconfiguration, same contract as database generation).
    #[must_use]
    pub fn new(mut catalog: Catalog, config: ShardConfig) -> ShardedService {
        let shards = config.shards.max(1);
        let dist = config.skew.map_or(ValueDistribution::Uniform, |exponent| {
            ValueDistribution::Zipf { exponent }
        });
        // Skew only the selection attribute; join columns stay uniform so
        // estimation error is localized where the routing can see it.
        let global = StoredDatabase::generate_profiled(&catalog, config.data_seed, |_, ai| {
            if ai == 0 {
                dist
            } else {
                ValueDistribution::Uniform
            }
        });
        install_histograms(&global, &mut catalog, config.histogram_buckets)
            .unwrap_or_else(|e| unreachable!("fresh disk cannot fault: {e}"));

        let rows = global.export_rows();
        let parts = partition_rows(&catalog, &rows, config.routing, shards);
        let shards: Vec<Shard> = parts
            .iter()
            .map(|part| {
                let db = StoredDatabase::from_rows(&catalog, part);
                db.disk.set_io_latency_micros(config.io_latency_micros);
                let mut local = catalog.clone();
                db.refresh_stats(&mut local);
                refresh_histograms(&db, &mut local, config.histogram_buckets);
                Shard { db, catalog: local }
            })
            .collect();

        let net = SimNet::new(config.net);
        net.set_link_faults(config.link_faults.clone());
        let env = Environment::dynamic_compile_time(&catalog.config);
        ShardedService {
            catalog,
            env,
            config,
            shards,
            net,
            metrics: Arc::new(MetricsRegistry::new()),
            completed: std::sync::atomic::AtomicU64::new(0),
            failed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The coordinator's (global-statistics) catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The shard replicas, for inspection in tests and benchmarks.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shared metrics registry (cross-shard traffic, queue-wait,
    /// winner counts accumulate here across queries).
    #[must_use]
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Replaces the link fault plan for subsequent queries.
    pub fn set_link_faults(&self, plan: LinkFaultPlan) {
        self.net.set_link_faults(plan);
    }

    /// The metrics snapshot — the same schema the serving layer exports,
    /// with the `shard` section populated (cross-shard traffic, per-link
    /// queue-wait histogram, winner counts, divergence).
    #[must_use]
    pub fn metrics_report(&self) -> crate::MetricsReport {
        use std::sync::atomic::Ordering;
        let stats = crate::ServiceStats {
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            ..crate::ServiceStats::default()
        };
        self.metrics.report(stats)
    }

    /// [`Self::metrics_report`] serialized as a JSON document.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.metrics_report().to_json()
    }

    /// [`Self::metrics_report`] in Prometheus text exposition format.
    #[must_use]
    pub fn metrics_prom(&self) -> String {
        self.metrics_report().to_prometheus()
    }

    /// Parses, distributes, and executes one query across all shards.
    ///
    /// # Errors
    /// [`ServiceError::Sql`] / [`ServiceError::Optimizer`] /
    /// [`ServiceError::Bind`] for coordinator-side failures;
    /// [`ServiceError::Exec`] when any shard fails (network faults past
    /// the retransmission budget included).
    pub fn execute(&self, sql: &str, binds: &[(&str, i64)]) -> Result<ShardOutcome, ServiceError> {
        let query = parse_query(sql, &self.catalog).map_err(|e| ServiceError::Sql(e.to_string()))?;
        let mut bindings = query.bindings(binds).map_err(ServiceError::Bind)?;
        if let Some(pages) = self.config.memory_pages {
            bindings = bindings.with_memory(pages);
        }
        let memory_pages = bindings
            .memory_pages
            .unwrap_or_else(|| self.env.memory.expected());
        let memory_bytes = (memory_pages * f64::from(self.catalog.config.page_size)) as usize;

        let plan = self.distribute(&query.expr, &query.predicates, query.order_by, &bindings)?;
        let outcome = self.run(&plan, &bindings, memory_bytes);
        match &outcome {
            Ok(ok) => {
                for audit in ok.audits.iter().flatten() {
                    if let Some(w) = audit.winner {
                        self.metrics.record_shard_winner(w);
                    }
                }
                self.metrics.record_shard_query(ok.divergent_nodes.len() as u64);
                self.metrics.record_net(&ok.net);
                self.completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            Err(e) => {
                self.metrics.record_shard_query(0);
                self.metrics.classify_failure(e);
                self.failed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Splits the query into per-relation dynamic access plans (optimized
    /// once, at the coordinator) and the join chain between them.
    fn distribute(
        &self,
        expr: &LogicalExpr,
        predicates: &[ParsedPredicate],
        order_by: Option<AttrId>,
        bindings: &Bindings,
    ) -> Result<DistPlan, ServiceError> {
        let mut rels = Vec::new();
        collect_relations(expr, &mut rels);

        let optimizer = Optimizer::new(&self.catalog, &self.env);
        let mut access = Vec::with_capacity(rels.len());
        for &rel in &rels {
            let mut node = LogicalExpr::Get { relation: rel };
            for pred in predicates {
                if let ParsedPredicate::Select(sp) = pred {
                    if sp.attr.relation == rel {
                        node = LogicalExpr::Select {
                            input: Box::new(node),
                            predicate: *sp,
                        };
                    }
                }
            }
            let mut plan = optimizer
                .optimize(&node)
                .map_err(|e| ServiceError::Optimizer(e.to_string()))?
                .plan;
            if self.config.force_uniform_winner {
                // The baseline: one global arbitration, broadcast resolved.
                plan = evaluate_startup(&plan, &self.catalog, &self.env, bindings).resolved;
            }
            access.push(plan);
        }

        let mut joins = Vec::with_capacity(rels.len().saturating_sub(1));
        for i in 1..rels.len() {
            let joined = &rels[..i];
            let next = rels[i];
            let mut applicable: Vec<(AttrId, AttrId)> = Vec::new();
            for pred in predicates {
                if let ParsedPredicate::Join(jp) = pred {
                    if joined.contains(&jp.left.relation) && jp.right.relation == next {
                        applicable.push((jp.left, jp.right));
                    } else if joined.contains(&jp.right.relation) && jp.left.relation == next {
                        applicable.push((jp.right, jp.left));
                    }
                }
            }
            let Some(&(left_attr, right_attr)) = applicable.first() else {
                return Err(ServiceError::Sql(format!(
                    "sharded execution needs an equi-join predicate connecting relation {next} \
                     to the preceding FROM relations (cross products are not distributed)"
                )));
            };
            joins.push(JoinStage {
                left_attr,
                right_attr,
                residual: applicable[1..].to_vec(),
            });
        }
        Ok(DistPlan { rels, access, joins, order_by })
    }

    /// Runs the distributed plan: one worker thread per shard, the
    /// coordinator draining the gather links on the current thread.
    fn run(
        &self,
        plan: &DistPlan,
        bindings: &Bindings,
        memory_bytes: usize,
    ) -> Result<ShardOutcome, ServiceError> {
        let n = self.shards.len();
        let net_before = self.net.stats();
        let (mut wires, gather_rx, link_handles) = self.wire_up(plan, n);
        // With tracing on, the coordinator owns the trace id and every
        // shard tracer joins it; off, shards run audit-only tracers so
        // arbitration audits still flow with no per-operator span cost.
        let coord_tracer = self.config.trace.then(|| Arc::new(Tracer::new()));
        let coord_root = coord_tracer.as_ref().map(|t| {
            t.span(format!("Coordinator x{n}"), "Coordinator", None, None, None, 1)
        });
        let tracers: Vec<Arc<Tracer>> = (0..n)
            .map(|_| match coord_tracer.as_ref() {
                Some(coord) => Arc::new(Tracer::with_trace_id(coord.trace_id())),
                None => Arc::new(Tracer::audit_only()),
            })
            .collect();

        let (runs, per_shard) = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (s, shard) in self.shards.iter().enumerate() {
                let shard_wires = wires.remove(0);
                let tracer = Arc::clone(&tracers[s]);
                let metrics = Arc::clone(&self.metrics);
                let (env, config) = (&self.env, &self.config);
                handles.push(scope.spawn(move || {
                    let result = run_shard(
                        s,
                        shard,
                        plan,
                        &shard_wires,
                        env,
                        bindings,
                        memory_bytes,
                        config,
                        tracer,
                        &metrics,
                    );
                    // Whatever happened, unblock every peer: close this
                    // shard's fan-in and fan-out (idempotent), so neither
                    // senders nor receivers wait on a dead shard.
                    for stage in &shard_wires.stages {
                        for ch in stage
                            .left_out
                            .iter()
                            .chain(&stage.left_in)
                            .chain(&stage.right_out)
                            .chain(&stage.right_in)
                            .flatten()
                        {
                            ch.close();
                        }
                    }
                    shard_wires.gather.close();
                    result
                }));
            }

            // The coordinator gathers while the shards run; draining one
            // link fully before the next keeps the merge deterministic.
            let mut per_shard: Vec<Result<Vec<Tuple>, ExecError>> = Vec::with_capacity(n);
            for rx in &gather_rx {
                let mut rows = Vec::new();
                let mut err = None;
                let mut recv = RecvTrace::default();
                while let Some(frame) = rx.recv() {
                    if err.is_some() {
                        continue; // keep draining so senders never block
                    }
                    match decode_frame_traced(&frame) {
                        Ok((batch, ft)) => {
                            recv.observe(&batch, ft);
                            rows.extend(batch.iter());
                        }
                        Err(e) => err = Some(e),
                    }
                }
                if let Some(tracer) = coord_tracer.as_ref() {
                    recv.flush(tracer, coord_root, rx);
                }
                per_shard.push(err.map_or(Ok(rows), Err));
            }
            let runs: Vec<Result<ShardRun, ExecError>> = handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(ExecError::Network("shard worker panicked".into())))
                })
                .collect();
            (runs, per_shard)
        });

        let mut shard_rows = Vec::with_capacity(n);
        let mut fallbacks = 0;
        let mut audits: Vec<Vec<ChooseAudit>> = Vec::with_capacity(n);
        for (s, run) in runs.into_iter().enumerate() {
            let run = run.map_err(ServiceError::Exec)?;
            let rows = match per_shard[s].as_ref() {
                Ok(rows) => rows,
                Err(e) => return Err(ServiceError::Exec(e.clone())),
            };
            debug_assert_eq!(rows.len() as u64, run.rows_out, "gather lost frames");
            fallbacks += run.fallbacks;
            let mut shard_audits = tracers[s].report().audits;
            shard_audits.extend(run.synth_audits);
            audits.push(shard_audits);
            shard_rows.push(rows.len() as u64);
        }
        let per_shard: Vec<Vec<Tuple>> = per_shard
            .into_iter()
            .map(|r| r.unwrap_or_default()) // errors already returned above
            .collect();

        let layout = canonical_layout(&self.catalog, &plan.rels);
        let rows = match plan.order_by {
            Some(attr) => kway_merge(per_shard, layout.require(attr)),
            None => per_shard.concat(),
        };

        let mut winners_by_node: BTreeMap<u64, BTreeSet<usize>> = BTreeMap::new();
        for audit in audits.iter().flatten() {
            if let Some(w) = audit.winner {
                winners_by_node.entry(audit.node).or_default().insert(w);
            }
        }
        let divergent_nodes: Vec<u64> = winners_by_node
            .iter()
            .filter(|(_, winners)| winners.len() > 1)
            .map(|(&node, _)| node)
            .collect();
        let trace_id = coord_tracer.as_ref().map_or(0, |t| t.trace_id());
        for (&node, winners) in &winners_by_node {
            if winners.len() > 1 {
                journal().record(
                    EventKind::ShardDivergence,
                    trace_id,
                    NO_ID,
                    node,
                    winners.len() as u64,
                    NO_ID,
                );
            }
        }

        // Per-link deltas: channels are created fresh per query, so each
        // channel's own counters are exactly this query's traffic.
        let links: Vec<LinkTraffic> = link_handles
            .iter()
            .map(|ch| LinkTraffic { from: ch.from_node(), to: ch.to_node(), stats: ch.stats() })
            .filter(|l| l.stats.frames > 0 || l.stats.bytes > 0)
            .collect();

        // The merged timeline: the coordinator's spans (root + gather
        // receives) plus every shard's report, re-parented under the
        // coordinator root. Synthesized re-opt audits stay out of the
        // merged report (they carry no alternatives); they remain in
        // `ShardOutcome::audits` for winner accounting.
        let trace = coord_tracer
            .as_ref()
            .map(|coord| {
                let shard_reports: Vec<TraceReport> =
                    tracers.iter().map(|t| t.report()).collect();
                merge_distributed(&coord.report(), &shard_reports)
            });

        Ok(ShardOutcome {
            rows,
            layout,
            per_shard_rows: shard_rows,
            audits,
            divergent_nodes,
            net: self.net.stats().since(&net_before),
            links,
            fallbacks,
            trace,
        })
    }

    /// Creates the full channel matrix: per join stage, a left-side and a
    /// right-side link for every ordered shard pair, plus one gather link
    /// per shard to the coordinator (node `n`). Channel credits are
    /// pre-sized from the coordinator's cardinality estimates — the same
    /// `estimated_rows` pre-sizing the in-memory exchange applies to its
    /// merge buffer.
    fn wire_up(
        &self,
        plan: &DistPlan,
        n: usize,
    ) -> (Vec<ShardWires>, Vec<NetChannel>, Vec<NetChannel>) {
        let mut wires: Vec<ShardWires> = (0..n)
            .map(|s| ShardWires {
                stages: (0..plan.joins.len())
                    .map(|_| StageWires {
                        left_out: (0..n).map(|_| None).collect(),
                        left_in: (0..n).map(|_| None).collect(),
                        right_out: (0..n).map(|_| None).collect(),
                        right_in: (0..n).map(|_| None).collect(),
                    })
                    .collect(),
                gather: self.net.channel(s, n, credit_frames(None)),
            })
            .collect();
        let gather_rx: Vec<NetChannel> = wires.iter().map(|w| w.gather.clone()).collect();
        // Keep a clone of every channel in deterministic order so the
        // coordinator can read per-link deltas after the query finishes.
        let mut links: Vec<NetChannel> = Vec::new();
        for (j, _) in plan.joins.iter().enumerate() {
            // The right side of stage j is base relation j+1: its scan
            // cardinality is known, and each of the n² links carries
            // roughly a 1/n² share of it.
            let right_card = self.catalog.relation(plan.rels[j + 1]).stats.cardinality;
            let per_link = (right_card / (n * n).max(1) as u64).max(1);
            for from in 0..n {
                for to in 0..n {
                    if from == to {
                        continue;
                    }
                    let left = self.net.channel(from, to, credit_frames(None));
                    links.push(left.clone());
                    wires[to].stages[j].left_in[from] = Some(left.clone());
                    wires[from].stages[j].left_out[to] = Some(left);
                    let right = self.net.channel(from, to, credit_frames(Some(per_link)));
                    links.push(right.clone());
                    wires[to].stages[j].right_in[from] = Some(right.clone());
                    wires[from].stages[j].right_out[to] = Some(right);
                }
            }
        }
        links.extend(gather_rx.iter().cloned());
        (wires, gather_rx, links)
    }
}

/// The result layout: the query's relations concatenated in `FROM`
/// order. The distributed join chain produces exactly this order on
/// every shard.
fn canonical_layout(catalog: &Catalog, rels: &[RelationId]) -> TupleLayout {
    let mut layout = TupleLayout::base(catalog, rels[0]);
    for &rel in &rels[1..] {
        layout = layout.concat(&TupleLayout::base(catalog, rel));
    }
    layout
}

fn collect_relations(expr: &LogicalExpr, out: &mut Vec<RelationId>) {
    match expr {
        LogicalExpr::Get { relation } => out.push(*relation),
        LogicalExpr::Select { input, .. } => collect_relations(input, out),
        LogicalExpr::Join { left, right, .. } => {
            collect_relations(left, out);
            collect_relations(right, out);
        }
    }
}

/// Order-preserving k-way merge of per-shard runs already sorted on
/// column `key`; ties resolve by shard index, so the merge is fully
/// deterministic.
fn kway_merge(mut runs: Vec<Vec<Tuple>>, key: usize) -> Vec<Tuple> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heads = vec![0usize; runs.len()];
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(i64, usize)> = None;
        for (s, run) in runs.iter().enumerate() {
            if let Some(row) = run.get(heads[s]) {
                let k = row[key];
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, s));
                }
            }
        }
        let Some((_, s)) = best else { break };
        out.push(std::mem::take(&mut runs[s][heads[s]]));
        heads[s] += 1;
    }
    out
}

/// The body of one shard worker: local access stages with shard-local
/// arbitration, repartitioning joins, optional local sort, gather.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    s: usize,
    shard: &Shard,
    plan: &DistPlan,
    wires: &ShardWires,
    env: &Environment,
    bindings: &Bindings,
    memory_bytes: usize,
    config: &ShardConfig,
    tracer: Arc<Tracer>,
    metrics: &MetricsRegistry,
) -> Result<ShardRun, ExecError> {
    // With tracing on, everything the shard does — operators, sends,
    // receives — nests under one per-shard root span; the coordinator
    // re-parents these roots under its own when merging.
    let root = tracer
        .records_spans()
        .then(|| tracer.span(format!("Shard {s}"), "Shard", None, None, None, config.dop.max(1)));
    let mut ctx = ExecContext::with_limits(SharedCounters::new(), config.limits)
        .with_mode(config.exec_mode)
        .with_dop(config.dop)
        .with_tracer(Arc::clone(&tracer));
    if let Some(root) = root {
        ctx = ctx.with_span_parent(root);
    }
    let mut synth_audits = Vec::new();

    let mut current = run_access(
        shard,
        &plan.access[0],
        env,
        bindings,
        memory_bytes,
        config,
        &ctx,
        metrics,
        &mut synth_audits,
    )?;
    let mut layout = TupleLayout::base(&shard.catalog, plan.rels[0]);

    for (j, stage) in plan.joins.iter().enumerate() {
        let right_rel = plan.rels[j + 1];
        let right_rows = run_access(
            shard,
            &plan.access[j + 1],
            env,
            bindings,
            memory_bytes,
            config,
            &ctx,
            metrics,
            &mut synth_audits,
        )?;
        let right_layout = TupleLayout::base(&shard.catalog, right_rel);
        let lkey = layout.require(stage.left_attr);
        let rkey = right_layout.require(stage.right_attr);

        let stage_wires = &wires.stages[j];
        let left_mine = repartition(
            s,
            current,
            layout.width(),
            lkey,
            &stage_wires.left_out,
            &stage_wires.left_in,
            metrics,
            &tracer,
            root,
        )?;
        let right_mine = repartition(
            s,
            right_rows,
            right_layout.width(),
            rkey,
            &stage_wires.right_out,
            &stage_wires.right_in,
            metrics,
            &tracer,
            root,
        )?;
        current = local_hash_join(&left_mine, lkey, &right_mine, rkey, &ctx)?;
        layout = layout.concat(&right_layout);
        for &(la, ra) in &stage.residual {
            let (lp, rp) = (layout.require(la), layout.require(ra));
            current.retain(|row| row[lp] == row[rp]);
        }
    }

    if let Some(attr) = plan.order_by {
        let c = layout.require(attr);
        current.sort_by_key(|row| row[c]);
    }

    send_rows(&wires.gather, &current, layout.width(), metrics, &tracer, root)?;
    Ok(ShardRun {
        rows_out: current.len() as u64,
        fallbacks: ctx.counters.fallbacks(),
        synth_audits,
    })
}

/// Runs one per-relation access plan locally. The plan still carries its
/// choose operators (unless the coordinator pre-resolved them), so
/// compiling against the *shard's* catalog is what turns bind-time
/// arbitration into a per-shard decision — the audit lands in the
/// shard's tracer. With re-optimization enabled, the access stage runs
/// through the checkpointing driver instead, and the start-up decisions
/// are synthesized into audits.
#[allow(clippy::too_many_arguments)]
fn run_access(
    shard: &Shard,
    plan: &Arc<PlanNode>,
    env: &Environment,
    bindings: &Bindings,
    memory_bytes: usize,
    config: &ShardConfig,
    ctx: &ExecContext,
    metrics: &MetricsRegistry,
    synth_audits: &mut Vec<ChooseAudit>,
) -> Result<Vec<Tuple>, ExecError> {
    if let Some(reopt) = config.reopt {
        let outcome =
            execute_plan_reopt_ctx(plan, &shard.db, &shard.catalog, env, bindings, reopt, ctx)?;
        metrics.record_reopt(&outcome.report.counters);
        for d in &outcome.startup.decisions {
            synth_audits.push(ChooseAudit {
                node: d.choose_plan.0,
                bind_values: Vec::new(),
                memory_pages: bindings.memory_pages,
                alternatives: Vec::new(),
                preferred: d.chosen_index,
                attempts: Vec::new(),
                winner: Some(d.chosen_index),
                fallbacks: 0,
            });
        }
        return Ok(outcome.rows);
    }
    let mut op =
        compile_dynamic_plan(plan, &shard.db, &shard.catalog, env, bindings, memory_bytes, ctx)?;
    match ctx.mode {
        ExecMode::Tuple => drain(op.as_mut()),
        ExecMode::Batch => drain_batch(op.as_mut()),
    }
}

/// One repartitioning exchange: hash-scatters `rows` on `key` across all
/// shards, sending cross-shard partitions as columnar frames and keeping
/// the self-partition local. A dedicated sender thread keeps this shard
/// receiving while it sends, so bounded credits can never deadlock the
/// all-to-all: receivers are always live, and the sender closes its
/// links the moment it finishes.
#[allow(clippy::too_many_arguments)]
fn repartition(
    s: usize,
    rows: Vec<Tuple>,
    width: usize,
    key: usize,
    outs: &[Option<NetChannel>],
    ins: &[Option<NetChannel>],
    metrics: &MetricsRegistry,
    tracer: &Arc<Tracer>,
    parent: Option<SpanId>,
) -> Result<Vec<Tuple>, ExecError> {
    std::thread::scope(|scope| {
        let sender = scope.spawn(|| {
            let result = send_partitions(s, &rows, width, key, outs, metrics, tracer, parent);
            for ch in outs.iter().flatten() {
                ch.close();
            }
            result
        });
        let mut mine: Vec<Tuple> = Vec::new();
        let mut recv_err: Option<ExecError> = None;
        for ch in ins.iter().flatten() {
            let mut recv = RecvTrace::default();
            while let Some(frame) = ch.recv() {
                if recv_err.is_some() {
                    continue; // drain so peers never block on a dead link
                }
                match decode_frame_traced(&frame) {
                    Ok((batch, ft)) => {
                        recv.observe(&batch, ft);
                        mine.extend(batch.iter());
                    }
                    Err(e) => recv_err = Some(e),
                }
            }
            recv.flush(tracer, parent, ch);
        }
        let local = sender
            .join()
            .unwrap_or_else(|_| Err(ExecError::Network("repartition sender panicked".into())))?;
        if let Some(e) = recv_err {
            return Err(e);
        }
        mine.extend(local);
        Ok(mine)
    })
}

/// Scatter-and-send half of [`repartition`]: batches rows, routes each
/// batch with the multiply-xor kernel, flushes full per-destination
/// batches as frames, and returns the self-partition. Destination
/// batches are pre-sized from the expected per-shard share.
#[allow(clippy::too_many_arguments)]
fn send_partitions(
    s: usize,
    rows: &[Tuple],
    width: usize,
    key: usize,
    outs: &[Option<NetChannel>],
    metrics: &MetricsRegistry,
    tracer: &Arc<Tracer>,
    parent: Option<SpanId>,
) -> Result<Vec<Tuple>, ExecError> {
    let shards = outs.len();
    let per_shard = (rows.len() / shards.max(1)).max(1) as u64;
    let mut dest: Vec<RowBatch> = (0..shards)
        .map(|_| presized_batch(width, Some(per_shard)))
        .collect();
    let mut local: Vec<Tuple> = Vec::with_capacity(per_shard as usize);
    let mut input = RowBatch::with_capacity(width, BATCH_CAPACITY);
    let (mut hashes, mut dests) = (Vec::new(), Vec::new());
    // One send span per destination link, opened lazily at the first
    // frame so the span id can ride in every frame header.
    let mut spans: Vec<Option<SpanId>> = vec![None; shards];
    let flush = |t: usize,
                 batch: &mut RowBatch,
                 local: &mut Vec<Tuple>,
                 spans: &mut Vec<Option<SpanId>>|
     -> Result<(), ExecError> {
        if batch.rows() == 0 {
            return Ok(());
        }
        if t == s {
            local.extend(batch.iter());
        } else if let Some(ch) = &outs[t] {
            let span = if tracer.records_spans() {
                Some(*spans[t].get_or_insert_with(|| {
                    tracer.span(
                        format!("Net-Send {s}->{t}"),
                        "Net-Send",
                        None,
                        None,
                        parent,
                        1,
                    )
                }))
            } else {
                None
            };
            let frame = encode_frame_traced(
                batch,
                FrameTrace { trace_id: tracer.trace_id(), span: span.map(|sp| sp.0 as u64) },
            );
            let waited = ch.send(frame)?;
            if !waited.is_zero() {
                metrics.net_queue_wait.record(waited);
            }
        }
        batch.clear();
        Ok(())
    };
    let result = (|| {
        for chunk in rows.chunks(BATCH_CAPACITY) {
            input.clear();
            for row in chunk {
                input.push_row(row);
            }
            scatter_by_shard(&input, &[key], &mut dest, &mut hashes, &mut dests);
            for (t, batch) in dest.iter_mut().enumerate() {
                if batch.rows() >= BATCH_CAPACITY {
                    flush(t, batch, &mut local, &mut spans)?;
                }
            }
        }
        for (t, batch) in dest.iter_mut().enumerate() {
            flush(t, batch, &mut local, &mut spans)?;
        }
        Ok(())
    })();
    // Whatever happened — including a send that exhausted its
    // retransmission budget — reconcile each opened span against its
    // channel's own counters, so span byte totals match `NetStats`
    // exactly.
    for (t, span) in spans.iter().enumerate() {
        if let (Some(span), Some(ch)) = (span, &outs[t]) {
            tracer.set_net(*span, send_net_stats(ch));
        }
    }
    result.map(|()| local)
}

/// The send-side [`NetSpanStats`] of one channel: the channel's
/// per-link counters verbatim (each channel has exactly one sender and
/// lives for one query, so its counters are the span's traffic).
fn send_net_stats(ch: &NetChannel) -> NetSpanStats {
    let st = ch.stats();
    NetSpanStats {
        from: ch.from_node(),
        to: ch.to_node(),
        sent: true,
        bytes: st.bytes,
        frames: st.frames,
        retransmits: st.retransmits,
        credit_stalls: st.credit_stalls,
        credit_wait_ns: st.credit_wait_ns,
        remote_span: None,
    }
}

/// Streams result rows over the gather link as columnar frames.
fn send_rows(
    ch: &NetChannel,
    rows: &[Tuple],
    width: usize,
    metrics: &MetricsRegistry,
    tracer: &Arc<Tracer>,
    parent: Option<SpanId>,
) -> Result<(), ExecError> {
    let mut batch = RowBatch::with_capacity(width, BATCH_CAPACITY);
    let mut span: Option<SpanId> = None;
    let result = (|| {
        for chunk in rows.chunks(BATCH_CAPACITY) {
            batch.clear();
            for row in chunk {
                batch.push_row(row);
            }
            let sp = if tracer.records_spans() {
                Some(*span.get_or_insert_with(|| {
                    tracer.span(
                        format!("Net-Send {}->{}", ch.from_node(), ch.to_node()),
                        "Net-Send",
                        None,
                        None,
                        parent,
                        1,
                    )
                }))
            } else {
                None
            };
            let frame = encode_frame_traced(
                &batch,
                FrameTrace { trace_id: tracer.trace_id(), span: sp.map(|sp| sp.0 as u64) },
            );
            let waited = ch.send(frame)?;
            if !waited.is_zero() {
                metrics.net_queue_wait.record(waited);
            }
        }
        Ok(())
    })();
    if let Some(span) = span {
        tracer.set_net(span, send_net_stats(ch));
    }
    result
}

/// Shard-local in-memory hash join of two co-partitioned row sets,
/// emitting `left ⊗ right` concatenations. The build side is the
/// smaller input; its hash table memory is reserved with the shard's
/// governor, and a refusal degrades to a **chunked build** (the build
/// side is processed in grant-sized pieces, re-scanning the probe side
/// per piece) instead of failing — counted as one fallback, the same
/// graceful-degradation contract choose-plan gives retryable opens.
fn local_hash_join(
    left: &[Tuple],
    lkey: usize,
    right: &[Tuple],
    rkey: usize,
    ctx: &ExecContext,
) -> Result<Vec<Tuple>, ExecError> {
    let build_left = left.len() <= right.len();
    let (build, bkey, probe, pkey) = if build_left {
        (left, lkey, right, rkey)
    } else {
        (right, rkey, left, lkey)
    };
    // Per-row footprint: the key map entry plus the row reference.
    let bytes_per_row = (build.first().map_or(0, Vec::len) * 8 + 48) as u64;
    let full = (build.len() as u64).saturating_mul(bytes_per_row).max(1);

    let mut granted = 0u64;
    let mut refusal = None;
    for divisor in [1u64, 2, 4, 8] {
        let ask = (full / divisor).max(bytes_per_row.max(1));
        match ctx.governor.try_reserve_memory(ask) {
            Ok(()) => {
                granted = ask;
                break;
            }
            Err(e) if e.is_retryable() => refusal = Some(e),
            Err(e) => return Err(e),
        }
    }
    if granted == 0 {
        return Err(refusal.unwrap_or_else(|| {
            ExecError::Network("memory reservation failed without an error".into())
        }));
    }
    if granted < full {
        ctx.counters.add_fallbacks(1);
    }

    let chunk_rows = ((granted / bytes_per_row.max(1)).max(1) as usize).min(build.len().max(1));
    let mut out = Vec::new();
    for build_chunk in build.chunks(chunk_rows) {
        let mut table: HashMap<i64, Vec<&Tuple>> = HashMap::with_capacity(build_chunk.len());
        for row in build_chunk {
            table.entry(row[bkey]).or_default().push(row);
        }
        for probe_row in probe {
            if let Some(matches) = table.get(&probe_row[pkey]) {
                for &build_row in matches {
                    let (l, r) = if build_left {
                        (build_row, probe_row)
                    } else {
                        (probe_row, build_row)
                    };
                    let mut joined = Vec::with_capacity(l.len() + r.len());
                    joined.extend_from_slice(l);
                    joined.extend_from_slice(r);
                    out.push(joined);
                }
            }
        }
    }
    ctx.governor.release_memory(granted);
    Ok(out)
}

/// Routes every relation's exported rows to its shard. Hash routing goes
/// through the batched kernel ([`shard_route`] via a throwaway batch);
/// range routing slices the attribute's domain into `shards` contiguous
/// stripes.
fn partition_rows(
    catalog: &Catalog,
    rows: &HashMap<RelationId, Vec<Vec<i64>>>,
    routing: ShardRouting,
    shards: usize,
) -> Vec<HashMap<RelationId, Vec<Vec<i64>>>> {
    let mut parts: Vec<HashMap<RelationId, Vec<Vec<i64>>>> =
        (0..shards).map(|_| HashMap::new()).collect();
    static EMPTY: Vec<Vec<i64>> = Vec::new();
    for rel in catalog.relations() {
        let rel_rows = rows.get(&rel.id).unwrap_or(&EMPTY);
        let attr = routing.attr_index(rel.attributes.len());
        let dests: Vec<usize> = match routing {
            ShardRouting::Hash { .. } => {
                let mut dests = Vec::with_capacity(rel_rows.len());
                let (mut hash_scratch, mut dest_scratch) = (Vec::new(), Vec::new());
                let width = rel.attributes.len();
                let mut batch = RowBatch::with_capacity(width, BATCH_CAPACITY);
                for chunk in rel_rows.chunks(BATCH_CAPACITY) {
                    batch.clear();
                    for row in chunk {
                        batch.push_row(row);
                    }
                    dqep_executor::shard_route(
                        &batch,
                        &[attr],
                        shards,
                        &mut hash_scratch,
                        &mut dest_scratch,
                    );
                    dests.extend(dest_scratch.iter().map(|&d| d as usize));
                }
                dests
            }
            ShardRouting::Range { .. } => {
                let domain = rel.attributes[attr].domain_size.max(1.0);
                rel_rows
                    .iter()
                    .map(|row| {
                        let v = row[attr].max(0) as f64;
                        ((v * shards as f64 / domain) as usize).min(shards - 1)
                    })
                    .collect()
            }
        };
        for part in &mut parts {
            part.insert(rel.id, Vec::new());
        }
        for (row, &d) in rel_rows.iter().zip(&dests) {
            if let Some(bucket) = parts[d].get_mut(&rel.id) {
                bucket.push(row.clone());
            }
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::{make_chain_catalog, SyntheticSpec, SystemConfig};

    fn chain_sql(n: usize) -> String {
        let from: Vec<String> = (1..=n).map(|i| format!("R{i}")).collect();
        let mut preds: Vec<String> =
            (1..n).map(|i| format!("R{i}.jr = R{}.jl", i + 1)).collect();
        preds.extend((1..=n).map(|i| format!("R{i}.a < :v{i}")));
        format!("SELECT * FROM {} WHERE {}", from.join(", "), preds.join(" AND "))
    }

    fn catalog(relations: usize) -> Catalog {
        make_chain_catalog(&SyntheticSpec::paper(relations, 7), SystemConfig::paper_1994())
    }

    fn single_node_rows(relations: usize, binds: &[(&str, i64)], sql: &str) -> Vec<Tuple> {
        // The single-node baseline shares catalog, seed, and distribution
        // with the sharded service's global database.
        let svc = ShardedService::new(
            catalog(relations),
            ShardConfig { shards: 1, ..ShardConfig::default() },
        );
        svc.execute(sql, binds).expect("single shard executes").rows
    }

    fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
        rows.sort();
        rows
    }

    #[test]
    fn partitions_cover_the_data_exactly() {
        let cat = catalog(2);
        let config = ShardConfig { shards: 4, ..ShardConfig::default() };
        let svc = ShardedService::new(cat, config);
        for rel in svc.catalog().relations() {
            let total: u64 = svc
                .shards()
                .iter()
                .map(|s| s.db.table(rel.id).heap.record_count())
                .sum();
            assert_eq!(total, rel.stats.cardinality, "{}", rel.name);
            // Shard-local catalogs hold the partition's cardinality.
            for shard in svc.shards() {
                assert_eq!(
                    shard.catalog.relation(rel.id).stats.cardinality,
                    shard.db.table(rel.id).heap.record_count()
                );
            }
        }
    }

    #[test]
    fn sharded_join_matches_single_node_multiset() {
        let sql = chain_sql(2);
        let binds = [("v1", 600i64), ("v2", 600i64)];
        let baseline = single_node_rows(2, &binds, &sql);
        for shards in [2usize, 4] {
            let svc = ShardedService::new(
                catalog(2),
                ShardConfig { shards, ..ShardConfig::default() },
            );
            let out = svc.execute(&sql, &binds).expect("sharded run");
            assert_eq!(
                sorted(out.rows.clone()),
                sorted(baseline.clone()),
                "{shards} shards"
            );
            assert_eq!(out.per_shard_rows.len(), shards);
            if shards > 1 {
                assert!(out.net.frames > 0, "joins repartition over the wire");
                assert!(out.net.bytes > 0);
            }
        }
    }

    #[test]
    fn order_by_merges_order_preservingly() {
        let sql = format!("{} ORDER BY R1.a", chain_sql(2));
        let binds = [("v1", 500i64), ("v2", 500i64)];
        let svc = ShardedService::new(
            catalog(2),
            ShardConfig { shards: 3, ..ShardConfig::default() },
        );
        let out = svc.execute(&sql, &binds).expect("sorted run");
        let key = out.layout.require(
            svc.catalog().relation_by_name("R1").expect("R1").attr_id("a").expect("a"),
        );
        assert!(out.rows.windows(2).all(|w| w[0][key] <= w[1][key]), "globally ordered");
        assert_eq!(
            sorted(out.rows.clone()),
            sorted(single_node_rows(2, &binds, &sql))
        );
    }

    #[test]
    fn per_shard_arbitration_audits_are_recorded() {
        let svc = ShardedService::new(
            catalog(1),
            ShardConfig { shards: 2, ..ShardConfig::default() },
        );
        let out = svc
            .execute("SELECT * FROM R1 WHERE R1.a < :v1", &[("v1", 30)])
            .expect("runs");
        assert_eq!(out.audits.len(), 2);
        for shard_audits in &out.audits {
            assert!(
                shard_audits.iter().all(|a| a.winner.is_some()),
                "every arbitration resolved"
            );
        }
        assert!(!out.winner_counts().is_empty(), "winners counted");
    }

    #[test]
    fn link_faults_within_budget_preserve_results() {
        let sql = chain_sql(2);
        let binds = [("v1", 700i64), ("v2", 700i64)];
        let baseline = single_node_rows(2, &binds, &sql);
        let svc = ShardedService::new(
            catalog(2),
            ShardConfig {
                shards: 2,
                link_faults: LinkFaultPlan {
                    fail_nth_frames: vec![1, 2],
                    max_retransmits: 4,
                },
                ..ShardConfig::default()
            },
        );
        let out = svc.execute(&sql, &binds).expect("faults absorbed");
        assert_eq!(sorted(out.rows.clone()), sorted(baseline));
        assert!(out.net.retransmits > 0, "drops were retransmitted");
    }

    #[test]
    fn exhausted_retransmission_budget_fails_the_query() {
        let svc = ShardedService::new(
            catalog(2),
            ShardConfig {
                shards: 2,
                link_faults: LinkFaultPlan {
                    fail_nth_frames: vec![1, 1, 1],
                    max_retransmits: 1,
                },
                ..ShardConfig::default()
            },
        );
        let err = svc
            .execute(&chain_sql(2), &[("v1", 900), ("v2", 900)])
            .expect_err("budget exhausted");
        assert!(
            matches!(err, ServiceError::Exec(ExecError::Network(_))),
            "{err:?}"
        );
    }

    #[test]
    fn range_routing_with_skew_diverges_winners() {
        let svc = ShardedService::new(
            catalog(1),
            ShardConfig {
                shards: 4,
                routing: ShardRouting::Range { attr: 0 },
                skew: Some(1.2),
                ..ShardConfig::default()
            },
        );
        // A selective predicate: shards with almost no matching rows
        // favour the index path, the bulk shard favours the scan.
        let out = svc
            .execute("SELECT * FROM R1 WHERE R1.a < :v1", &[("v1", 40)])
            .expect("runs");
        assert!(
            out.divergent(),
            "skewed range partitions should disagree: {:?}",
            out.winner_counts()
        );
        // Forcing the global winner removes the divergence.
        let forced = ShardedService::new(
            catalog(1),
            ShardConfig {
                shards: 4,
                routing: ShardRouting::Range { attr: 0 },
                skew: Some(1.2),
                force_uniform_winner: true,
                ..ShardConfig::default()
            },
        );
        let fout = forced
            .execute("SELECT * FROM R1 WHERE R1.a < :v1", &[("v1", 40)])
            .expect("runs");
        assert!(!fout.divergent(), "resolved broadcast cannot diverge");
        assert_eq!(sorted(out.rows), sorted(fout.rows), "same result either way");
    }

    #[test]
    fn metrics_accumulate_shard_counters() {
        let svc = ShardedService::new(
            catalog(2),
            ShardConfig { shards: 2, ..ShardConfig::default() },
        );
        svc.execute(&chain_sql(2), &[("v1", 500), ("v2", 500)]).expect("runs");
        let m = svc.metrics();
        assert_eq!(m.shard_queries(), 1);
        assert!(m.net_bytes() > 0);
        assert!(m.net_frames() > 0);
        assert!(m.shard_winners().iter().sum::<u64>() > 0);
    }

    #[test]
    fn kway_merge_is_ordered_and_complete() {
        let runs = vec![
            vec![vec![1i64, 10], vec![4, 11]],
            vec![vec![2i64, 20]],
            vec![],
            vec![vec![2i64, 30], vec![9, 31]],
        ];
        let merged = kway_merge(runs, 0);
        let keys: Vec<i64> = merged.iter().map(|r| r[0]).collect();
        assert_eq!(keys, vec![1, 2, 2, 4, 9]);
        // Ties resolve by shard index: shard 1's row precedes shard 3's.
        assert_eq!(merged[1], vec![2, 20]);
        assert_eq!(merged[2], vec![2, 30]);
    }
}
