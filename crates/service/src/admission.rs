//! Admission control: a global memory grant pool shared by all sessions.
//!
//! Each session's [`dqep_executor::ResourceGovernor`] enforces its *own*
//! grant; the pool bounds the **sum** of grants across concurrent
//! sessions, so the service never promises more memory than it has. A
//! session that cannot be admitted immediately queues on a condition
//! variable until capacity frees up or its deadline passes.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::error::ServiceError;

#[derive(Debug, Default)]
struct PoolState {
    used: u64,
}

/// SplitMix64 — deterministic, dependency-free mixing for the retry
/// jitter (this build carries no rand crate).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fixed-capacity memory grant pool. Cheap to share via `Arc`; grants
/// release automatically on drop.
#[derive(Debug)]
pub struct MemoryPool {
    state: Mutex<PoolState>,
    freed: Condvar,
    capacity: u64,
}

impl MemoryPool {
    /// A pool of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: u64) -> Arc<MemoryPool> {
        Arc::new(MemoryPool {
            state: Mutex::new(PoolState::default()),
            freed: Condvar::new(),
            capacity,
        })
    }

    /// Pool capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently granted.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.lock().used
    }

    // A poisoned mutex only means another session panicked while holding
    // the lock; the pool counter itself is always consistent (updated in
    // single statements), so recover the guard instead of propagating.
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Blocks until `bytes` can be granted or `deadline` passes.
    ///
    /// # Errors
    /// [`ServiceError::GrantTooLarge`] if `bytes` exceeds capacity (would
    /// never be admitted); [`ServiceError::AdmissionTimeout`] if the
    /// deadline passes first.
    pub fn acquire(
        self: &Arc<Self>,
        bytes: u64,
        deadline: Instant,
    ) -> Result<MemoryGrant, ServiceError> {
        if bytes > self.capacity {
            return Err(ServiceError::GrantTooLarge {
                requested: bytes,
                capacity: self.capacity,
            });
        }
        let started = Instant::now();
        let mut state = self.lock();
        loop {
            if state.used + bytes <= self.capacity {
                state.used += bytes;
                return Ok(MemoryGrant {
                    pool: Arc::clone(self),
                    bytes,
                });
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServiceError::AdmissionTimeout {
                    waited_ms: started.elapsed().as_millis() as u64,
                });
            }
            let wait = deadline.saturating_duration_since(now).min(Duration::from_millis(50));
            state = match self.freed.wait_timeout(state, wait) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// [`MemoryPool::acquire`] with one bounded retry for *transient*
    /// refusal: an admission timeout means capacity was merely busy, so
    /// the pool backs off for a short deterministically-jittered slice of
    /// `extension` (de-synchronizing sessions that timed out together)
    /// and waits once more, up to `extension` past now. Returns the grant
    /// together with whether the retry rung was used. A zero `extension`
    /// disables the retry.
    ///
    /// # Errors
    /// [`ServiceError::GrantTooLarge`] fails fast — no amount of waiting
    /// admits an oversized grant; [`ServiceError::AdmissionTimeout`] if
    /// the retry times out as well.
    pub fn acquire_retry(
        self: &Arc<Self>,
        bytes: u64,
        deadline: Instant,
        extension: Duration,
    ) -> Result<(MemoryGrant, bool), ServiceError> {
        match self.acquire(bytes, deadline) {
            Ok(grant) => Ok((grant, false)),
            Err(ServiceError::AdmissionTimeout { waited_ms }) if !extension.is_zero() => {
                // Jitter in [0, extension/4): seeded by the request shape,
                // so identical workloads reproduce bit-identical schedules.
                let span = (extension.as_micros() / 4).max(1) as u64;
                let jitter = Duration::from_micros(splitmix64(bytes ^ waited_ms) % span);
                std::thread::sleep(jitter);
                self.acquire(bytes, Instant::now() + extension)
                    .map(|grant| (grant, true))
            }
            Err(e) => Err(e),
        }
    }
}

/// A live memory grant; returns its bytes to the pool on drop.
#[derive(Debug)]
pub struct MemoryGrant {
    pool: Arc<MemoryPool>,
    bytes: u64,
}

impl MemoryGrant {
    /// Granted bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemoryGrant {
    fn drop(&mut self) {
        let mut state = self.pool.lock();
        state.used = state.used.saturating_sub(self.bytes);
        drop(state);
        self.pool.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn soon() -> Instant {
        Instant::now() + Duration::from_millis(50)
    }

    #[test]
    fn grants_within_capacity_and_releases_on_drop() {
        let pool = MemoryPool::new(100);
        let a = pool.acquire(60, soon()).unwrap();
        let b = pool.acquire(40, soon()).unwrap();
        assert_eq!(pool.used(), 100);
        drop(a);
        assert_eq!(pool.used(), 40);
        drop(b);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn oversized_grant_fails_fast() {
        let pool = MemoryPool::new(100);
        let err = pool.acquire(101, soon()).unwrap_err();
        assert!(matches!(err, ServiceError::GrantTooLarge { requested: 101, capacity: 100 }));
    }

    #[test]
    fn full_pool_times_out() {
        let pool = MemoryPool::new(100);
        let _held = pool.acquire(100, soon()).unwrap();
        let err = pool.acquire(1, Instant::now() + Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, ServiceError::AdmissionTimeout { .. }));
    }

    #[test]
    fn retry_admits_when_capacity_frees_during_the_extension() {
        let pool = MemoryPool::new(100);
        let held = pool.acquire(100, soon()).unwrap();
        let releaser = thread::spawn(move || {
            thread::sleep(Duration::from_millis(60));
            drop(held);
        });
        // The first wait (20 ms) times out while the pool is full; the
        // retry's extended deadline covers the release at ~60 ms.
        let (grant, retried) = pool
            .acquire_retry(40, Instant::now() + Duration::from_millis(20), Duration::from_secs(5))
            .unwrap();
        assert!(retried, "admission needed the retry rung");
        assert_eq!(grant.bytes(), 40);
        releaser.join().unwrap();
    }

    #[test]
    fn retry_is_not_used_when_first_wait_succeeds() {
        let pool = MemoryPool::new(100);
        let (grant, retried) = pool
            .acquire_retry(100, soon(), Duration::from_secs(5))
            .unwrap();
        assert!(!retried);
        assert_eq!(grant.bytes(), 100);
    }

    #[test]
    fn retry_gives_up_when_the_pool_stays_full() {
        let pool = MemoryPool::new(100);
        let _held = pool.acquire(100, soon()).unwrap();
        let err = pool
            .acquire_retry(1, Instant::now() + Duration::from_millis(5), Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, ServiceError::AdmissionTimeout { .. }));
    }

    #[test]
    fn oversized_grants_are_never_retried() {
        let pool = MemoryPool::new(100);
        let err = pool
            .acquire_retry(101, soon(), Duration::from_secs(5))
            .unwrap_err();
        assert!(matches!(err, ServiceError::GrantTooLarge { .. }));
    }

    #[test]
    fn waiter_is_admitted_when_capacity_frees() {
        let pool = MemoryPool::new(100);
        let held = pool.acquire(100, soon()).unwrap();
        let pool2 = Arc::clone(&pool);
        let waiter =
            thread::spawn(move || pool2.acquire(50, Instant::now() + Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(30));
        drop(held);
        let grant = waiter.join().unwrap().unwrap();
        assert_eq!(grant.bytes(), 50);
        assert_eq!(pool.used(), 50);
        drop(grant);
        assert_eq!(pool.used(), 0);
    }
}
