//! Admission control: a global memory grant pool shared by all sessions.
//!
//! Each session's [`dqep_executor::ResourceGovernor`] enforces its *own*
//! grant; the pool bounds the **sum** of grants across concurrent
//! sessions, so the service never promises more memory than it has. A
//! session that cannot be admitted immediately queues on a condition
//! variable until capacity frees up or its deadline passes.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::error::ServiceError;

#[derive(Debug, Default)]
struct PoolState {
    used: u64,
}

/// A fixed-capacity memory grant pool. Cheap to share via `Arc`; grants
/// release automatically on drop.
#[derive(Debug)]
pub struct MemoryPool {
    state: Mutex<PoolState>,
    freed: Condvar,
    capacity: u64,
}

impl MemoryPool {
    /// A pool of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: u64) -> Arc<MemoryPool> {
        Arc::new(MemoryPool {
            state: Mutex::new(PoolState::default()),
            freed: Condvar::new(),
            capacity,
        })
    }

    /// Pool capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently granted.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.lock().used
    }

    // A poisoned mutex only means another session panicked while holding
    // the lock; the pool counter itself is always consistent (updated in
    // single statements), so recover the guard instead of propagating.
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Blocks until `bytes` can be granted or `deadline` passes.
    ///
    /// # Errors
    /// [`ServiceError::GrantTooLarge`] if `bytes` exceeds capacity (would
    /// never be admitted); [`ServiceError::AdmissionTimeout`] if the
    /// deadline passes first.
    pub fn acquire(
        self: &Arc<Self>,
        bytes: u64,
        deadline: Instant,
    ) -> Result<MemoryGrant, ServiceError> {
        if bytes > self.capacity {
            return Err(ServiceError::GrantTooLarge {
                requested: bytes,
                capacity: self.capacity,
            });
        }
        let started = Instant::now();
        let mut state = self.lock();
        loop {
            if state.used + bytes <= self.capacity {
                state.used += bytes;
                return Ok(MemoryGrant {
                    pool: Arc::clone(self),
                    bytes,
                });
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServiceError::AdmissionTimeout {
                    waited_ms: started.elapsed().as_millis() as u64,
                });
            }
            let wait = deadline.saturating_duration_since(now).min(Duration::from_millis(50));
            state = match self.freed.wait_timeout(state, wait) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// A live memory grant; returns its bytes to the pool on drop.
#[derive(Debug)]
pub struct MemoryGrant {
    pool: Arc<MemoryPool>,
    bytes: u64,
}

impl MemoryGrant {
    /// Granted bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemoryGrant {
    fn drop(&mut self) {
        let mut state = self.pool.lock();
        state.used = state.used.saturating_sub(self.bytes);
        drop(state);
        self.pool.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn soon() -> Instant {
        Instant::now() + Duration::from_millis(50)
    }

    #[test]
    fn grants_within_capacity_and_releases_on_drop() {
        let pool = MemoryPool::new(100);
        let a = pool.acquire(60, soon()).unwrap();
        let b = pool.acquire(40, soon()).unwrap();
        assert_eq!(pool.used(), 100);
        drop(a);
        assert_eq!(pool.used(), 40);
        drop(b);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn oversized_grant_fails_fast() {
        let pool = MemoryPool::new(100);
        let err = pool.acquire(101, soon()).unwrap_err();
        assert!(matches!(err, ServiceError::GrantTooLarge { requested: 101, capacity: 100 }));
    }

    #[test]
    fn full_pool_times_out() {
        let pool = MemoryPool::new(100);
        let _held = pool.acquire(100, soon()).unwrap();
        let err = pool.acquire(1, Instant::now() + Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, ServiceError::AdmissionTimeout { .. }));
    }

    #[test]
    fn waiter_is_admitted_when_capacity_frees() {
        let pool = MemoryPool::new(100);
        let held = pool.acquire(100, soon()).unwrap();
        let pool2 = Arc::clone(&pool);
        let waiter =
            thread::spawn(move || pool2.acquire(50, Instant::now() + Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(30));
        drop(held);
        let grant = waiter.join().unwrap().unwrap();
        assert_eq!(grant.bytes(), 50);
        assert_eq!(pool.used(), 50);
        drop(grant);
        assert_eq!(pool.used(), 0);
    }
}
