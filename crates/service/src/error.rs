//! Service-level errors: everything that can happen to a session between
//! submission and completion.

use std::fmt;

use dqep_executor::ExecError;

/// Why a session failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The statement text failed to parse or validate.
    Sql(String),
    /// The caller's bindings are unusable (unknown host-variable name).
    Bind(String),
    /// Compile-time optimization failed (no plan found, invalid query).
    Optimizer(String),
    /// Execution failed; carries the executor's classification so callers
    /// can distinguish storage faults from budget violations.
    Exec(ExecError),
    /// The session waited longer than the queue timeout for a worker or
    /// for its memory grant.
    AdmissionTimeout {
        /// How long the session waited before giving up.
        waited_ms: u64,
    },
    /// The session's memory grant exceeds the pool capacity: it could
    /// never be admitted, no matter how long it waited.
    GrantTooLarge {
        /// Bytes requested.
        requested: u64,
        /// Pool capacity in bytes.
        capacity: u64,
    },
    /// The service is shutting down; the session was not executed.
    Shutdown,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Sql(e) => write!(f, "SQL error: {e}"),
            ServiceError::Bind(e) => write!(f, "binding error: {e}"),
            ServiceError::Optimizer(e) => write!(f, "optimizer error: {e}"),
            ServiceError::Exec(e) => write!(f, "execution error: {e}"),
            ServiceError::AdmissionTimeout { waited_ms } => {
                write!(f, "admission timed out after {waited_ms} ms")
            }
            ServiceError::GrantTooLarge {
                requested,
                capacity,
            } => write!(
                f,
                "memory grant of {requested} bytes exceeds pool capacity {capacity}"
            ),
            ServiceError::Shutdown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ExecError> for ServiceError {
    fn from(e: ExecError) -> ServiceError {
        ServiceError::Exec(e)
    }
}
