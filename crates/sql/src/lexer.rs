//! Tokenizer for the embedded-SQL subset.

use std::fmt;

/// Token kinds of the SQL subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `SELECT` (case-insensitive keyword).
    Select,
    /// `FROM`.
    From,
    /// `WHERE`.
    Where,
    /// `AND`.
    And,
    /// `ORDER` (only meaningful followed by `BY`).
    Order,
    /// `BY`.
    By,
    /// An identifier (relation or attribute name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A named host variable, `:name`.
    HostVar(String),
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Select => f.write_str("SELECT"),
            TokenKind::From => f.write_str("FROM"),
            TokenKind::Where => f.write_str("WHERE"),
            TokenKind::And => f.write_str("AND"),
            TokenKind::Order => f.write_str("ORDER"),
            TokenKind::By => f.write_str("BY"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::HostVar(s) => write!(f, "host variable :{s}"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Eq => f.write_str("="),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::Gt => f.write_str(">"),
        }
    }
}

/// A token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the input.
    pub offset: usize,
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// An unrecognized character.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// Byte offset.
        offset: usize,
    },
    /// A `:` with no identifier after it.
    EmptyHostVar {
        /// Byte offset.
        offset: usize,
    },
    /// Integer literal out of `i64` range.
    IntOutOfRange {
        /// Byte offset.
        offset: usize,
    },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar { ch, offset } => {
                write!(f, "unexpected character {ch:?} at byte {offset}")
            }
            LexError::EmptyHostVar { offset } => {
                write!(f, "':' must be followed by a variable name (byte {offset})")
            }
            LexError::IntOutOfRange { offset } => {
                write!(f, "integer literal out of range at byte {offset}")
            }
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenizes the input.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, offset: i });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, offset: i });
                i += 1;
            }
            '.' => {
                tokens.push(Token { kind: TokenKind::Dot, offset: i });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, offset: i });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Le, offset: i });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, offset: i });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, offset: i });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, offset: i });
                    i += 1;
                }
            }
            ':' => {
                let start = i + 1;
                let end = ident_end(bytes, start);
                if end == start {
                    return Err(LexError::EmptyHostVar { offset: i });
                }
                tokens.push(Token {
                    kind: TokenKind::HostVar(input[start..end].to_string()),
                    offset: i,
                });
                i = end;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                let mut end = i + 1;
                while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                    end += 1;
                }
                if c == '-' && end == start + 1 {
                    return Err(LexError::UnexpectedChar { ch: '-', offset: i });
                }
                let text = &input[start..end];
                let value: i64 = text
                    .parse()
                    .map_err(|_| LexError::IntOutOfRange { offset: start })?;
                tokens.push(Token { kind: TokenKind::Int(value), offset: start });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let end = ident_end(bytes, start);
                let word = &input[start..end];
                let kind = match word.to_ascii_uppercase().as_str() {
                    "SELECT" => TokenKind::Select,
                    "FROM" => TokenKind::From,
                    "WHERE" => TokenKind::Where,
                    "AND" => TokenKind::And,
                    "ORDER" => TokenKind::Order,
                    "BY" => TokenKind::By,
                    _ => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token { kind, offset: start });
                i = end;
            }
            other => return Err(LexError::UnexpectedChar { ch: other, offset: i }),
        }
    }
    Ok(tokens)
}

fn ident_end(bytes: &[u8], start: usize) -> usize {
    let mut end = start;
    while end < bytes.len() {
        let c = bytes[end] as char;
        if c.is_ascii_alphanumeric() || c == '_' {
            end += 1;
        } else {
            break;
        }
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_full_query() {
        let ks = kinds("SELECT * FROM r, s WHERE r.j = s.j AND r.a < :x");
        assert_eq!(
            ks,
            vec![
                TokenKind::Select,
                TokenKind::Star,
                TokenKind::From,
                TokenKind::Ident("r".into()),
                TokenKind::Comma,
                TokenKind::Ident("s".into()),
                TokenKind::Where,
                TokenKind::Ident("r".into()),
                TokenKind::Dot,
                TokenKind::Ident("j".into()),
                TokenKind::Eq,
                TokenKind::Ident("s".into()),
                TokenKind::Dot,
                TokenKind::Ident("j".into()),
                TokenKind::And,
                TokenKind::Ident("r".into()),
                TokenKind::Dot,
                TokenKind::Ident("a".into()),
                TokenKind::Lt,
                TokenKind::HostVar("x".into()),
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("select FROM Where aNd")[..], [
            TokenKind::Select,
            TokenKind::From,
            TokenKind::Where,
            TokenKind::And
        ]);
        // But identifiers keep their case.
        assert_eq!(kinds("Orders"), vec![TokenKind::Ident("Orders".into())]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(kinds("< <= = >= >"), vec![
            TokenKind::Lt,
            TokenKind::Le,
            TokenKind::Eq,
            TokenKind::Ge,
            TokenKind::Gt
        ]);
    }

    #[test]
    fn integers_and_negatives() {
        assert_eq!(kinds("42 -17 0"), vec![
            TokenKind::Int(42),
            TokenKind::Int(-17),
            TokenKind::Int(0)
        ]);
    }

    #[test]
    fn errors() {
        assert!(matches!(lex("r.a < :"), Err(LexError::EmptyHostVar { .. })));
        assert!(matches!(lex("r ? s"), Err(LexError::UnexpectedChar { ch: '?', .. })));
        assert!(matches!(
            lex("99999999999999999999"),
            Err(LexError::IntOutOfRange { .. })
        ));
        assert!(matches!(lex("a - b"), Err(LexError::UnexpectedChar { ch: '-', .. })));
    }

    #[test]
    fn offsets_point_into_input() {
        let toks = lex("SELECT *").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }
}
