//! Embedded-SQL front end.
//!
//! The paper's motivating interface is "an SQL query embedded within an
//! application program" whose predicates contain **host variables** bound
//! only at start-up-time. This crate parses that query shape into the
//! `dqep` logical algebra:
//!
//! ```sql
//! SELECT * FROM r, s, t
//! WHERE r.j = s.j AND s.j2 = t.j AND r.a < :x AND t.a >= 10
//! ```
//!
//! * the `FROM` list names catalog relations;
//! * `WHERE` is a conjunction of equi-join predicates
//!   (`rel.attr = rel.attr`) and selection predicates
//!   (`rel.attr OP constant` or `rel.attr OP :hostvar`);
//! * named host variables (`:x`) are assigned [`dqep_algebra::HostVar`] ids in order of
//!   first occurrence, and the parsed [`Query`] carries the name → id map
//!   so applications can supply [`dqep_cost::Bindings`] by name.
//!
//! ```
//! use dqep_catalog::{CatalogBuilder, SystemConfig};
//! use dqep_sql::parse_query;
//!
//! let catalog = CatalogBuilder::new(SystemConfig::paper_1994())
//!     .relation("orders", 1_000, 512, |r| r.attr("amount", 500.0))
//!     .build()
//!     .unwrap();
//! let q = parse_query("SELECT * FROM orders WHERE orders.amount < :limit", &catalog).unwrap();
//! assert_eq!(q.host_var_names(), vec!["limit"]);
//! let bindings = q.bindings(&[("limit", 250)]).unwrap();
//! assert_eq!(bindings.values.len(), 1);
//! ```

#![warn(missing_docs)]

mod ast;
mod lexer;
mod parser;

pub use ast::{ParsedPredicate, Query};
pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse_query, ParseError};
