//! The parsed query and its host-variable interface.

use std::collections::BTreeMap;

use dqep_algebra::{HostVar, JoinPred, LogicalExpr, PhysProps, SelectPred};
use dqep_catalog::AttrId;
use dqep_cost::Bindings;

/// A predicate as written in the query text (for diagnostics and tooling).
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedPredicate {
    /// An equi-join predicate between two relations.
    Join(JoinPred),
    /// A single-relation selection predicate.
    Select(SelectPred),
}

/// A parsed embedded query: the logical expression plus the mapping from
/// host-variable *names* (as written, `:x`) to the positional [`HostVar`]
/// ids the algebra uses.
#[derive(Debug, Clone)]
pub struct Query {
    /// The logical algebra expression, ready for the optimizer.
    pub expr: LogicalExpr,
    /// name → id, in order of first occurrence in the query text.
    pub host_vars: BTreeMap<String, HostVar>,
    /// All predicates, in source order.
    pub predicates: Vec<ParsedPredicate>,
    /// `ORDER BY rel.attr` (ascending), when present.
    pub order_by: Option<AttrId>,
}

impl Query {
    /// Host-variable names in id order (the order of first occurrence).
    #[must_use]
    pub fn host_var_names(&self) -> Vec<&str> {
        let mut pairs: Vec<(&str, HostVar)> = self
            .host_vars
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        pairs.sort_by_key(|(_, v)| *v);
        pairs.into_iter().map(|(n, _)| n).collect()
    }

    /// The id for a host-variable name.
    #[must_use]
    pub fn host_var(&self, name: &str) -> Option<HostVar> {
        self.host_vars.get(name).copied()
    }

    /// The physical properties to optimize for: sorted on the `ORDER BY`
    /// attribute, or no requirement. Pass to
    /// `Optimizer::optimize_with_props`.
    #[must_use]
    pub fn required_props(&self) -> PhysProps {
        match self.order_by {
            Some(attr) => PhysProps::sorted(attr),
            None => PhysProps::ANY,
        }
    }

    /// Builds [`Bindings`] from `(name, value)` pairs; fails on unknown
    /// names so typos surface early. Memory can be added afterwards with
    /// [`Bindings::with_memory`].
    pub fn bindings(&self, values: &[(&str, i64)]) -> Result<Bindings, String> {
        let mut b = Bindings::new();
        for (name, value) in values {
            let var = self
                .host_var(name)
                .ok_or_else(|| format!("unknown host variable :{name}"))?;
            b = b.with_value(var, *value);
        }
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_algebra::{CompareOp, RelSet};
    use dqep_catalog::{AttrId, RelationId};

    fn sample() -> Query {
        let attr = AttrId {
            relation: RelationId(0),
            index: 0,
        };
        let mut host_vars = BTreeMap::new();
        host_vars.insert("zeta".to_string(), HostVar(0));
        host_vars.insert("alpha".to_string(), HostVar(1));
        Query {
            expr: LogicalExpr::get(RelationId(0)),
            host_vars,
            predicates: vec![ParsedPredicate::Select(SelectPred::unbound(
                attr,
                CompareOp::Lt,
                HostVar(0),
            ))],
            order_by: None,
        }
    }

    #[test]
    fn required_props_follow_order_by() {
        let mut q = sample();
        assert_eq!(q.required_props(), PhysProps::ANY);
        let attr = AttrId {
            relation: RelationId(0),
            index: 0,
        };
        q.order_by = Some(attr);
        assert_eq!(q.required_props(), PhysProps::sorted(attr));
    }

    #[test]
    fn names_come_back_in_id_order() {
        let q = sample();
        // `zeta` was first in the text (id 0) even though `alpha` sorts
        // first alphabetically.
        assert_eq!(q.host_var_names(), vec!["zeta", "alpha"]);
        assert_eq!(q.host_var("alpha"), Some(HostVar(1)));
        assert_eq!(q.host_var("nope"), None);
    }

    #[test]
    fn bindings_by_name() {
        let q = sample();
        let b = q.bindings(&[("zeta", 10), ("alpha", 20)]).unwrap();
        assert_eq!(b.value(HostVar(0)), Some(10));
        assert_eq!(b.value(HostVar(1)), Some(20));
        assert!(q.bindings(&[("typo", 1)]).is_err());
        assert_eq!(q.expr.relations(), RelSet::singleton(RelationId(0)));
    }
}
