//! Recursive-descent parser and logical-plan builder.

use std::collections::BTreeMap;
use std::fmt;

use dqep_algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, RelSet, SelectPred};
use dqep_catalog::{AttrId, Catalog, RelationId};

use crate::ast::{ParsedPredicate, Query};
use crate::lexer::{lex, LexError, Token, TokenKind};

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// A token other than the expected one appeared.
    Unexpected {
        /// What the parser needed.
        expected: String,
        /// What it found (rendered), or "end of input".
        found: String,
        /// Byte offset, when known.
        offset: Option<usize>,
    },
    /// `FROM` names a relation not in the catalog.
    UnknownRelation(String),
    /// A predicate references `rel.attr` where `attr` is not an attribute
    /// of `rel`.
    UnknownAttribute(String, String),
    /// A predicate references a relation not listed in `FROM`.
    RelationNotInFrom(String),
    /// The same relation appears twice in `FROM` (aliases are not
    /// supported, matching the prototype's no-self-join model).
    DuplicateRelation(String),
    /// A `rel.attr = rel.attr` predicate with both sides on one relation.
    SelfJoin(String),
    /// A join predicate uses a non-equality operator.
    NonEquiJoin(String),
    /// The built expression failed algebra validation.
    Validation(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { expected, found, offset } => match offset {
                Some(o) => write!(f, "expected {expected}, found {found} at byte {o}"),
                None => write!(f, "expected {expected}, found {found}"),
            },
            ParseError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            ParseError::UnknownAttribute(r, a) => {
                write!(f, "relation `{r}` has no attribute `{a}`")
            }
            ParseError::RelationNotInFrom(r) => {
                write!(f, "relation `{r}` is not listed in FROM")
            }
            ParseError::DuplicateRelation(r) => {
                write!(f, "relation `{r}` appears twice in FROM (aliases unsupported)")
            }
            ParseError::SelfJoin(p) => write!(f, "self-join predicate not supported: {p}"),
            ParseError::NonEquiJoin(p) => {
                write!(f, "join predicates must use `=`: {p}")
            }
            ParseError::Validation(e) => write!(f, "invalid query: {e}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Lex(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses an embedded-SQL query against `catalog` and builds its logical
/// plan. See the crate docs for the accepted grammar.
pub fn parse_query(input: &str, catalog: &Catalog) -> Result<Query, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        catalog,
    };
    p.query()
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    catalog: &'a Catalog,
}

/// Right-hand side of a parsed comparison.
enum Rhs {
    Attr(String, String),
    Int(i64),
    Host(String),
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::Unexpected {
                expected: expected.to_string(),
                found: t.kind.to_string(),
                offset: Some(t.offset),
            },
            None => ParseError::Unexpected {
                expected: expected.to_string(),
                found: "end of input".to_string(),
                offset: None,
            },
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if &t.kind == kind => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token { kind: TokenKind::Ident(s), .. }) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect(&TokenKind::Select, "SELECT")?;
        self.expect(&TokenKind::Star, "*")?;
        self.expect(&TokenKind::From, "FROM")?;

        // FROM list.
        let mut from: Vec<(String, RelationId)> = Vec::new();
        loop {
            let name = self.ident("relation name")?;
            let rel = self
                .catalog
                .relation_by_name(&name)
                .map_err(|_| ParseError::UnknownRelation(name.clone()))?;
            if from.iter().any(|(_, id)| *id == rel.id) {
                return Err(ParseError::DuplicateRelation(name));
            }
            from.push((name, rel.id));
            match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Comma) => {
                    self.pos += 1;
                }
                _ => break,
            }
        }

        // WHERE clause (optional).
        let mut joins: Vec<JoinPred> = Vec::new();
        let mut selects: Vec<SelectPred> = Vec::new();
        let mut predicates: Vec<ParsedPredicate> = Vec::new();
        let mut host_vars: BTreeMap<String, HostVar> = BTreeMap::new();
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Where)) {
            self.pos += 1;
            loop {
                let pred = self.predicate(&from, &mut host_vars)?;
                match &pred {
                    ParsedPredicate::Join(j) => joins.push(*j),
                    ParsedPredicate::Select(s) => selects.push(*s),
                }
                predicates.push(pred);
                match self.peek().map(|t| &t.kind) {
                    Some(TokenKind::And) => {
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
        }
        // ORDER BY clause (optional).
        let mut order_by = None;
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Order)) {
            self.pos += 1;
            self.expect(&TokenKind::By, "BY")?;
            order_by = Some(self.qualified_attr(&from)?);
        }
        if let Some(t) = self.peek() {
            return Err(ParseError::Unexpected {
                expected: "AND, ORDER BY, or end of query".to_string(),
                found: t.kind.to_string(),
                offset: Some(t.offset),
            });
        }

        let expr = build_expr(&from, &selects, &joins);
        expr.validate(self.catalog)
            .map_err(|e| ParseError::Validation(e.to_string()))?;
        Ok(Query {
            expr,
            host_vars,
            predicates,
            order_by,
        })
    }

    fn predicate(
        &mut self,
        from: &[(String, RelationId)],
        host_vars: &mut BTreeMap<String, HostVar>,
    ) -> Result<ParsedPredicate, ParseError> {
        let lhs = self.qualified_attr(from)?;
        let op = match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Lt) => CompareOp::Lt,
            Some(TokenKind::Le) => CompareOp::Le,
            Some(TokenKind::Eq) => CompareOp::Eq,
            Some(TokenKind::Ge) => CompareOp::Ge,
            Some(TokenKind::Gt) => CompareOp::Gt,
            _ => return Err(self.unexpected("comparison operator")),
        };
        self.pos += 1;

        let rhs = match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Int(v)) => {
                self.pos += 1;
                Rhs::Int(v)
            }
            Some(TokenKind::HostVar(name)) => {
                self.pos += 1;
                Rhs::Host(name)
            }
            Some(TokenKind::Ident(_)) => {
                let save = self.pos;
                let rel = self.ident("relation name")?;
                if self.expect(&TokenKind::Dot, ".").is_err() {
                    self.pos = save;
                    return Err(self.unexpected("`rel.attr`, integer, or :hostvar"));
                }
                let attr = self.ident("attribute name")?;
                Rhs::Attr(rel, attr)
            }
            _ => return Err(self.unexpected("integer, :hostvar, or rel.attr")),
        };

        match rhs {
            Rhs::Attr(rrel, rattr) => {
                let right = self.resolve(from, &rrel, &rattr)?;
                if op != CompareOp::Eq {
                    return Err(ParseError::NonEquiJoin(format!(
                        "{} {op} {rrel}.{rattr}",
                        fmt_attr(from, lhs)
                    )));
                }
                if right.relation == lhs.relation {
                    return Err(ParseError::SelfJoin(format!(
                        "{} = {rrel}.{rattr}",
                        fmt_attr(from, lhs)
                    )));
                }
                Ok(ParsedPredicate::Join(JoinPred::new(lhs, right)))
            }
            Rhs::Int(v) => Ok(ParsedPredicate::Select(SelectPred::bound(lhs, op, v))),
            Rhs::Host(name) => {
                let next_id = HostVar(host_vars.len() as u32);
                let var = *host_vars.entry(name).or_insert(next_id);
                Ok(ParsedPredicate::Select(SelectPred::unbound(lhs, op, var)))
            }
        }
    }

    fn qualified_attr(&mut self, from: &[(String, RelationId)]) -> Result<AttrId, ParseError> {
        let rel = self.ident("`rel.attr`")?;
        self.expect(&TokenKind::Dot, "`.` (attributes must be qualified)")?;
        let attr = self.ident("attribute name")?;
        self.resolve(from, &rel, &attr)
    }

    fn resolve(
        &self,
        from: &[(String, RelationId)],
        rel: &str,
        attr: &str,
    ) -> Result<AttrId, ParseError> {
        let (_, rel_id) = from
            .iter()
            .find(|(n, _)| n == rel)
            .ok_or_else(|| ParseError::RelationNotInFrom(rel.to_string()))?;
        self.catalog
            .relation(*rel_id)
            .attr_id(attr)
            .ok_or_else(|| ParseError::UnknownAttribute(rel.to_string(), attr.to_string()))
    }
}

fn fmt_attr(from: &[(String, RelationId)], attr: AttrId) -> String {
    let rel = from
        .iter()
        .find(|(_, id)| *id == attr.relation)
        .map(|(n, _)| n.as_str())
        .unwrap_or("?");
    format!("{rel}.#{}", attr.index)
}

/// Builds the seed logical expression: selected leaves joined in a
/// connectivity-respecting order (FROM order, preferring relations already
/// connected to the current prefix so the seed avoids accidental cross
/// products; genuinely disconnected queries fall back to cross joins,
/// which the optimizer handles).
fn build_expr(
    from: &[(String, RelationId)],
    selects: &[SelectPred],
    joins: &[JoinPred],
) -> LogicalExpr {
    let leaf = |rel: RelationId| {
        let mut e = LogicalExpr::get(rel);
        for p in selects.iter().filter(|p| p.attr.relation == rel) {
            e = e.select(*p);
        }
        e
    };
    let connecting = |set: RelSet, rel: RelationId| -> Vec<JoinPred> {
        joins
            .iter()
            .filter(|p| {
                (set.contains(p.left.relation) && p.right.relation == rel)
                    || (set.contains(p.right.relation) && p.left.relation == rel)
            })
            .copied()
            .collect()
    };

    let mut remaining: Vec<RelationId> = from.iter().map(|(_, id)| *id).collect();
    let mut expr = leaf(remaining.remove(0));
    let mut covered = expr.relations();
    while !remaining.is_empty() {
        // Prefer the first remaining relation connected to the prefix.
        let idx = remaining
            .iter()
            .position(|&r| !connecting(covered, r).is_empty())
            .unwrap_or(0);
        let rel = remaining.remove(idx);
        let preds = connecting(covered, rel);
        expr = expr.join(leaf(rel), preds);
        covered = covered.union(RelSet::singleton(rel));
    }
    expr
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::{CatalogBuilder, SystemConfig};

    fn catalog() -> Catalog {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 100, 512, |r| r.attr("a", 100.0).attr("j", 50.0))
            .relation("s", 200, 512, |r| r.attr("a", 200.0).attr("j", 50.0).attr("k", 40.0))
            .relation("t", 300, 512, |r| r.attr("a", 300.0).attr("k", 40.0))
            .build()
            .unwrap()
    }

    #[test]
    fn parses_single_relation_query() {
        let cat = catalog();
        let q = parse_query("SELECT * FROM r WHERE r.a < :x", &cat).unwrap();
        assert_eq!(q.host_var_names(), vec!["x"]);
        assert_eq!(q.expr.select_predicates().len(), 1);
        assert!(q.expr.select_predicates()[0].is_unbound());
        q.expr.validate(&cat).unwrap();
    }

    #[test]
    fn parses_multiway_join_with_mixed_predicates() {
        let cat = catalog();
        let q = parse_query(
            "SELECT * FROM r, s, t \
             WHERE r.j = s.j AND s.k = t.k AND r.a < :x AND t.a >= 10",
            &cat,
        )
        .unwrap();
        assert_eq!(q.expr.relations().len(), 3);
        assert_eq!(q.expr.join_predicates().len(), 2);
        assert_eq!(q.expr.select_predicates().len(), 2);
        assert_eq!(q.host_var_names(), vec!["x"]);
        assert_eq!(q.predicates.len(), 4);
        q.expr.validate(&cat).unwrap();
    }

    #[test]
    fn host_vars_are_deduplicated_and_ordered() {
        let cat = catalog();
        let q = parse_query(
            "SELECT * FROM r, s WHERE r.j = s.j AND r.a < :hi AND s.a >= :lo AND s.k <= :hi",
            &cat,
        )
        .unwrap();
        assert_eq!(q.host_var_names(), vec!["hi", "lo"]);
        assert_eq!(q.host_var("hi"), Some(HostVar(0)));
        assert_eq!(q.host_var("lo"), Some(HostVar(1)));
        // :hi appears twice, same id both times.
        let unbound: Vec<HostVar> = q
            .expr
            .select_predicates()
            .iter()
            .filter_map(|p| p.host_var())
            .collect();
        assert_eq!(unbound.iter().filter(|v| **v == HostVar(0)).count(), 2);
    }

    #[test]
    fn from_order_does_not_force_cross_products() {
        // r and t are not directly connected; listing them adjacently must
        // not produce a cross-product seed.
        let cat = catalog();
        let q = parse_query(
            "SELECT * FROM r, t, s WHERE r.j = s.j AND s.k = t.k",
            &cat,
        )
        .unwrap();
        // Every join in the seed expression carries at least one predicate.
        fn no_cross(e: &LogicalExpr) -> bool {
            match e {
                LogicalExpr::Get { .. } => true,
                LogicalExpr::Select { input, .. } => no_cross(input),
                LogicalExpr::Join { left, right, predicates } => {
                    !predicates.is_empty() && no_cross(left) && no_cross(right)
                }
            }
        }
        assert!(no_cross(&q.expr), "seed contains a cross product: {}", q.expr);
    }

    #[test]
    fn where_clause_is_optional() {
        let cat = catalog();
        let q = parse_query("select * from r", &cat).unwrap();
        assert!(q.predicates.is_empty());
        assert_eq!(q.expr.to_string(), "Get(R0)");
    }

    #[test]
    fn error_cases() {
        let cat = catalog();
        let err = |sql: &str| parse_query(sql, &cat).unwrap_err();

        assert!(matches!(err("SELECT * FROM missing"), ParseError::UnknownRelation(_)));
        assert!(matches!(err("SELECT * FROM r, r"), ParseError::DuplicateRelation(_)));
        assert!(matches!(
            err("SELECT * FROM r WHERE r.zzz < 1"),
            ParseError::UnknownAttribute(_, _)
        ));
        assert!(matches!(
            err("SELECT * FROM r WHERE s.a < 1"),
            ParseError::RelationNotInFrom(_)
        ));
        assert!(matches!(
            err("SELECT * FROM r, s WHERE r.j < s.j"),
            ParseError::NonEquiJoin(_)
        ));
        assert!(matches!(
            err("SELECT * FROM r WHERE r.a = r.j"),
            ParseError::SelfJoin(_)
        ));
        assert!(matches!(err("SELECT r FROM r"), ParseError::Unexpected { .. }));
        assert!(matches!(err("SELECT * FROM r WHERE"), ParseError::Unexpected { .. }));
        assert!(matches!(err("SELECT * FROM r extra"), ParseError::Unexpected { .. }));
        assert!(matches!(err("SELECT * FROM r WHERE r.a ! 3"), ParseError::Lex(_)));
    }

    #[test]
    fn order_by_is_parsed_and_propagated() {
        use dqep_algebra::{PhysProps, SortOrder};
        let cat = catalog();
        let q = parse_query(
            "SELECT * FROM r WHERE r.a < :x ORDER BY r.a",
            &cat,
        )
        .unwrap();
        let attr = cat.relation_by_name("r").unwrap().attr_id("a").unwrap();
        assert_eq!(q.order_by, Some(attr));
        assert_eq!(q.required_props(), PhysProps::sorted(attr));
        // Without the clause: no requirement.
        let q2 = parse_query("SELECT * FROM r", &cat).unwrap();
        assert_eq!(q2.order_by, None);
        // Errors: missing BY, unqualified attribute.
        assert!(matches!(
            parse_query("SELECT * FROM r ORDER r.a", &cat),
            Err(ParseError::Unexpected { .. })
        ));
        let _ = SortOrder::None;
    }

    #[test]
    fn parsed_plans_optimize() {
        use dqep_cost::Environment;
        let cat = catalog();
        let q = parse_query(
            "SELECT * FROM r, s WHERE r.j = s.j AND r.a < :x",
            &cat,
        )
        .unwrap();
        let env = Environment::dynamic_compile_time(&cat.config);
        // No indexes in this catalog: the optimizer still produces a plan
        // (file scans + hash/merge joins).
        let result = dqep_core::Optimizer::new(&cat, &env).optimize(&q.expr);
        assert!(result.is_ok());
    }
}
