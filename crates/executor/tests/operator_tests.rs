//! Unit and property tests of individual executor operators against
//! reference (nested-loop / in-memory) implementations.

use dqep_algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, PhysicalOp, SelectPred};
use dqep_catalog::{Catalog, CatalogBuilder, SystemConfig};
use dqep_cost::{Bindings, Environment};
use dqep_executor::{compile_plan, ExecContext, SharedCounters, Tuple};
use dqep_plan::{PlanNodeBuilder, PlanNode};
use dqep_cost::{Cost, PlanStats};
use dqep_interval::Interval;
use dqep_storage::StoredDatabase;
use proptest::prelude::*;
use std::sync::Arc;

/// Catalog with two joinable relations; `r.a` indexed for selections,
/// `j` indexed on both sides for joins.
fn fixture(card_r: u64, card_s: u64, jdomain: f64) -> (Catalog, StoredDatabase) {
    let cat = CatalogBuilder::new(SystemConfig::paper_1994())
        .relation("r", card_r, 512, |r| {
            r.attr("a", card_r as f64)
                .attr("j", jdomain)
                .btree("a", false)
                .btree("j", false)
        })
        .relation("s", card_s, 512, |r| {
            r.attr("a", card_s as f64)
                .attr("j", jdomain)
                .btree("a", false)
                .btree("j", false)
        })
        .build()
        .unwrap();
    let db = StoredDatabase::generate(&cat, 1234);
    (cat, db)
}

fn rows_of(cat: &Catalog, db: &StoredDatabase, name: &str) -> Vec<Tuple> {
    let rel = cat.relation_by_name(name).unwrap();
    let t = db.table(rel.id);
    t.heap.scan().map(|rec| t.decode(&rec.unwrap())).collect()
}

/// Builds a raw physical plan node (no optimizer involved).
fn node(
    b: &mut PlanNodeBuilder,
    op: PhysicalOp,
    children: Vec<Arc<PlanNode>>,
) -> Arc<PlanNode> {
    b.node(
        op,
        children,
        PlanStats::new(Interval::point(0.0), 512.0),
        Cost::ZERO,
    )
}

fn run(plan: &Arc<PlanNode>, db: &StoredDatabase, cat: &Catalog, bindings: &Bindings, mem: usize) -> Vec<Tuple> {
    let ctx = ExecContext::new(SharedCounters::new());
    let mut op = compile_plan(plan, db, cat, bindings, mem, &ctx).unwrap();
    op.open().unwrap();
    let mut out = Vec::new();
    while let Some(t) = op.next().unwrap() {
        out.push(t);
    }
    op.close();
    out
}

fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort();
    v
}

/// Hash join, merge join (with sorts), and index join all produce exactly
/// the nested-loop reference result.
#[test]
fn all_join_algorithms_agree_with_nested_loop() {
    let (cat, db) = fixture(200, 150, 60.0);
    let r = cat.relation_by_name("r").unwrap();
    let s = cat.relation_by_name("s").unwrap();
    let rj = r.attr_id("j").unwrap();
    let sj = s.attr_id("j").unwrap();
    let pred = JoinPred::new(rj, sj);

    // Reference: nested loops.
    let r_rows = rows_of(&cat, &db, "r");
    let s_rows = rows_of(&cat, &db, "s");
    let mut reference = Vec::new();
    for a in &r_rows {
        for b in &s_rows {
            if a[1] == b[1] {
                let mut t = a.clone();
                t.extend_from_slice(b);
                reference.push(t);
            }
        }
    }
    let reference = sorted(reference);

    let bindings = Bindings::new();
    let mem = 64 * 2048;

    // Hash join (in-memory).
    let mut b = PlanNodeBuilder::new();
    let scan_r = node(&mut b, PhysicalOp::FileScan { relation: r.id }, vec![]);
    let scan_s = node(&mut b, PhysicalOp::FileScan { relation: s.id }, vec![]);
    let hj = node(
        &mut b,
        PhysicalOp::HashJoin { predicates: vec![pred] },
        vec![scan_r.clone(), scan_s.clone()],
    );
    assert_eq!(sorted(run(&hj, &db, &cat, &bindings, mem)), reference);

    // Hash join forced to partition (tiny memory budget).
    assert_eq!(sorted(run(&hj, &db, &cat, &bindings, 2048)), reference);

    // Merge join over explicit sorts.
    let sort_r = node(&mut b, PhysicalOp::Sort { attr: rj }, vec![scan_r.clone()]);
    let sort_s = node(&mut b, PhysicalOp::Sort { attr: sj }, vec![scan_s]);
    let mj = node(
        &mut b,
        PhysicalOp::MergeJoin { predicates: vec![pred] },
        vec![sort_r, sort_s],
    );
    assert_eq!(sorted(run(&mj, &db, &cat, &bindings, mem)), reference);

    // Merge join with spilling sorts.
    assert_eq!(sorted(run(&mj, &db, &cat, &bindings, 4 * 2048)), reference);

    // Index join (inner s through its j index).
    let (idx, _) = cat.index_on_attr(sj).unwrap();
    let ij = node(
        &mut b,
        PhysicalOp::IndexJoin {
            predicates: vec![pred],
            inner: s.id,
            index: idx,
            residual: None,
        },
        vec![scan_r],
    );
    assert_eq!(sorted(run(&ij, &db, &cat, &bindings, mem)), reference);
}

/// External sort output is sorted and a permutation of its input, for
/// memory budgets spanning in-memory and multi-run spills.
#[test]
fn sort_is_correct_across_memory_budgets() {
    let (cat, db) = fixture(500, 10, 100.0);
    let r = cat.relation_by_name("r").unwrap();
    let ra = r.attr_id("a").unwrap();
    let reference = sorted(rows_of(&cat, &db, "r"));

    for mem in [2048, 8 * 2048, 64 * 2048, 1024 * 2048] {
        let mut b = PlanNodeBuilder::new();
        let scan = node(&mut b, PhysicalOp::FileScan { relation: r.id }, vec![]);
        let sort = node(&mut b, PhysicalOp::Sort { attr: ra }, vec![scan]);
        let out = run(&sort, &db, &cat, &Bindings::new(), mem);
        assert!(
            out.windows(2).all(|w| w[0][0] <= w[1][0]),
            "not sorted at mem={mem}"
        );
        assert_eq!(sorted(out), reference, "lost/duplicated rows at mem={mem}");
    }
}

/// Filter-B-tree-Scan agrees with Filter over File-Scan for all operators.
#[test]
fn index_scan_agrees_with_filter_scan_for_all_operators() {
    let (cat, db) = fixture(300, 10, 50.0);
    let r = cat.relation_by_name("r").unwrap();
    let ra = r.attr_id("a").unwrap();
    let (idx, _) = cat.index_on_attr(ra).unwrap();

    for op in [CompareOp::Lt, CompareOp::Le, CompareOp::Eq, CompareOp::Ge, CompareOp::Gt] {
        for v in [0i64, 1, 150, 299, 400] {
            let pred = SelectPred::bound(ra, op, v);
            let mut b = PlanNodeBuilder::new();
            let scan = node(&mut b, PhysicalOp::FileScan { relation: r.id }, vec![]);
            let filter = node(&mut b, PhysicalOp::Filter { predicate: pred }, vec![scan]);
            let via_filter = sorted(run(&filter, &db, &cat, &Bindings::new(), 64 * 2048));

            let fbs = node(
                &mut b,
                PhysicalOp::FilterBtreeScan { relation: r.id, index: idx, predicate: pred },
                vec![],
            );
            let via_index = sorted(run(&fbs, &db, &cat, &Bindings::new(), 64 * 2048));
            assert_eq!(via_filter, via_index, "op {op}, value {v}");
        }
    }
}

/// B-tree-Scan delivers key order and the full relation.
#[test]
fn btree_scan_delivers_order() {
    let (cat, db) = fixture(250, 10, 50.0);
    let r = cat.relation_by_name("r").unwrap();
    let (idx, _) = cat.index_on_attr(r.attr_id("a").unwrap()).unwrap();
    let mut b = PlanNodeBuilder::new();
    let scan = node(
        &mut b,
        PhysicalOp::BtreeScan {
            relation: r.id,
            index: idx,
            key_attr: r.attr_id("a").unwrap(),
        },
        vec![],
    );
    let out = run(&scan, &db, &cat, &Bindings::new(), 64 * 2048);
    assert_eq!(out.len(), 250);
    assert!(out.windows(2).all(|w| w[0][0] <= w[1][0]));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random bindings, the optimizer-produced plan (whatever shape it
    /// takes) returns exactly the reference result of the logical query.
    #[test]
    fn optimized_plans_compute_the_logical_result(sel_v in 0i64..200, mem in 16u64..112) {
        let (cat, db) = fixture(200, 150, 60.0);
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        let q = LogicalExpr::get(r.id)
            .select(SelectPred::unbound(
                r.attr_id("a").unwrap(),
                CompareOp::Lt,
                HostVar(0),
            ))
            .join(
                LogicalExpr::get(s.id),
                vec![JoinPred::new(r.attr_id("j").unwrap(), s.attr_id("j").unwrap())],
            );
        let env = Environment::dynamic_uncertain_memory(&cat.config);
        let plan = dqep_core::Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;
        let bindings = Bindings::new().with_value(HostVar(0), sel_v).with_memory(mem as f64);
        let (summary, _) =
            dqep_executor::execute_plan(&plan, &db, &cat, &env, &bindings).unwrap();

        let r_rows = rows_of(&cat, &db, "r");
        let s_rows = rows_of(&cat, &db, "s");
        let expected: u64 = r_rows
            .iter()
            .filter(|t| t[0] < sel_v)
            .map(|t| s_rows.iter().filter(|u| u[1] == t[1]).count() as u64)
            .sum();
        prop_assert_eq!(summary.rows, expected);
    }
}
