//! EXPLAIN ANALYZE: rendering a [`TraceReport`] with interval estimates
//! next to actuals, drift flags, and the choose-plan audit trail.
//!
//! The paper's correctness condition is that the optimizer's interval
//! estimates *bracket* run-time behavior — `[lo, hi]` cardinality and
//! cost intervals are supposed to contain the actuals for any binding in
//! the modeled domain. [`card_drift`] / [`cost_drift`] test exactly that
//! per node, and the renderers flag violations (`DRIFT`). Output comes in
//! two shapes: [`render_explain`] for humans and [`explain_json`] for
//! machines; [`validate_explain_json`] re-parses the latter with the
//! bundled minimal JSON parser (no external JSON crate in this build) and
//! checks the schema, which is what the CI smoke job runs.

use dqep_catalog::SystemConfig;
use std::fmt::Write as _;

use crate::trace::{ChooseAudit, SpanRecord, TraceReport};

/// Slack applied when testing an actual against `[lo, hi]`: half a row
/// absolute (interval endpoints are real-valued expectations, actuals are
/// integers) plus a hair of relative tolerance for float noise.
fn outside(actual: f64, lo: f64, hi: f64, abs_slack: f64, rel_slack: f64) -> bool {
    let slack = abs_slack + rel_slack * hi.abs().max(1.0);
    actual < lo - slack || actual > hi + slack
}

/// Whether a span is eligible for drift evaluation: it must carry an
/// estimate, have actually run (`opens > 0`), and have finished without
/// errors — a choose-plan attempt that failed and fell back legitimately
/// delivered no rows, which is abandonment, not drift.
fn drift_eligible(record: &SpanRecord) -> bool {
    record.estimate.is_some() && record.stats.opens > 0 && record.stats.errors == 0
}

/// Whether the span's actual output cardinality fell outside its
/// compile-time `[lo, hi]` estimate — the paper's per-operator
/// correctness condition. `None` when the span is not drift-eligible
/// (no estimate, never opened, or ended in an error).
#[must_use]
pub fn card_drift(record: &SpanRecord) -> Option<bool> {
    if !drift_eligible(record) {
        return None;
    }
    let est = record.estimate?;
    Some(outside(
        record.stats.rows as f64,
        est.card.lo(),
        est.card.hi(),
        0.5,
        1e-9,
    ))
}

/// Whether the span's actual simulated cost (accounted CPU + I/O seconds
/// under `config`) fell outside its compile-time cost interval. Uses 5%
/// relative slack: the cost model and the execution accounting share
/// constants but differ in small per-operator approximations. `None`
/// under the same conditions as [`card_drift`].
#[must_use]
pub fn cost_drift(record: &SpanRecord, config: &SystemConfig) -> Option<bool> {
    if !drift_eligible(record) {
        return None;
    }
    let est = record.estimate?;
    Some(outside(
        record.stats.simulated_seconds(config),
        est.cost.lo(),
        est.cost.hi(),
        1e-6,
        0.05,
    ))
}

/// Formats a float compactly: integers without a fraction, everything
/// else with four decimals.
fn num(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn render_span(out: &mut String, report: &TraceReport, record: &SpanRecord, depth: usize, config: &SystemConfig) {
    let pad = "  ".repeat(depth);
    let node = record
        .node
        .map_or(String::new(), |n| format!("  [node n{n}, dop {}]", record.dop));
    let _ = writeln!(out, "{pad}{}{node}", record.label);
    if let Some(est) = record.estimate {
        let _ = writeln!(
            out,
            "{pad}  est: card=[{}, {}] cost=[{}, {}]s",
            num(est.card.lo()),
            num(est.card.hi()),
            num(est.cost.lo()),
            num(est.cost.hi()),
        );
    }
    let s = &record.stats;
    let flag = match (card_drift(record), cost_drift(record, config)) {
        (Some(true), Some(true)) => "DRIFT(card,cost)",
        (Some(true), _) => "DRIFT(card)",
        (_, Some(true)) => "DRIFT(cost)",
        (Some(false), _) | (_, Some(false)) => "ok",
        _ => "not-evaluated",
    };
    let _ = writeln!(
        out,
        "{pad}  act: rows={} batches={} sim={}s wall={:.3}ms io={}r+{}w mem={}B  [{flag}]",
        s.rows,
        s.batches,
        num(s.simulated_seconds(config)),
        (s.open_wall_ns + s.next_wall_ns) as f64 / 1e6,
        s.io.seq_reads + s.io.random_reads,
        s.io.writes,
        s.mem_peak,
    );
    if let Some(net) = &record.net {
        if net.sent {
            let _ = writeln!(
                out,
                "{pad}  net: link {}->{} sent {} frame(s), {} byte(s), {} retransmit(s), \
                 {} credit stall(s) ({:.3}ms waiting)",
                net.from,
                net.to,
                net.frames,
                net.bytes,
                net.retransmits,
                net.credit_stalls,
                net.credit_wait_ns as f64 / 1e6,
            );
        } else {
            let remote = net
                .remote_span
                .map_or("none".to_string(), |r| format!("span {r}"));
            let _ = writeln!(
                out,
                "{pad}  net: link {}->{} received (remote {remote})",
                net.from, net.to,
            );
        }
    }
    for child in report.children_of(record.id) {
        render_span(out, report, child, depth + 1, config);
    }
}

fn render_audit(out: &mut String, audit: &ChooseAudit) {
    let binds = audit
        .bind_values
        .iter()
        .map(|(var, value)| format!("{var}={value}"))
        .collect::<Vec<_>>()
        .join(", ");
    let mem = audit
        .memory_pages
        .map_or(String::new(), |p| format!(", memory={} pages", num(p)));
    let _ = writeln!(
        out,
        "  node n{}: binds {{{binds}}}{mem}, preferred=alt {}",
        audit.node, audit.preferred
    );
    for alt in &audit.alternatives {
        let _ = writeln!(
            out,
            "    alt {}: {} — predicted {}s",
            alt.index,
            alt.label,
            num(alt.predicted_seconds)
        );
    }
    for attempt in &audit.attempts {
        let _ = writeln!(out, "    attempt alt {} -> {}", attempt.index, attempt.outcome);
    }
    match audit.winner {
        Some(winner) => {
            let _ = writeln!(
                out,
                "    winner: alt {winner} after {} fallback(s)",
                audit.fallbacks
            );
        }
        None => {
            let _ = writeln!(out, "    winner: none (all alternatives failed)");
        }
    }
}

fn render_reopt(out: &mut String, reopt: &crate::reopt::ReoptReport) {
    let c = &reopt.counters;
    out.push_str("re-optimization:\n");
    let _ = writeln!(
        out,
        "  checkpoints={} escapes={} replans={}/{} denied={} failures={} \
         memory-degradations={} observed-arbitrations={} fallbacks={}",
        c.checkpoints,
        c.escapes,
        c.replans_adopted,
        c.replans_attempted,
        c.replans_denied,
        c.replan_failures,
        c.memory_degradations,
        c.observed_arbitrations,
        c.fallbacks,
    );
    for event in &reopt.events {
        let node = event.node.map_or(String::new(), |n| format!(" n{}", n.0));
        let observed = match (event.estimate, event.observed) {
            (Some((lo, hi)), Some(actual)) => {
                format!(" observed {} vs est [{}, {}] —", num(actual), num(lo), num(hi))
            }
            (None, Some(actual)) => format!(" observed {} —", num(actual)),
            _ => String::new(),
        };
        let _ = writeln!(out, "  {}{node}:{observed} {}", event.kind.label(), event.detail);
    }
}

/// Renders the human-readable EXPLAIN ANALYZE: the span tree with
/// per-node estimate vs actual lines and drift flags, followed by the
/// choose-plan audit trail and (when the query ran with mid-query
/// re-optimization) the re-optimization audit trail.
#[must_use]
pub fn render_explain(report: &TraceReport, config: &SystemConfig) -> String {
    let mut out = String::from("EXPLAIN ANALYZE\n");
    for root in report.roots() {
        render_span(&mut out, report, root, 0, config);
    }
    if !report.audits.is_empty() {
        out.push_str("choose-plan audit:\n");
        for audit in &report.audits {
            render_audit(&mut out, audit);
        }
    }
    if !report.reopt.events.is_empty() {
        render_reopt(&mut out, &report.reopt);
    }
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A finite float as a JSON number (`null` for NaN/infinity, which JSON
/// cannot represent).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn jopt(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "true",
        Some(false) => "false",
        None => "null",
    }
}

/// Serializes a [`TraceReport`] as the machine-readable EXPLAIN ANALYZE
/// document (hand-rolled — this build has no JSON crate). Top level:
/// `{"explain_analyze": {"nodes": [...], "audits": [...]}}`; nodes are
/// the flat span list with `parent` links, each carrying `estimate`
/// (nullable), `actual`, and the two drift flags (nullable booleans).
#[must_use]
pub fn explain_json(report: &TraceReport, config: &SystemConfig) -> String {
    let mut out = format!(
        "{{\"explain_analyze\":{{\"trace_id\":{},\"nodes\":[",
        report.trace_id
    );
    for (i, record) in report.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let s = &record.stats;
        let _ = write!(
            out,
            "{{\"span\":{},\"parent\":{},\"label\":\"{}\",\"kind\":\"{}\",\"node\":{},\"dop\":{}",
            record.id.0,
            record
                .parent
                .map_or("null".into(), |p| p.0.to_string()),
            esc(&record.label),
            esc(record.kind),
            record.node.map_or("null".into(), |n| n.to_string()),
            record.dop,
        );
        match record.estimate {
            Some(est) => {
                let _ = write!(
                    out,
                    ",\"estimate\":{{\"card_lo\":{},\"card_hi\":{},\"cost_lo\":{},\"cost_hi\":{}}}",
                    jnum(est.card.lo()),
                    jnum(est.card.hi()),
                    jnum(est.cost.lo()),
                    jnum(est.cost.hi()),
                );
            }
            None => out.push_str(",\"estimate\":null"),
        }
        let _ = write!(
            out,
            ",\"actual\":{{\"rows\":{},\"batches\":{},\"opens\":{},\"errors\":{},\
             \"open_wall_ns\":{},\"next_wall_ns\":{},\
             \"records\":{},\"compares\":{},\"hashes\":{},\
             \"seq_reads\":{},\"random_reads\":{},\"writes\":{},\
             \"mem_peak_bytes\":{},\"simulated_seconds\":{}}}",
            s.rows,
            s.batches,
            s.opens,
            s.errors,
            s.open_wall_ns,
            s.next_wall_ns,
            s.cpu.records,
            s.cpu.compares,
            s.cpu.hashes,
            s.io.seq_reads,
            s.io.random_reads,
            s.io.writes,
            s.mem_peak,
            jnum(s.simulated_seconds(config)),
        );
        let _ = write!(out, ",\"start_ns\":{}", record.start_ns);
        match &record.net {
            Some(net) => {
                let _ = write!(
                    out,
                    ",\"net\":{{\"from\":{},\"to\":{},\"sent\":{},\"bytes\":{},\"frames\":{},\
                     \"retransmits\":{},\"credit_stalls\":{},\"credit_wait_ns\":{},\
                     \"remote_span\":{}}}",
                    net.from,
                    net.to,
                    net.sent,
                    net.bytes,
                    net.frames,
                    net.retransmits,
                    net.credit_stalls,
                    net.credit_wait_ns,
                    net.remote_span.map_or("null".into(), |r| r.to_string()),
                );
            }
            None => out.push_str(",\"net\":null"),
        }
        let _ = write!(
            out,
            ",\"card_drift\":{},\"cost_drift\":{}}}",
            jopt(card_drift(record)),
            jopt(cost_drift(record, config)),
        );
    }
    out.push_str("],\"audits\":[");
    for (i, audit) in report.audits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"node\":{},\"preferred\":{},\"winner\":{},\"fallbacks\":{},\"memory_pages\":{}",
            audit.node,
            audit.preferred,
            audit.winner.map_or("null".into(), |w| w.to_string()),
            audit.fallbacks,
            audit.memory_pages.map_or("null".into(), jnum),
        );
        out.push_str(",\"binds\":[");
        for (j, (var, value)) in audit.bind_values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"var\":\"{}\",\"value\":{value}}}", esc(var));
        }
        out.push_str("],\"alternatives\":[");
        for (j, alt) in audit.alternatives.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"index\":{},\"label\":\"{}\",\"predicted_seconds\":{}}}",
                alt.index,
                esc(&alt.label),
                jnum(alt.predicted_seconds),
            );
        }
        out.push_str("],\"attempts\":[");
        for (j, attempt) in audit.attempts.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"index\":{},\"outcome\":\"{}\"}}",
                attempt.index,
                esc(&attempt.outcome)
            );
        }
        out.push_str("]}");
    }
    out.push_str("],\"reopt\":{\"counters\":{");
    let c = &report.reopt.counters;
    let _ = write!(
        out,
        "\"checkpoints\":{},\"escapes\":{},\"replans_attempted\":{},\"replans_adopted\":{},\
         \"replans_denied\":{},\"replan_failures\":{},\"memory_degradations\":{},\
         \"observed_arbitrations\":{},\"fallbacks\":{}",
        c.checkpoints,
        c.escapes,
        c.replans_attempted,
        c.replans_adopted,
        c.replans_denied,
        c.replan_failures,
        c.memory_degradations,
        c.observed_arbitrations,
        c.fallbacks,
    );
    out.push_str("},\"events\":[");
    for (i, event) in report.reopt.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"kind\":\"{}\",\"node\":{},\"estimate_lo\":{},\"estimate_hi\":{},\
             \"observed\":{},\"detail\":\"{}\"}}",
            event.kind.label(),
            event.node.map_or("null".into(), |n| n.0.to_string()),
            event.estimate.map_or("null".into(), |(lo, _)| jnum(lo)),
            event.estimate.map_or("null".into(), |(_, hi)| jnum(hi)),
            event.observed.map_or("null".into(), jnum),
            esc(&event.detail),
        );
    }
    out.push_str("]}}}");
    out
}

/// A parsed JSON value — the minimal model the schema checker needs.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, keys in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_word("null").map(|()| JsonValue::Null),
            Some(b't') => self.eat_word("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.eat_word("false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("malformed escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the document came from a
                    // &str, so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document. Minimal but complete for the subset this crate
/// emits (and standard JSON generally: nested values, escapes, exponent
/// numbers).
///
/// # Errors
/// A human-readable message with the byte offset of the first problem.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing content"));
    }
    Ok(value)
}

fn require_num(obj: &JsonValue, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(JsonValue::as_num)
        .ok_or_else(|| format!("{ctx}: missing numeric \"{key}\""))
}

fn require_nullable_bool(obj: &JsonValue, key: &str, ctx: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(JsonValue::Bool(_) | JsonValue::Null) => Ok(()),
        _ => Err(format!("{ctx}: \"{key}\" must be a boolean or null")),
    }
}

/// Validates an [`explain_json`] document against the expected schema —
/// the tiny checker the CI observability smoke job runs on the CLI's
/// `--explain-analyze --json` output.
///
/// # Errors
/// The first schema violation found, as a human-readable message.
pub fn validate_explain_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let ea = doc
        .get("explain_analyze")
        .ok_or("missing top-level \"explain_analyze\" object")?;
    let nodes = ea
        .get("nodes")
        .and_then(JsonValue::as_arr)
        .ok_or("\"explain_analyze.nodes\" must be an array")?;
    if nodes.is_empty() {
        return Err("\"nodes\" must not be empty".into());
    }
    if let Some(v) = ea.get("trace_id") {
        match v.as_num() {
            Some(n) if n >= 0.0 => {}
            _ => return Err("\"trace_id\" must be a non-negative number".into()),
        }
    }
    for (i, node) in nodes.iter().enumerate() {
        let ctx = format!("nodes[{i}]");
        let span = require_num(node, "span", &ctx)?;
        if span as usize != i {
            return Err(format!("{ctx}: span id {span} out of order"));
        }
        node.get("label")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{ctx}: missing string \"label\""))?;
        node.get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{ctx}: missing string \"kind\""))?;
        match node.get("parent") {
            Some(JsonValue::Null) => {}
            Some(JsonValue::Num(p)) if (*p as usize) < i => {}
            _ => return Err(format!("{ctx}: \"parent\" must be null or an earlier span id")),
        }
        match node.get("estimate") {
            Some(JsonValue::Null) => {}
            Some(est @ JsonValue::Obj(_)) => {
                let lo = require_num(est, "card_lo", &ctx)?;
                let hi = require_num(est, "card_hi", &ctx)?;
                if lo > hi {
                    return Err(format!("{ctx}: card_lo {lo} > card_hi {hi}"));
                }
                let lo = require_num(est, "cost_lo", &ctx)?;
                let hi = require_num(est, "cost_hi", &ctx)?;
                if lo > hi {
                    return Err(format!("{ctx}: cost_lo {lo} > cost_hi {hi}"));
                }
            }
            _ => return Err(format!("{ctx}: \"estimate\" must be an object or null")),
        }
        let actual = node
            .get("actual")
            .ok_or_else(|| format!("{ctx}: missing \"actual\""))?;
        for key in [
            "rows",
            "batches",
            "opens",
            "errors",
            "open_wall_ns",
            "next_wall_ns",
            "records",
            "compares",
            "hashes",
            "seq_reads",
            "random_reads",
            "writes",
            "mem_peak_bytes",
            "simulated_seconds",
        ] {
            let v = require_num(actual, key, &ctx)?;
            if v < 0.0 {
                return Err(format!("{ctx}: \"{key}\" is negative"));
            }
        }
        require_nullable_bool(node, "card_drift", &ctx)?;
        require_nullable_bool(node, "cost_drift", &ctx)?;
        // Distributed-tracing fields are additive: validated when present.
        if let Some(v) = node.get("start_ns") {
            match v.as_num() {
                Some(n) if n >= 0.0 => {}
                _ => return Err(format!("{ctx}: \"start_ns\" must be a non-negative number")),
            }
        }
        match node.get("net") {
            None | Some(JsonValue::Null) => {}
            Some(net @ JsonValue::Obj(_)) => {
                for key in [
                    "from",
                    "to",
                    "bytes",
                    "frames",
                    "retransmits",
                    "credit_stalls",
                    "credit_wait_ns",
                ] {
                    let v = require_num(net, key, &format!("{ctx}.net"))?;
                    if v < 0.0 {
                        return Err(format!("{ctx}.net: \"{key}\" is negative"));
                    }
                }
                match net.get("sent") {
                    Some(JsonValue::Bool(_)) => {}
                    _ => return Err(format!("{ctx}.net: \"sent\" must be a boolean")),
                }
                match net.get("remote_span") {
                    Some(JsonValue::Null | JsonValue::Num(_)) => {}
                    _ => {
                        return Err(format!(
                            "{ctx}.net: \"remote_span\" must be a number or null"
                        ))
                    }
                }
            }
            _ => return Err(format!("{ctx}: \"net\" must be an object or null")),
        }
    }
    let audits = ea
        .get("audits")
        .and_then(JsonValue::as_arr)
        .ok_or("\"explain_analyze.audits\" must be an array")?;
    for (i, audit) in audits.iter().enumerate() {
        let ctx = format!("audits[{i}]");
        require_num(audit, "node", &ctx)?;
        let preferred = require_num(audit, "preferred", &ctx)?;
        let alts = audit
            .get("alternatives")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| format!("{ctx}: missing \"alternatives\" array"))?;
        if alts.is_empty() {
            return Err(format!("{ctx}: \"alternatives\" must not be empty"));
        }
        if preferred as usize >= alts.len() {
            return Err(format!("{ctx}: preferred {preferred} out of range"));
        }
        for (j, alt) in alts.iter().enumerate() {
            let actx = format!("{ctx}.alternatives[{j}]");
            require_num(alt, "index", &actx)?;
            require_num(alt, "predicted_seconds", &actx)?;
            alt.get("label")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{actx}: missing string \"label\""))?;
        }
        let attempts = audit
            .get("attempts")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| format!("{ctx}: missing \"attempts\" array"))?;
        for (j, attempt) in attempts.iter().enumerate() {
            let actx = format!("{ctx}.attempts[{j}]");
            require_num(attempt, "index", &actx)?;
            attempt
                .get("outcome")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{actx}: missing string \"outcome\""))?;
        }
        match audit.get("winner") {
            Some(JsonValue::Null | JsonValue::Num(_)) => {}
            _ => return Err(format!("{ctx}: \"winner\" must be a number or null")),
        }
        let binds = audit
            .get("binds")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| format!("{ctx}: missing \"binds\" array"))?;
        for (j, bind) in binds.iter().enumerate() {
            let bctx = format!("{ctx}.binds[{j}]");
            bind.get("var")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{bctx}: missing string \"var\""))?;
            require_num(bind, "value", &bctx)?;
        }
    }
    // The re-optimization section is additive: absent in documents from
    // pre-reopt builds, validated when present.
    if let Some(reopt) = ea.get("reopt") {
        let counters = reopt
            .get("counters")
            .ok_or("\"reopt.counters\" must be an object")?;
        for key in [
            "checkpoints",
            "escapes",
            "replans_attempted",
            "replans_adopted",
            "replans_denied",
            "replan_failures",
            "memory_degradations",
            "observed_arbitrations",
            "fallbacks",
        ] {
            let v = require_num(counters, key, "reopt.counters")?;
            if v < 0.0 {
                return Err(format!("reopt.counters: \"{key}\" is negative"));
            }
        }
        let events = reopt
            .get("events")
            .and_then(JsonValue::as_arr)
            .ok_or("\"reopt.events\" must be an array")?;
        for (i, event) in events.iter().enumerate() {
            let ctx = format!("reopt.events[{i}]");
            event
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{ctx}: missing string \"kind\""))?;
            event
                .get("detail")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{ctx}: missing string \"detail\""))?;
            for key in ["node", "estimate_lo", "estimate_hi", "observed"] {
                match event.get(key) {
                    Some(JsonValue::Null | JsonValue::Num(_)) => {}
                    _ => return Err(format!("{ctx}: \"{key}\" must be a number or null")),
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_basic_documents() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": true}, "e": "x\"\nA"}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\"\nA"));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn validator_rejects_off_schema_documents() {
        assert!(validate_explain_json("{}").is_err());
        assert!(validate_explain_json(r#"{"explain_analyze":{"nodes":[],"audits":[]}}"#).is_err());
        let missing_actual = r#"{"explain_analyze":{"nodes":[{"span":0,"parent":null,"label":"x","kind":"x","node":null,"dop":1,"estimate":null,"card_drift":null,"cost_drift":null}],"audits":[]}}"#;
        assert!(validate_explain_json(missing_actual).is_err());
    }

    #[test]
    fn reopt_section_renders_and_validates() {
        use crate::reopt::{ReoptConfig, ReoptState};
        use crate::trace::{SpanId, SpanRecord, SpanStats};
        use dqep_interval::Interval;
        use dqep_plan::NodeId;
        let state = ReoptState::new(ReoptConfig {
            backoff_base_ms: 0,
            ..ReoptConfig::default()
        });
        state.observe_checkpoint(NodeId(5), "Filter", Interval::new(20.0, 40.0), 700);
        assert!(state.request_replan(&crate::governor::ResourceGovernor::unlimited()));
        state.record_replan(NodeId(5), "re-arbitrated remaining plan");
        let mut report = TraceReport::default();
        report.spans.push(SpanRecord {
            id: SpanId(0),
            parent: None,
            label: "x".into(),
            kind: "x",
            node: Some(5),
            estimate: None,
            dop: 1,
            stats: SpanStats::default(),
            start_ns: 0,
            net: None,
        });
        report.reopt = state.report();
        let config = SystemConfig::paper_1994();
        let text = render_explain(&report, &config);
        assert!(text.contains("re-optimization:"), "{text}");
        assert!(text.contains("escape n5"), "{text}");
        assert!(text.contains("replans=1/1"), "{text}");
        let json = explain_json(&report, &config);
        validate_explain_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"reopt\""));
        assert!(json.contains("\"kind\":\"escape\""));
    }

    #[test]
    fn drift_respects_eligibility() {
        use crate::trace::{NodeEstimate, SpanId, SpanRecord, SpanStats};
        use dqep_interval::Interval;
        let mut record = SpanRecord {
            id: SpanId(0),
            parent: None,
            label: "x".into(),
            kind: "x",
            node: Some(0),
            estimate: Some(NodeEstimate {
                card: Interval::new(10.0, 20.0),
                cost: Interval::new(0.0, 1.0),
            }),
            dop: 1,
            stats: SpanStats::default(),
            start_ns: 0,
            net: None,
        };
        assert_eq!(card_drift(&record), None, "never opened: not evaluated");
        record.stats.opens = 1;
        record.stats.rows = 15;
        assert_eq!(card_drift(&record), Some(false));
        record.stats.rows = 400;
        assert_eq!(card_drift(&record), Some(true));
        record.stats.errors = 1;
        assert_eq!(card_drift(&record), None, "errored spans are exempt");
    }
}
