//! The run-time choose-plan operator (Graefe & Ward, SIGMOD 1989).
//!
//! The 1989 paper defined choose-plan as an *operator in the query
//! evaluation plan*: an iterator that, when opened, runs its decision
//! procedure and from then on delegates `next` to the chosen input. This
//! module provides exactly that — [`ChoosePlanExec`] — so dynamic plans
//! can be compiled *as they are* and decide lazily inside the Volcano
//! tree, instead of being resolved up front.
//!
//! [`compile_dynamic_plan`] compiles any plan, mapping choose-plan nodes
//! to [`ChoosePlanExec`]; `open()` evaluates the node's subtree costs with
//! the actual bindings (the Section 4 decision procedure of the 1994
//! paper), compiles only the winning alternative, and opens it. Losing
//! alternatives are never compiled — mirroring how an access module never
//! instantiates the plans it does not run.
//!
//! Having every alternative at hand also buys **graceful degradation**:
//! when opening the chosen alternative fails *retryably* (an injected
//! storage fault, a memory grant the governor refuses to cover), the
//! operator falls back to the next alternative in predicted-cost order
//! instead of failing the query, recording each fallback in the query's
//! counters ([`crate::ExecSummary::fallbacks`]). Fatal errors —
//! cancellation, exceeded query-wide budgets, malformed plans — propagate
//! immediately.

use std::sync::Arc;

use dqep_catalog::Catalog;
use dqep_cost::{Bindings, Environment};
use dqep_plan::{evaluate_startup, evaluate_startup_observed, PlanNode, StartupResult};
use dqep_storage::StoredDatabase;

use crate::error::ExecError;
use crate::governor::ExecContext;
use crate::trace::{AltAudit, AttemptAudit, ChooseAudit};
use crate::tuple::{Tuple, TupleLayout};
use crate::{BoxedOperator, Operator};

/// The run-time choose-plan operator: decides at `open()`.
pub struct ChoosePlanExec<'a> {
    node: Arc<PlanNode>,
    db: &'a StoredDatabase,
    catalog: &'a Catalog,
    env: Environment,
    bindings: Bindings,
    memory_bytes: usize,
    ctx: ExecContext,
    /// Filled at `open()`: the compiled winning alternative.
    chosen: Option<BoxedOperator<'a>>,
    /// Index of the alternative actually running (for observability).
    chosen_index: Option<usize>,
    layout: TupleLayout,
    /// Column permutation rewriting the winner's tuples into the declared
    /// layout, when the winner is a commuted alternative whose column
    /// order differs. `None` — the common case — passes tuples through
    /// untouched.
    remap: Option<Vec<usize>>,
}

impl<'a> ChoosePlanExec<'a> {
    /// Creates the operator for a choose-plan `node`.
    ///
    /// # Panics
    /// Panics if `node` is not a choose-plan.
    #[must_use]
    pub fn new(
        node: Arc<PlanNode>,
        db: &'a StoredDatabase,
        catalog: &'a Catalog,
        env: Environment,
        bindings: Bindings,
        memory_bytes: usize,
        ctx: ExecContext,
    ) -> Self {
        assert!(node.is_choose_plan(), "ChoosePlanExec needs a choose-plan node");
        // All alternatives share the logical result; take the first
        // alternative's layout (identical relation sets).
        let layout = layout_of(&node.children[0], catalog);
        ChoosePlanExec {
            node,
            db,
            catalog,
            env,
            bindings,
            memory_bytes,
            ctx,
            chosen: None,
            chosen_index: None,
            layout,
            remap: None,
        }
    }

    /// Which alternative is running (after `open`). With fallbacks this
    /// may differ from the decision procedure's first pick.
    #[must_use]
    pub fn chosen_index(&self) -> Option<usize> {
        self.chosen_index
    }

    /// The decision procedure for `node` (the choose-plan itself or one
    /// alternative): plain start-up evaluation, or — when the context
    /// carries mid-query re-optimization state — the observed variant with
    /// the checkpoint observations applied, so a re-arbitration after a
    /// cardinality escape decides from what the query actually saw.
    fn arbitrate(&self, node: &Arc<PlanNode>) -> StartupResult {
        match self.ctx.reopt.as_ref() {
            Some(state) => evaluate_startup_observed(
                node,
                self.catalog,
                &self.env,
                &self.bindings,
                &state.observations(),
            ),
            None => evaluate_startup(node, self.catalog, &self.env, &self.bindings),
        }
    }

    /// The order in which to attempt alternatives: the decision
    /// procedure's pick first, then the rest by their individually
    /// predicted run time, ascending.
    fn attempt_order(&self, preferred: usize) -> Vec<usize> {
        let mut rest: Vec<(usize, f64)> = self
            .node
            .children
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != preferred)
            .map(|(i, alt)| {
                let cost = self.arbitrate(alt).predicted_run_seconds;
                (i, cost)
            })
            .collect();
        rest.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut order = Vec::with_capacity(self.node.children.len());
        order.push(preferred);
        order.extend(rest.into_iter().map(|(i, _)| i));
        order
    }

    /// Hands a completed arbitration audit to the tracer, if tracing, and
    /// records the arbitration outcome in the flight-recorder journal.
    fn flush_audit(&self, audit: ChooseAudit) {
        if let Some(tracer) = self.ctx.tracer.as_ref() {
            crate::journal::journal().record(
                crate::journal::EventKind::ArbitrationWinner,
                tracer.trace_id(),
                crate::journal::NO_ID,
                audit.node,
                audit.winner.map_or(crate::journal::NO_ID, |w| w as u64),
                audit.fallbacks,
            );
            tracer.audit(audit);
        }
    }
}

/// The tuple layout a plan subtree produces (base relations in DAG
/// leaf-visit order, matching how join operators concatenate).
pub(crate) fn layout_of(node: &Arc<PlanNode>, catalog: &Catalog) -> TupleLayout {
    use dqep_algebra::PhysicalOp::*;
    match &node.op {
        FileScan { relation } | BtreeScan { relation, .. } | FilterBtreeScan { relation, .. } => {
            TupleLayout::base(catalog, *relation)
        }
        Filter { .. } | Sort { .. } => layout_of(&node.children[0], catalog),
        HashJoin { .. } | MergeJoin { .. } => layout_of(&node.children[0], catalog)
            .concat(&layout_of(&node.children[1], catalog)),
        IndexJoin { inner, .. } => {
            layout_of(&node.children[0], catalog).concat(&TupleLayout::base(catalog, *inner))
        }
        ChoosePlan => layout_of(&node.children[0], catalog),
    }
}

impl Operator for ChoosePlanExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        // Decision procedure: re-evaluate the alternatives' cost functions
        // with the actual bindings (and any checkpoint observations), once
        // per DAG node.
        let startup = self.arbitrate(&self.node);
        if let Some(state) = self.ctx.reopt.as_ref() {
            let observed = state.observations().len();
            if observed > 0 {
                state.record_arbitration(
                    self.node.id,
                    &format!("arbitrated with {observed} checkpoint observation(s)"),
                );
            }
        }
        let preferred = startup
            .decisions
            .iter()
            .find(|d| d.choose_plan == self.node.id)
            .map(|d| d.chosen_index)
            .unwrap_or(0);
        // With tracing on, record the full arbitration audit trail: every
        // alternative with its bind-time prediction, the bound values, the
        // attempts in order, and the eventual winner. Costs nothing when
        // tracing is off (the map never runs).
        let mut audit = self.ctx.tracer.as_ref().map(|_| ChooseAudit {
            node: self.node.id.0,
            bind_values: self
                .bindings
                .values
                .iter()
                .map(|(var, value)| (var.to_string(), *value))
                .collect(),
            memory_pages: self.bindings.memory_pages,
            alternatives: self
                .node
                .children
                .iter()
                .enumerate()
                .map(|(index, alt)| AltAudit {
                    index,
                    label: alt.op.to_string(),
                    predicted_seconds: self.arbitrate(alt).predicted_run_seconds,
                })
                .collect(),
            preferred,
            attempts: Vec::new(),
            winner: None,
            fallbacks: 0,
        });
        let mut last_err: Option<ExecError> = None;
        for idx in self.attempt_order(preferred) {
            let alt = &self.node.children[idx];
            let attempt = compile_dynamic_plan(
                alt,
                self.db,
                self.catalog,
                &self.env,
                &self.bindings,
                self.memory_bytes,
                &self.ctx,
            )
            .and_then(|mut op| match op.open() {
                Ok(()) => Ok(op),
                Err(e) => {
                    // Release whatever the failed attempt still holds
                    // (buffered rows, memory reservations).
                    op.close();
                    Err(e)
                }
            });
            match attempt {
                Ok(op) => {
                    // Alternatives share a relation *set*, not an order:
                    // a commuted join delivers the same rows with the
                    // columns permuted. Remap into the declared layout so
                    // parents (and callers) see one stable column order
                    // regardless of which alternative arbitration picked.
                    self.remap = self.layout.projection_from(op.layout());
                    self.chosen_index = Some(idx);
                    self.chosen = Some(op);
                    if let Some(mut audit) = audit.take() {
                        audit.attempts.push(AttemptAudit {
                            index: idx,
                            outcome: "opened".into(),
                        });
                        audit.winner = Some(idx);
                        self.flush_audit(audit);
                    }
                    return Ok(());
                }
                Err(e) if e.is_retryable() => {
                    self.ctx.counters.add_fallbacks(1);
                    if let Some(audit) = audit.as_mut() {
                        audit.attempts.push(AttemptAudit {
                            index: idx,
                            outcome: e.to_string(),
                        });
                        audit.fallbacks += 1;
                    }
                    last_err = Some(e);
                }
                Err(e) => {
                    if let Some(mut audit) = audit.take() {
                        audit.attempts.push(AttemptAudit {
                            index: idx,
                            outcome: e.to_string(),
                        });
                        self.flush_audit(audit);
                    }
                    return Err(e);
                }
            }
        }
        if let Some(audit) = audit.take() {
            self.flush_audit(audit);
        }
        Err(last_err
            .unwrap_or_else(|| ExecError::Internal("choose-plan has no alternatives".into())))
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        let Some(op) = self.chosen.as_mut() else {
            return Err(ExecError::Internal("choose-plan next() before open()".into()));
        };
        let Some(row) = op.next()? else {
            return Ok(None);
        };
        Ok(Some(match &self.remap {
            Some(proj) => proj.iter().map(|&i| row[i]).collect(),
            None => row,
        }))
    }

    /// Batches pass straight through to the chosen alternative, so the
    /// vectorized path keeps the identical fallback-at-`open` semantics —
    /// by the time batches flow, the decision (and any fallbacks) already
    /// happened. A commuted winner's batches are rewritten into the
    /// declared column order, exactly like the tuple path.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<crate::RowBatch>, ExecError> {
        let Some(op) = self.chosen.as_mut() else {
            return Err(ExecError::Internal("choose-plan next_batch() before open()".into()));
        };
        let Some(batch) = op.next_batch(max_rows)? else {
            return Ok(None);
        };
        let Some(proj) = &self.remap else {
            return Ok(Some(batch));
        };
        let live: Vec<usize> = batch.selected_indices().collect();
        let mut out = crate::RowBatch::with_capacity(self.layout.width(), live.len());
        out.extend_rows_with(live.len(), |cols| {
            for (col, &src) in cols.iter_mut().zip(proj) {
                let from = batch.column(src);
                col.extend(live.iter().map(|&i| from[i]));
            }
        });
        Ok(Some(out))
    }

    fn close(&mut self) {
        if let Some(mut op) = self.chosen.take() {
            op.close();
        }
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }

    fn estimated_rows(&self) -> Option<u64> {
        self.chosen.as_ref().and_then(|op| op.estimated_rows())
    }
}

/// Compiles a plan that may contain choose-plan operators: choose-plan
/// nodes — at the root or nested anywhere inside the tree — become
/// [`ChoosePlanExec`] (deciding at `open()`); everything else compiles as
/// usual. Original plan-node identities are preserved end to end, so
/// mid-query re-optimization can substitute retained intermediates and
/// apply checkpoint observations at any depth.
///
/// # Errors
/// Any compilation [`ExecError`]; choose-plan nodes themselves never fail
/// to compile (their alternatives compile lazily at `open`).
pub fn compile_dynamic_plan<'a>(
    node: &Arc<PlanNode>,
    db: &'a StoredDatabase,
    catalog: &'a Catalog,
    env: &Environment,
    bindings: &Bindings,
    memory_bytes: usize,
    ctx: &ExecContext,
) -> Result<BoxedOperator<'a>, ExecError> {
    crate::compile::compile_node(node, db, catalog, Some(env), bindings, memory_bytes, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_plan;
    use crate::exec::drain;
    use crate::metrics::SharedCounters;
    use dqep_algebra::{CompareOp, HostVar, LogicalExpr, PhysicalOp, SelectPred};
    use dqep_catalog::{CatalogBuilder, SystemConfig};
    use dqep_core::Optimizer;

    fn fixture() -> (Catalog, StoredDatabase, LogicalExpr) {
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 600, 512, |r| r.attr("a", 600.0).btree("a", false))
            .build()
            .unwrap();
        let db = StoredDatabase::generate(&cat, 77);
        let rel = cat.relation_by_name("r").unwrap();
        let q = LogicalExpr::get(rel.id).select(SelectPred::unbound(
            rel.attr_id("a").unwrap(),
            CompareOp::Lt,
            HostVar(0),
        ));
        (cat, db, q)
    }

    #[test]
    fn runtime_operator_decides_at_open() {
        let (cat, db, q) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;
        assert!(plan.is_choose_plan());

        for (v, expect_index) in [(5i64, true), (550, false)] {
            let bindings = Bindings::new().with_value(HostVar(0), v);
            let ctx = ExecContext::new(SharedCounters::new());
            let mut op = ChoosePlanExec::new(
                plan.clone(),
                &db,
                &cat,
                env.clone(),
                bindings.clone(),
                64 * 2048,
                ctx,
            );
            assert!(op.chosen_index().is_none(), "no decision before open");
            op.open().unwrap();
            let idx = op.chosen_index().expect("decided at open");
            let is_index_plan = matches!(
                plan.children[idx].op,
                PhysicalOp::FilterBtreeScan { .. }
            );
            assert_eq!(is_index_plan, expect_index, "binding {v}");
            let rows = {
                let mut n = 0;
                while op.next().unwrap().is_some() {
                    n += 1;
                }
                n
            };
            op.close();
            // Ground truth.
            let table = db.table(cat.relation_by_name("r").unwrap().id);
            let expected = table
                .heap
                .scan()
                .map(Result::unwrap)
                .filter(|rec| table.decode(rec)[0] < v)
                .count();
            assert_eq!(rows, expected);
        }
    }

    #[test]
    fn dynamic_compile_matches_resolve_then_compile() {
        let (cat, db, q) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;
        for v in [10i64, 200, 580] {
            let bindings = Bindings::new().with_value(HostVar(0), v);
            // Path 1: run-time operator.
            let ctx = ExecContext::new(SharedCounters::new());
            let mut lazy =
                compile_dynamic_plan(&plan, &db, &cat, &env, &bindings, 64 * 2048, &ctx).unwrap();
            let lazy_rows = drain(lazy.as_mut()).unwrap().len();
            // Path 2: resolve first.
            let startup = evaluate_startup(&plan, &cat, &env, &bindings);
            let ctx = ExecContext::new(SharedCounters::new());
            let mut eager =
                compile_plan(&startup.resolved, &db, &cat, &bindings, 64 * 2048, &ctx).unwrap();
            let eager_rows = drain(eager.as_mut()).unwrap().len();
            assert_eq!(lazy_rows, eager_rows, "binding {v}");
        }
    }

    #[test]
    fn losing_alternatives_are_never_compiled() {
        // Observable through I/O: opening the run-time operator with a
        // selective binding must not scan the file (the file-scan
        // alternative is never compiled or opened).
        let (cat, db, q) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;
        let bindings = Bindings::new().with_value(HostVar(0), 3);
        let before = db.disk.stats();
        let ctx = ExecContext::new(SharedCounters::new());
        let mut op =
            compile_dynamic_plan(&plan, &db, &cat, &env, &bindings, 64 * 2048, &ctx).unwrap();
        let rows = drain(op.as_mut()).unwrap().len();
        let io = db.disk.stats().since(&before);
        // A full file scan would read ~150 pages; the index path touches
        // only the B-tree descent plus a handful of fetches.
        assert!(rows <= 10);
        assert!(
            io.total() < 20,
            "expected index-path I/O only, saw {io:?}"
        );
    }

    #[test]
    fn next_before_open_is_an_internal_error() {
        let (cat, db, q) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;
        let ctx = ExecContext::new(SharedCounters::new());
        let mut op = ChoosePlanExec::new(
            plan,
            &db,
            &cat,
            env,
            Bindings::new().with_value(HostVar(0), 10),
            64 * 2048,
            ctx,
        );
        assert!(matches!(op.next(), Err(ExecError::Internal(_))));
    }

    #[test]
    fn faulted_alternative_falls_back_and_still_answers() {
        use dqep_storage::FaultPlan;
        let (cat, db, q) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;
        assert!(plan.children.len() >= 2);

        // Selective binding: the index path wins and is opened first. Its
        // open() materializes rids via a B-tree descent — fail the very
        // first accounted read so that descent dies and the operator must
        // fall back to the file scan.
        let bindings = Bindings::new().with_value(HostVar(0), 5);
        let ctx = ExecContext::new(SharedCounters::new());
        let mut op = compile_dynamic_plan(
            &plan, &db, &cat, &env, &bindings, 64 * 2048, &ctx,
        )
        .unwrap();
        db.disk.set_fault_plan(FaultPlan::nth_read(1));
        let rows = drain(op.as_mut()).unwrap().len();
        db.disk.set_fault_plan(FaultPlan::none());
        assert!(ctx.counters.fallbacks() >= 1, "fallback must be recorded");
        // Same answer as a clean run.
        let table = db.table(cat.relation_by_name("r").unwrap().id);
        let expected = table
            .heap
            .scan()
            .map(Result::unwrap)
            .filter(|rec| table.decode(rec)[0] < 5)
            .count();
        assert_eq!(rows, expected);
    }
}
