//! Merge join over inputs sorted on the join attributes.

use crate::error::ExecError;
use crate::governor::ExecContext;
use crate::tuple::{Tuple, TupleLayout};
use crate::{BoxedOperator, Operator};

/// Merge join on a single sort key (`predicates[0]`), with any further
/// equi-join predicates applied as residual checks. Inputs must be sorted
/// ascending on their respective key attributes — the optimizer guarantees
/// this via required physical properties (B-tree scans or Sort enforcers).
pub struct MergeJoinExec<'a> {
    left: BoxedOperator<'a>,
    right: BoxedOperator<'a>,
    left_key: usize,
    right_key: usize,
    /// Residual (build position, probe position) equality checks.
    residual: Vec<(usize, usize)>,
    layout: TupleLayout,
    ctx: ExecContext,
    current_left: Option<Tuple>,
    /// The buffered group of right tuples sharing the current key.
    right_group: Vec<Tuple>,
    group_pos: usize,
    /// Lookahead right tuple not yet in a group.
    right_ahead: Option<Tuple>,
    right_done: bool,
}

impl<'a> MergeJoinExec<'a> {
    /// Creates a merge join; `left_key`/`right_key` are positions of the
    /// sort attributes within each input's layout.
    #[must_use]
    pub fn new(
        left: BoxedOperator<'a>,
        right: BoxedOperator<'a>,
        left_key: usize,
        right_key: usize,
        residual: Vec<(usize, usize)>,
        ctx: ExecContext,
    ) -> Self {
        let layout = left.layout().concat(right.layout());
        MergeJoinExec {
            left,
            right,
            left_key,
            right_key,
            residual,
            layout,
            ctx,
            current_left: None,
            right_group: Vec::new(),
            group_pos: 0,
            right_ahead: None,
            right_done: false,
        }
    }

    /// Loads the group of right tuples with key == `key` (assumes the
    /// stream is positioned at or before that key group).
    fn load_right_group(&mut self, key: i64) -> Result<(), ExecError> {
        self.right_group.clear();
        self.group_pos = 0;
        // Skip right tuples below the key.
        loop {
            let candidate = match self.right_ahead.take() {
                Some(t) => Some(t),
                None if self.right_done => None,
                None => self.right.next()?,
            };
            let Some(t) = candidate else {
                self.right_done = true;
                return Ok(());
            };
            self.ctx.counters.add_compares(1);
            if t[self.right_key] < key {
                continue;
            }
            if t[self.right_key] == key {
                self.right_group.push(t);
                // Keep pulling the whole group.
                loop {
                    match self.right.next()? {
                        Some(n) if n[self.right_key] == key => {
                            self.ctx.counters.add_compares(1);
                            self.right_group.push(n);
                        }
                        Some(n) => {
                            self.ctx.counters.add_compares(1);
                            self.right_ahead = Some(n);
                            return Ok(());
                        }
                        None => {
                            self.right_done = true;
                            return Ok(());
                        }
                    }
                }
            }
            // Key overshot: stash and return with an empty group.
            self.right_ahead = Some(t);
            return Ok(());
        }
    }
}

impl Operator for MergeJoinExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.left.open()?;
        self.right.open()?;
        self.current_left = None;
        self.right_group.clear();
        self.group_pos = 0;
        self.right_ahead = None;
        self.right_done = false;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        loop {
            self.ctx.governor.check()?;
            // Emit remaining pairs of the current (left, group) match.
            if let Some(left) = &self.current_left {
                while self.group_pos < self.right_group.len() {
                    let right = &self.right_group[self.group_pos];
                    self.group_pos += 1;
                    if self
                        .residual
                        .iter()
                        .all(|&(l, r)| left[l] == right[r])
                    {
                        let mut joined = left.clone();
                        joined.extend_from_slice(right);
                        self.ctx.counters.add_records(1);
                        return Ok(Some(joined));
                    }
                }
            }
            // Advance the left input.
            let Some(left) = self.left.next()? else {
                return Ok(None);
            };
            let key = left[self.left_key];
            // Reuse the group if the key repeats; otherwise reload.
            let same_key = self
                .right_group
                .first()
                .is_some_and(|t| t[self.right_key] == key);
            if !same_key {
                self.load_right_group(key)?;
            }
            self.group_pos = 0;
            self.current_left = Some(left);
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.right_group.clear();
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }
}
