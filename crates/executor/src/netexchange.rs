//! Network-boundary exchange primitives: a columnar frame codec, a
//! simulated network with per-link pacing and credit-based backpressure,
//! and batched hash routing for repartitioning exchanges.
//!
//! The sharded service (crate `dqep-service`) moves [`RowBatch`]es
//! between shard replicas. Three concerns live here because they are
//! executor-level mechanics, not service policy:
//!
//! * **Frame codec** — [`encode_frame`] / [`decode_frame`] serialize a
//!   columnar batch into one length-stable, self-describing byte frame
//!   (single copy each way: column slices are appended to / read from the
//!   wire buffer directly, with no intermediate row materialization).
//!   Selection vectors travel with the batch, so a filtered batch
//!   round-trips bit-identically without being compacted first.
//! * **Simulated network** — [`SimNet`] hands out bounded point-to-point
//!   [`NetChannel`]s. Like `SimDisk`, the latency/bandwidth/jitter knobs
//!   sleep *outside* any lock so concurrent links overlap, every frame is
//!   byte-accounted, and a deterministic [`LinkFaultPlan`] can fail
//!   chosen transmissions. A failed transmission is retransmitted (and
//!   counted) up to a bound, so injected faults perturb timing and
//!   accounting but never results — the same contract storage faults
//!   have with choose-plan fallback.
//! * **Backpressure** — each channel holds at most `capacity` in-flight
//!   frames (its credits). A sender blocks when the receiver lags; the
//!   block time is returned so callers can feed a queue-wait histogram.
//! * **Routing** — [`shard_route`] computes each live row's destination
//!   shard by folding the key columns through the batched multiply-xor
//!   kernel ([`crate::fold_hash_column`]), bit-identical to the scalar
//!   join hash, so co-partitioning both join sides is guaranteed by
//!   construction.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::batch::{RowBatch, BATCH_CAPACITY};
use crate::error::ExecError;
use crate::hash_join::{fold_hash_column, mix, HASH_SEED};

/// Bytes of the frame header: width, row count, selection length, trace
/// id, parent span.
pub const FRAME_HEADER_BYTES: usize = 24;

/// Sentinel selection length meaning "dense batch, no selection vector".
const NO_SELECTION: u32 = u32::MAX;

/// Sentinel parent-span slot meaning "no span attached".
const NO_SPAN: u32 = u32::MAX;

/// Trace context carried in every frame header: which query timeline the
/// frame belongs to (`0` = untraced) and the sender-side network span it
/// is a child of, when the sender records spans. Receivers use it to link
/// their receive spans back to the remote sender.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameTrace {
    /// Trace id of the sending query; `0` means "no trace".
    pub trace_id: u64,
    /// The sender's network-send span, when one was recorded.
    pub span: Option<u64>,
}

/// The exact wire size of `batch` once encoded.
#[must_use]
pub fn frame_encoded_len(batch: &RowBatch) -> usize {
    FRAME_HEADER_BYTES
        + batch.width() * batch.rows() * 8
        + batch.selection().map_or(0, |s| s.len() * 4)
}

/// Serializes a columnar batch into one self-describing frame:
/// `[width:u32][rows:u32][sel_len:u32][trace_id:u64][parent_span:u32]`
/// followed by `[columns…][selection…]`, all little-endian. Columns are
/// written physical-row-complete (the selection vector, when present, is
/// carried verbatim), so decoding reproduces the batch exactly —
/// including which rows are live. No trace context is stamped; see
/// [`encode_frame_traced`].
///
/// Single copy: each column slice is appended to the wire buffer in one
/// pass; no row-wise gather happens.
#[must_use]
pub fn encode_frame(batch: &RowBatch) -> Vec<u8> {
    encode_frame_traced(batch, FrameTrace::default())
}

/// [`encode_frame`] with trace context stamped into the header, so the
/// receiving side can parent its receive span under the sender's network
/// span. Span ids above `u32::MAX - 1` degrade to "no span" on the wire.
#[must_use]
pub fn encode_frame_traced(batch: &RowBatch, trace: FrameTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame_encoded_len(batch));
    out.extend_from_slice(&(batch.width() as u32).to_le_bytes());
    out.extend_from_slice(&(batch.rows() as u32).to_le_bytes());
    match batch.selection() {
        None => out.extend_from_slice(&NO_SELECTION.to_le_bytes()),
        Some(sel) => out.extend_from_slice(&(sel.len() as u32).to_le_bytes()),
    }
    out.extend_from_slice(&trace.trace_id.to_le_bytes());
    let span = trace
        .span
        .and_then(|s| u32::try_from(s).ok())
        .filter(|&s| s != NO_SPAN)
        .unwrap_or(NO_SPAN);
    out.extend_from_slice(&span.to_le_bytes());
    for c in 0..batch.width() {
        for v in batch.column(c) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    if let Some(sel) = batch.selection() {
        for s in sel {
            out.extend_from_slice(&s.to_le_bytes());
        }
    }
    out
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(b)
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Deserializes a frame produced by [`encode_frame`] back into a
/// [`RowBatch`], discarding the trace context. See
/// [`decode_frame_traced`].
///
/// # Errors
/// [`ExecError::Network`] when the frame is truncated, has trailing
/// bytes, or carries an out-of-range selection index.
pub fn decode_frame(bytes: &[u8]) -> Result<RowBatch, ExecError> {
    decode_frame_traced(bytes).map(|(batch, _)| batch)
}

/// Deserializes a frame back into a [`RowBatch`] plus the [`FrameTrace`]
/// stamped by the sender. Columns are filled straight from the wire
/// buffer (single copy); the selection vector, when present, is
/// validated against the physical row count.
///
/// # Errors
/// [`ExecError::Network`] when the frame is truncated, has trailing
/// bytes, or carries an out-of-range selection index.
pub fn decode_frame_traced(bytes: &[u8]) -> Result<(RowBatch, FrameTrace), ExecError> {
    let malformed = |what: &str| ExecError::Network(format!("malformed frame: {what}"));
    if bytes.len() < FRAME_HEADER_BYTES {
        return Err(malformed("truncated header"));
    }
    let width = read_u32(bytes, 0) as usize;
    let rows = read_u32(bytes, 4) as usize;
    let sel_len = read_u32(bytes, 8);
    let trace = FrameTrace {
        trace_id: read_u64(bytes, 12),
        span: match read_u32(bytes, 20) {
            NO_SPAN => None,
            s => Some(u64::from(s)),
        },
    };
    let col_bytes = width
        .checked_mul(rows)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(|| malformed("column extent overflow"))?;
    let sel_bytes = if sel_len == NO_SELECTION { 0 } else { sel_len as usize * 4 };
    if bytes.len() != FRAME_HEADER_BYTES + col_bytes + sel_bytes {
        return Err(malformed("length mismatch"));
    }
    let mut batch = RowBatch::with_capacity(width, rows);
    let mut at = FRAME_HEADER_BYTES;
    batch.extend_rows_with(rows, |cols| {
        for col in cols.iter_mut() {
            col.extend((0..rows).map(|i| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&bytes[at + i * 8..at + i * 8 + 8]);
                i64::from_le_bytes(b)
            }));
            at += rows * 8;
        }
    });
    if sel_len != NO_SELECTION {
        let mut sel = Vec::with_capacity(sel_len as usize);
        for i in 0..sel_len as usize {
            let s = read_u32(bytes, at + i * 4);
            if s as usize >= rows {
                return Err(malformed("selection index out of range"));
            }
            sel.push(s);
        }
        batch.set_selection(sel);
    }
    Ok((batch, trace))
}

/// Pacing and determinism knobs of a simulated network — the network
/// sibling of `SimDisk`'s latency knob. All sleeps happen outside locks,
/// so concurrent links overlap in real time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetConfig {
    /// Fixed per-frame propagation latency, microseconds.
    pub latency_micros: u64,
    /// Link bandwidth in bytes per second; `0` means unpaced.
    pub bytes_per_second: u64,
    /// Deterministic per-frame jitter bound, microseconds: each
    /// transmission adds `hash(seed, link, ordinal) % (jitter + 1)`.
    pub jitter_micros: u64,
    /// Seed of the jitter hash.
    pub seed: u64,
}

impl NetConfig {
    /// The transmission delay of one `len`-byte frame on `link` for the
    /// `ordinal`-th send (deterministic in all arguments).
    #[must_use]
    pub fn frame_delay(&self, len: usize, link: u64, ordinal: u64) -> Duration {
        let mut micros = self.latency_micros;
        if let Some(tx) = (len as u64).saturating_mul(1_000_000).checked_div(self.bytes_per_second)
        {
            micros += tx;
        }
        if self.jitter_micros > 0 {
            let h = mix(self.seed ^ link.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ordinal);
            micros += h % (self.jitter_micros + 1);
        }
        Duration::from_micros(micros)
    }
}

/// Deterministic link-fault injection: the listed 1-based *fresh-frame*
/// ordinals of every channel fail their first transmission and are
/// retransmitted. Matching by per-channel ordinal keeps runs reproducible
/// however threads interleave — the same contract `FaultPlan` gives the
/// simulated disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFaultPlan {
    /// Per-channel fresh-frame ordinals (1-based) whose first
    /// transmission is dropped.
    pub fail_nth_frames: Vec<u64>,
    /// Retransmissions allowed per frame before the send fails for good.
    pub max_retransmits: u32,
}

impl Default for LinkFaultPlan {
    fn default() -> LinkFaultPlan {
        LinkFaultPlan::none()
    }
}

impl LinkFaultPlan {
    /// No injected faults; up to 4 retransmissions per frame.
    #[must_use]
    pub fn none() -> LinkFaultPlan {
        LinkFaultPlan { fail_nth_frames: Vec::new(), max_retransmits: 4 }
    }

    /// Parses a spec like `nth-frame=3,nth-frame=9,max-retransmit=2`.
    ///
    /// # Errors
    /// A description of the first unparseable clause.
    pub fn parse(spec: &str) -> Result<LinkFaultPlan, String> {
        let mut plan = LinkFaultPlan::none();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause `{clause}` is not KEY=VALUE"))?;
            match key.trim() {
                "nth-frame" => plan
                    .fail_nth_frames
                    .push(value.trim().parse().map_err(|e| format!("nth-frame: {e}"))?),
                "max-retransmit" => {
                    plan.max_retransmits =
                        value.trim().parse().map_err(|e| format!("max-retransmit: {e}"))?;
                }
                other => return Err(format!("unknown link-fault key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// How many transmissions of channel-ordinal `ordinal` are dropped.
    fn drops_for(&self, ordinal: u64) -> u32 {
        u32::try_from(self.fail_nth_frames.iter().filter(|&&n| n == ordinal).count())
            .unwrap_or(u32::MAX)
    }
}

/// Wire-traffic totals of a [`SimNet`], all monotone counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames delivered.
    pub frames: u64,
    /// Bytes put on the wire (retransmissions included).
    pub bytes: u64,
    /// Transmissions dropped by the fault plan and re-sent.
    pub retransmits: u64,
    /// Sends that blocked waiting for a credit.
    pub credit_stalls: u64,
    /// Total nanoseconds senders spent blocked on credits.
    pub credit_wait_ns: u64,
}

impl NetStats {
    /// The traffic accumulated since an `earlier` snapshot of the same
    /// network (field-wise saturating difference).
    #[must_use]
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        NetStats {
            frames: self.frames.saturating_sub(earlier.frames),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            retransmits: self.retransmits.saturating_sub(earlier.retransmits),
            credit_stalls: self.credit_stalls.saturating_sub(earlier.credit_stalls),
            credit_wait_ns: self.credit_wait_ns.saturating_sub(earlier.credit_wait_ns),
        }
    }
}

#[derive(Debug, Default)]
struct NetCounters {
    frames: AtomicU64,
    bytes: AtomicU64,
    retransmits: AtomicU64,
    credit_stalls: AtomicU64,
    credit_wait_ns: AtomicU64,
}

impl NetCounters {
    fn snapshot(&self) -> NetStats {
        NetStats {
            frames: self.frames.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            credit_stalls: self.credit_stalls.load(Ordering::Relaxed),
            credit_wait_ns: self.credit_wait_ns.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug)]
struct NetInner {
    config: NetConfig,
    faults: Mutex<LinkFaultPlan>,
    totals: NetCounters,
}

/// A simulated network: a factory of bounded point-to-point channels
/// sharing one pacing configuration, one fault plan, and one set of
/// byte/frame counters. Cloning is cheap (shared state).
#[derive(Debug, Clone)]
pub struct SimNet {
    inner: Arc<NetInner>,
}

impl SimNet {
    /// A network with the given pacing knobs and no injected faults.
    #[must_use]
    pub fn new(config: NetConfig) -> SimNet {
        SimNet {
            inner: Arc::new(NetInner {
                config,
                faults: Mutex::new(LinkFaultPlan::none()),
                totals: NetCounters::default(),
            }),
        }
    }

    /// Installs (replaces) the link fault plan.
    ///
    /// # Panics
    /// Panics if the fault-plan lock is poisoned.
    pub fn set_link_faults(&self, plan: LinkFaultPlan) {
        *self.inner.faults.lock().unwrap_or_else(PoisonError::into_inner) = plan;
    }

    /// Opens a bounded channel from node `from` to node `to` holding at
    /// most `capacity` in-flight frames (the sender's credits).
    ///
    /// # Panics
    /// Panics when `capacity` is zero (a zero-credit link can never
    /// deliver).
    #[must_use]
    pub fn channel(&self, from: usize, to: usize, capacity: usize) -> NetChannel {
        assert!(capacity > 0, "a channel needs at least one credit");
        NetChannel {
            net: self.clone(),
            link: (from as u64) << 32 | to as u64,
            capacity,
            ordinal: AtomicU64::new(0),
            state: Arc::new(ChanShared {
                state: Mutex::new(ChanState { queue: VecDeque::new(), closed: false }),
                space: Condvar::new(),
                data: Condvar::new(),
                counters: NetCounters::default(),
            }),
        }
    }

    /// A snapshot of the wire-traffic totals.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.inner.totals.snapshot()
    }
}

#[derive(Debug)]
struct ChanState {
    queue: VecDeque<Vec<u8>>,
    closed: bool,
}

#[derive(Debug)]
struct ChanShared {
    state: Mutex<ChanState>,
    space: Condvar,
    data: Condvar,
    // Per-link traffic counters, shared by all clones of the channel so
    // sender and receiver halves observe the same link totals.
    counters: NetCounters,
}

/// One bounded, paced, fault-injectable point-to-point frame channel.
/// The sender half and receiver half may live on different threads;
/// clone the channel to split it.
#[derive(Debug)]
pub struct NetChannel {
    net: SimNet,
    link: u64,
    capacity: usize,
    ordinal: AtomicU64,
    state: Arc<ChanShared>,
}

impl Clone for NetChannel {
    fn clone(&self) -> NetChannel {
        NetChannel {
            net: self.net.clone(),
            link: self.link,
            capacity: self.capacity,
            // The fresh-frame ordinal stays with the original sender
            // handle; receiver clones never send.
            ordinal: AtomicU64::new(0),
            state: Arc::clone(&self.state),
        }
    }
}

impl NetChannel {
    /// Transmits one frame: paces it (latency + bandwidth + jitter),
    /// retransmits around injected drops up to the fault plan's bound,
    /// then enqueues it, blocking while the receiver holds all credits.
    /// Returns how long the send was blocked on backpressure.
    ///
    /// # Errors
    /// [`ExecError::Network`] when the retransmission budget is exhausted
    /// or the receiver closed the channel.
    ///
    /// # Panics
    /// Panics if the channel lock is poisoned.
    pub fn send(&self, frame: Vec<u8>) -> Result<Duration, ExecError> {
        let ordinal = self.ordinal.fetch_add(1, Ordering::Relaxed) + 1;
        let (drops, budget) = {
            let faults = self.net.inner.faults.lock().unwrap_or_else(PoisonError::into_inner);
            (faults.drops_for(ordinal), faults.max_retransmits)
        };
        let config = self.net.inner.config;
        let totals = &self.net.inner.totals;
        let link = &self.state.counters;
        if drops > budget {
            // The dropped transmissions still hit the wire before the
            // sender gives up.
            let spent = u64::from(budget) + 1;
            totals.bytes.fetch_add(frame.len() as u64 * spent, Ordering::Relaxed);
            totals.retransmits.fetch_add(spent - 1, Ordering::Relaxed);
            link.bytes.fetch_add(frame.len() as u64 * spent, Ordering::Relaxed);
            link.retransmits.fetch_add(spent - 1, Ordering::Relaxed);
            crate::journal::journal().record(
                crate::journal::EventKind::LinkFault,
                0,
                u64::from(self.from_node()),
                u64::from(self.to_node()),
                u64::from(drops),
                crate::journal::NO_ID,
            );
            return Err(ExecError::Network(format!(
                "frame {ordinal} dropped {drops} time(s); retransmission budget {budget} exhausted"
            )));
        }
        for _ in 0..=drops {
            let delay = config.frame_delay(frame.len(), self.link, ordinal);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        totals.bytes.fetch_add(frame.len() as u64 * (u64::from(drops) + 1), Ordering::Relaxed);
        totals.retransmits.fetch_add(u64::from(drops), Ordering::Relaxed);
        link.bytes.fetch_add(frame.len() as u64 * (u64::from(drops) + 1), Ordering::Relaxed);
        link.retransmits.fetch_add(u64::from(drops), Ordering::Relaxed);
        if drops > 0 {
            crate::journal::journal().record(
                crate::journal::EventKind::LinkFault,
                0,
                u64::from(self.from_node()),
                u64::from(self.to_node()),
                u64::from(drops),
                ordinal,
            );
        }

        let mut state = self.state.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut waited = Duration::ZERO;
        if state.queue.len() >= self.capacity && !state.closed {
            let start = Instant::now();
            while state.queue.len() >= self.capacity && !state.closed {
                state = self.state.space.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
            waited = start.elapsed();
            let waited_ns = u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX);
            totals.credit_stalls.fetch_add(1, Ordering::Relaxed);
            totals.credit_wait_ns.fetch_add(waited_ns, Ordering::Relaxed);
            link.credit_stalls.fetch_add(1, Ordering::Relaxed);
            link.credit_wait_ns.fetch_add(waited_ns, Ordering::Relaxed);
        }
        if state.closed {
            return Err(ExecError::Network("receiver closed the channel".into()));
        }
        state.queue.push_back(frame);
        totals.frames.fetch_add(1, Ordering::Relaxed);
        link.frames.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.state.data.notify_one();
        Ok(waited)
    }

    /// A snapshot of this link's own traffic counters (shared by all
    /// clones of the channel).
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.state.counters.snapshot()
    }

    /// The sending node of this link.
    #[must_use]
    pub fn from_node(&self) -> u32 {
        (self.link >> 32) as u32
    }

    /// The receiving node of this link.
    #[must_use]
    pub fn to_node(&self) -> u32 {
        (self.link & 0xffff_ffff) as u32
    }

    /// Receives the next frame, blocking until one arrives; `None` once
    /// the channel is closed and drained.
    ///
    /// # Panics
    /// Panics if the channel lock is poisoned.
    #[must_use]
    pub fn recv(&self) -> Option<Vec<u8>> {
        let mut state = self.state.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(frame) = state.queue.pop_front() {
                drop(state);
                self.state.space.notify_one();
                return Some(frame);
            }
            if state.closed {
                return None;
            }
            state = self.state.data.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the channel: senders error, receivers drain then see `None`.
    ///
    /// # Panics
    /// Panics if the channel lock is poisoned.
    pub fn close(&self) {
        self.state.state.lock().unwrap_or_else(PoisonError::into_inner).closed = true;
        self.state.space.notify_all();
        self.state.data.notify_all();
    }
}

/// Credits (in-flight frames) for a channel whose sender expects
/// `estimated_rows` rows: enough frames to cover the estimate, clamped
/// to a small bounded window so a slow receiver throttles its senders.
/// `None` (unknown cardinality) gets the default window.
#[must_use]
pub fn credit_frames(estimated_rows: Option<u64>) -> usize {
    const MIN_CREDITS: usize = 2;
    const MAX_CREDITS: usize = 32;
    match estimated_rows {
        None => 8,
        Some(rows) => {
            (usize::try_from(rows.div_ceil(BATCH_CAPACITY as u64)).unwrap_or(MAX_CREDITS))
                .clamp(MIN_CREDITS, MAX_CREDITS)
        }
    }
}

/// A batch pre-sized for an expected row count: full [`BATCH_CAPACITY`]
/// when the estimate is unknown or large, tighter when the producer knows
/// it will emit less — the same pre-sizing [`crate::drain`] applies to
/// result buffers.
#[must_use]
pub fn presized_batch(width: usize, estimated_rows: Option<u64>) -> RowBatch {
    let cap = estimated_rows
        .map_or(BATCH_CAPACITY, |r| usize::try_from(r).unwrap_or(BATCH_CAPACITY))
        .clamp(1, BATCH_CAPACITY);
    RowBatch::with_capacity(width, cap)
}

/// Computes each **live** row's destination shard: the key columns are
/// folded through the batched multiply-xor kernel (seeded like the join
/// hash, so both join sides route identically), then reduced modulo
/// `shards`. `hashes` and `dests` are scratch, cleared and refilled; on
/// return `dests[i]` is the shard of the `i`-th live row.
///
/// # Panics
/// Panics when `shards` is zero or a key column is out of range.
pub fn shard_route(
    batch: &RowBatch,
    key_cols: &[usize],
    shards: usize,
    hashes: &mut Vec<u64>,
    dests: &mut Vec<u32>,
) {
    assert!(shards > 0, "routing needs at least one shard");
    hashes.clear();
    match batch.selection() {
        None => {
            hashes.resize(batch.rows(), HASH_SEED);
            for &k in key_cols {
                fold_hash_column(hashes, batch.column(k));
            }
        }
        Some(sel) => {
            hashes.resize(sel.len(), HASH_SEED);
            let mut gathered: Vec<i64> = Vec::with_capacity(sel.len());
            for &k in key_cols {
                let col = batch.column(k);
                gathered.clear();
                gathered.extend(sel.iter().map(|&i| col[i as usize]));
                fold_hash_column(hashes, &gathered);
            }
        }
    }
    dests.clear();
    dests.extend(hashes.iter().map(|&h| (h % shards as u64) as u32));
}

/// Scatters the live rows of `batch` into one dense per-shard batch each,
/// routed by [`shard_route`] over `key_cols`. Output batches are appended
/// to, so callers can accumulate several input batches before flushing.
///
/// # Panics
/// Panics when `outs.len()` differs from the shard count implied by the
/// routing, or on width mismatch.
pub fn scatter_by_shard(
    batch: &RowBatch,
    key_cols: &[usize],
    outs: &mut [RowBatch],
    hashes: &mut Vec<u64>,
    dests: &mut Vec<u32>,
) {
    shard_route(batch, key_cols, outs.len(), hashes, dests);
    let mut row: Vec<i64> = Vec::with_capacity(batch.width());
    for (slot, phys) in batch.selected_indices().enumerate() {
        row.clear();
        batch.gather_row_into(phys, &mut row);
        outs[dests[slot] as usize].push_row(&row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_join::hash_key;

    fn sample_batch(selection: bool) -> RowBatch {
        let mut b = RowBatch::with_capacity(3, 8);
        for i in 0..8i64 {
            b.push_row(&[i, i * 10 - 3, i64::from(i as i32).wrapping_mul(1 << 40)]);
        }
        if selection {
            b.set_selection(vec![0, 2, 3, 7]);
        }
        b
    }

    #[test]
    fn frame_roundtrip_is_byte_identical() {
        for selection in [false, true] {
            let batch = sample_batch(selection);
            let frame = encode_frame(&batch);
            assert_eq!(frame.len(), frame_encoded_len(&batch));
            let decoded = decode_frame(&frame).expect("valid frame");
            assert_eq!(decoded.width(), batch.width());
            assert_eq!(decoded.rows(), batch.rows());
            assert_eq!(decoded.selection(), batch.selection());
            for c in 0..batch.width() {
                assert_eq!(decoded.column(c), batch.column(c), "column {c}");
            }
            // Re-encoding the decoded batch reproduces the frame bytes.
            assert_eq!(encode_frame(&decoded), frame, "selection={selection}");
        }
    }

    #[test]
    fn trace_context_roundtrips() {
        let batch = sample_batch(true);
        for (trace_id, span) in [(0u64, None), (7, Some(3u64)), (u64::MAX, Some(0))] {
            let frame = encode_frame_traced(&batch, FrameTrace { trace_id, span });
            assert_eq!(frame.len(), frame_encoded_len(&batch));
            let (decoded, trace) = decode_frame_traced(&frame).expect("valid frame");
            assert_eq!(trace, FrameTrace { trace_id, span });
            assert_eq!(decoded.selection(), batch.selection());
        }
        // Untraced encoding carries the zero context.
        let (_, trace) = decode_frame_traced(&encode_frame(&batch)).expect("valid frame");
        assert_eq!(trace, FrameTrace::default());
        // Oversized span ids degrade to "no span" rather than aliasing.
        let frame =
            encode_frame_traced(&batch, FrameTrace { trace_id: 1, span: Some(u64::MAX) });
        let (_, trace) = decode_frame_traced(&frame).expect("valid frame");
        assert_eq!(trace.span, None);
    }

    #[test]
    fn per_link_stats_track_one_channel() {
        let net = SimNet::new(NetConfig::default());
        let a = net.channel(3, 1, 8);
        let b = net.channel(2, 1, 8);
        a.send(vec![1, 2]).expect("send");
        a.send(vec![3]).expect("send");
        b.send(vec![4]).expect("send");
        assert_eq!(a.from_node(), 3);
        assert_eq!(a.to_node(), 1);
        assert_eq!(a.stats().frames, 2);
        assert_eq!(a.stats().bytes, 3);
        assert_eq!(b.stats().frames, 1);
        assert_eq!(net.stats().frames, 3, "global totals still aggregate");
        // Receiver clones observe the same link counters.
        assert_eq!(a.clone().stats().frames, 2);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let batch = RowBatch::new(4);
        let decoded = decode_frame(&encode_frame(&batch)).expect("valid frame");
        assert_eq!(decoded.width(), 4);
        assert_eq!(decoded.rows(), 0);
        assert!(decoded.selection().is_none());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(decode_frame(&[1, 2, 3]).is_err(), "truncated header");
        let mut frame = encode_frame(&sample_batch(false));
        frame.push(0);
        assert!(decode_frame(&frame).is_err(), "trailing byte");
        // Out-of-range selection index.
        let mut b = sample_batch(false);
        b.set_selection(vec![7]);
        let mut frame = encode_frame(&b);
        let at = frame.len() - 4;
        frame[at..].copy_from_slice(&99u32.to_le_bytes());
        assert!(decode_frame(&frame).is_err(), "selection out of range");
    }

    #[test]
    fn channel_delivers_in_order_with_backpressure() {
        let net = SimNet::new(NetConfig::default());
        let tx = net.channel(0, 1, 2);
        let rx = tx.clone();
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..20u8 {
                    tx.send(vec![i]).expect("send");
                }
                tx.close();
            });
            let got: Vec<u8> = std::iter::from_fn(|| rx.recv()).map(|f| f[0]).collect();
            assert_eq!(got, (0..20).collect::<Vec<u8>>());
        });
        let stats = net.stats();
        assert_eq!(stats.frames, 20);
        assert_eq!(stats.bytes, 20);
        // With 2 credits and 20 frames the sender must have stalled.
        assert!(stats.credit_stalls > 0, "{stats:?}");
    }

    #[test]
    fn link_faults_retransmit_then_exhaust() {
        let net = SimNet::new(NetConfig::default());
        net.set_link_faults(LinkFaultPlan {
            fail_nth_frames: vec![2],
            max_retransmits: 4,
        });
        let tx = net.channel(0, 1, 8);
        tx.send(vec![1]).expect("clean frame");
        tx.send(vec![2]).expect("retransmitted frame");
        assert_eq!(net.stats().retransmits, 1);
        assert_eq!(net.stats().frames, 2);
        assert_eq!(net.stats().bytes, 3, "dropped transmission is on the wire");

        // Same drop with a zero budget is terminal.
        let net = SimNet::new(NetConfig::default());
        net.set_link_faults(LinkFaultPlan {
            fail_nth_frames: vec![1],
            max_retransmits: 0,
        });
        let tx = net.channel(0, 1, 8);
        let err = tx.send(vec![9]).expect_err("budget exhausted");
        assert!(matches!(err, ExecError::Network(_)), "{err:?}");
        assert!(err.is_retryable(), "network faults are plan-local");
    }

    #[test]
    fn fault_plan_parses() {
        let plan = LinkFaultPlan::parse("nth-frame=3, nth-frame=9,max-retransmit=2").unwrap();
        assert_eq!(plan.fail_nth_frames, vec![3, 9]);
        assert_eq!(plan.max_retransmits, 2);
        assert!(LinkFaultPlan::parse("wat=1").is_err());
        assert!(LinkFaultPlan::parse("nth-frame").is_err());
    }

    #[test]
    fn pacing_is_deterministic() {
        let config = NetConfig {
            latency_micros: 100,
            bytes_per_second: 1_000_000,
            jitter_micros: 50,
            seed: 7,
        };
        let a = config.frame_delay(1000, 3, 5);
        assert_eq!(a, config.frame_delay(1000, 3, 5), "same inputs, same delay");
        // latency 100µs + 1000B at 1MB/s = 1000µs + jitter ∈ [0, 50].
        let micros = a.as_micros();
        assert!((1100..=1150).contains(&micros), "{micros}");
    }

    #[test]
    fn routing_matches_scalar_hash_and_co_partitions() {
        let batch = sample_batch(false);
        let (mut hashes, mut dests) = (Vec::new(), Vec::new());
        shard_route(&batch, &[1], 4, &mut hashes, &mut dests);
        assert_eq!(dests.len(), batch.rows());
        for i in 0..batch.rows() {
            // Bit-identical to the scalar join hash of the same key.
            let expect = hash_key(&[(1, 1)], &batch.row_vec(i), true);
            assert_eq!(hashes[i], expect, "row {i}");
            assert_eq!(dests[i], (expect % 4) as u32);
        }
    }

    #[test]
    fn scatter_respects_selection() {
        let batch = sample_batch(true);
        let mut outs: Vec<RowBatch> = (0..3).map(|_| RowBatch::new(3)).collect();
        let (mut h, mut d) = (Vec::new(), Vec::new());
        scatter_by_shard(&batch, &[0], &mut outs, &mut h, &mut d);
        let total: usize = outs.iter().map(RowBatch::rows).sum();
        assert_eq!(total, 4, "only live rows are scattered");
        // Every scattered row appears in the source batch's live set.
        let live: Vec<Vec<i64>> = batch.iter().map(|r| r.to_vec()).collect();
        for out in &outs {
            for row in out.iter() {
                assert!(live.contains(&row.to_vec()));
            }
        }
    }

    #[test]
    fn credit_frames_clamp() {
        assert_eq!(credit_frames(None), 8);
        assert_eq!(credit_frames(Some(0)), 2);
        assert_eq!(credit_frames(Some(10_000)), 10);
        assert_eq!(credit_frames(Some(10_000_000)), 32);
    }

    #[test]
    fn presized_batch_clamps() {
        assert_eq!(presized_batch(2, None).width(), 2);
        let small = presized_batch(2, Some(10));
        assert_eq!(small.rows(), 0);
        let huge = presized_batch(2, Some(1 << 40));
        assert_eq!(huge.rows(), 0);
    }
}
