//! The exchange operator: intra-query parallelism behind the ordinary
//! Volcano interface (Graefe's Volcano exchange, adapted to this engine's
//! stop-and-go style).
//!
//! [`ExchangeExec`] owns N worker subtrees. At `open()` it runs every
//! worker to completion on its own thread — each worker opens, drains
//! (tuple- or batch-wise, matching the query's [`ExecMode`]), and closes
//! its subtree — then merges the workers' private [`SharedCounters`] into
//! the query's counters and concatenates their outputs in worker-index
//! order. `next`/`next_batch` stream the merged buffer. Because the whole
//! operator still *is* an [`Operator`], everything above it — choose-plan
//! fallback, the resource governor, fault injection, batch mode — composes
//! unchanged.
//!
//! **Error phases.** A serial file scan performs all of its I/O during
//! `next()`, after `open()` has returned; only stop-and-go work (hash-join
//! build, sort ingest) happens inside `open()`. The exchange runs its
//! workers eagerly inside `open()`, which would move every failure into
//! the open phase — and `open`-phase failures are exactly what
//! [`crate::ChoosePlanExec`] catches for fallback. To keep fallback
//! semantics identical to serial execution, a worker failure is *deferred*:
//! `open()` still returns `Ok`, and the error surfaces from the first
//! `next()`/`next_batch()` call — the phase where the serial scan would
//! have raised it. Counters are merged either way, so partial work is
//! always accounted.
//!
//! **Memory.** Worker subtrees reserve operator working memory from the
//! *shared* governor, so the sum of all workers' reservations stays under
//! the one query grant — parallelism cannot oversubscribe it. The merge
//! buffer itself is transport, not operator working memory, and is exempt
//! from reservation for the same reason the root drain's result vector is.

use std::panic;
use std::sync::Arc;
use std::thread;

use dqep_storage::{PageClaims, StoredTable, DEFAULT_MORSEL_PAGES};

use crate::batch::RowBatch;
use crate::error::ExecError;
use crate::exec::{drain, drain_batch};
use crate::governor::{ExecContext, ExecMode};
use crate::metrics::SharedCounters;
use crate::scan::MorselScanExec;
use crate::tuple::{Tuple, TupleLayout};
use crate::{BoxedOperator, Operator};

/// Runs every task on its own scoped thread and collects their results in
/// task order. Panics are propagated (a worker panic is a bug, not an
/// [`ExecError`]).
pub(crate) fn run_parallel<T, F>(tasks: Vec<F>) -> Vec<Result<T, ExecError>>
where
    T: Send,
    F: FnOnce() -> Result<T, ExecError> + Send,
{
    thread::scope(|s| {
        let handles: Vec<_> = tasks.into_iter().map(|t| s.spawn(t)).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(p) => panic::resume_unwind(p),
            })
            .collect()
    })
}

struct ExchangeWorker<'a> {
    op: BoxedOperator<'a>,
    /// The worker subtree's private counters (see [`ExecContext::worker`]),
    /// merged into the query counters when the parallel phase finishes.
    counters: SharedCounters,
}

/// Partitions execution across worker subtrees and merges their results
/// back through the ordinary [`Operator`] interface.
pub struct ExchangeExec<'a> {
    workers: Vec<ExchangeWorker<'a>>,
    layout: TupleLayout,
    ctx: ExecContext,
    output: std::vec::IntoIter<Tuple>,
    /// A worker failure, surfaced on the first `next`/`next_batch` call
    /// (the serial scan's error phase) instead of from `open`.
    pending_err: Option<ExecError>,
    opened: bool,
    /// Mid-query re-optimization probe, fired once per `open` with the
    /// merged output cardinality when every worker has joined.
    checkpoint: Option<crate::reopt::ReoptProbe>,
}

impl<'a> ExchangeExec<'a> {
    /// Creates an exchange over `workers`, each paired with the private
    /// counters its subtree was compiled with (see [`ExecContext::worker`]).
    ///
    /// # Panics
    /// Panics if `workers` is empty — an exchange with nothing to run is a
    /// compiler bug, not a run-time condition.
    #[must_use]
    pub fn new(workers: Vec<(BoxedOperator<'a>, SharedCounters)>, ctx: ExecContext) -> Self {
        assert!(!workers.is_empty(), "exchange needs at least one worker");
        let layout = workers[0].0.layout().clone();
        ExchangeExec {
            workers: workers
                .into_iter()
                .map(|(op, counters)| ExchangeWorker { op, counters })
                .collect(),
            layout,
            ctx,
            output: Vec::new().into_iter(),
            pending_err: None,
            opened: false,
            checkpoint: None,
        }
    }

    /// Attaches a re-optimization checkpoint probe to the worker join.
    pub(crate) fn with_checkpoint(mut self, probe: crate::reopt::ReoptProbe) -> Self {
        self.checkpoint = Some(probe);
        self
    }
}

impl Operator for ExchangeExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pending_err = None;
        self.opened = true;
        let mode = self.ctx.mode;
        // Pre-size the merge buffer from the workers' own estimates
        // (known before they run), clamped like the root drain's
        // pre-sizing — the buffer otherwise regrows from default
        // capacity on every hot path.
        let estimated: u64 = self
            .workers
            .iter()
            .filter_map(|w| w.op.estimated_rows())
            .sum();
        let tasks: Vec<_> = self
            .workers
            .iter_mut()
            .map(|w| {
                let op = w.op.as_mut();
                move || match mode {
                    ExecMode::Tuple => drain(op),
                    ExecMode::Batch => drain_batch(op),
                }
            })
            .collect();
        let results = run_parallel(tasks);
        // Partial work is real work: merge counters before error handling.
        for w in &self.workers {
            self.ctx.counters.merge_from(&w.counters);
        }
        let mut merged: Vec<Tuple> =
            Vec::with_capacity(estimated.min(crate::exec::MAX_PRESIZE_ROWS) as usize);
        let mut first_err: Option<ExecError> = None;
        for r in results {
            match r {
                Ok(rows) if first_err.is_none() => merged.extend(rows),
                Ok(_) => {}
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            self.pending_err = Some(e);
            self.output = Vec::new().into_iter();
        } else {
            // Worker join is a pipeline breaker: every worker finished,
            // so the merged cardinality is exact.
            if let Some(probe) = &self.checkpoint {
                probe.observe(merged.len() as u64);
            }
            self.output = merged.into_iter();
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if let Some(e) = self.pending_err.take() {
            return Err(e);
        }
        self.ctx.governor.check()?;
        // Workers already charged record counters when producing these
        // rows; the exchange is pure transport.
        Ok(self.output.next())
    }

    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>, ExecError> {
        if let Some(e) = self.pending_err.take() {
            return Err(e);
        }
        let mut batch = RowBatch::with_capacity(self.layout.width(), max_rows);
        while batch.rows() < max_rows {
            let Some(t) = self.output.next() else { break };
            batch.push_row(&t);
        }
        let rows = batch.rows();
        if rows == 0 {
            return Ok(None);
        }
        self.ctx.governor.check_batch(rows as u64)?;
        Ok(Some(batch))
    }

    fn close(&mut self) {
        // Workers close themselves at the end of their drain; only the
        // merge buffer remains to release.
        self.output = Vec::new().into_iter();
        self.pending_err = None;
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }

    fn estimated_rows(&self) -> Option<u64> {
        // Exact after `open` (the merged buffer's remaining length);
        // unknown before.
        self.opened.then(|| self.output.len() as u64)
    }
}

/// Builds the partition-parallel file scan: `ctx.dop` morsel-scan workers
/// share one atomic [`PageClaims`] dispenser over the table's pages, so
/// each page is read by exactly one worker and work stays balanced however
/// the threads interleave. Page reads and record decodes are charged by
/// the workers exactly as the serial scan charges them — totals are
/// independent of the interleaving.
#[must_use]
pub fn parallel_scan<'a>(
    table: &'a StoredTable,
    layout: TupleLayout,
    ctx: &ExecContext,
) -> ExchangeExec<'a> {
    let claims = Arc::new(PageClaims::new(
        table.heap.page_count(),
        DEFAULT_MORSEL_PAGES,
    ));
    // Tracing: all workers share ONE span. Each wrapper accumulates its
    // worker's private totals and flushes on close (from the worker
    // thread), so the span's stats merge concurrently via
    // `SpanStats::merge_from` — the same shape as the counter merge below
    // it. Worker wrappers pass no disk: their windows over the shared
    // disk overlap, so per-worker I/O deltas would double-count; the
    // enclosing scan node's span (whose `open` window contains the whole
    // parallel phase) accounts the I/O exactly instead.
    let worker_span = ctx.tracer.as_ref().filter(|t| t.records_spans()).map(|tracer| {
        tracer.span(
            format!("Morsel-Scan x{}", ctx.dop.max(1)),
            "Morsel-Scan",
            None,
            None,
            ctx.span_parent,
            ctx.dop.max(1),
        )
    });
    let workers = (0..ctx.dop.max(1))
        .map(|_| {
            let wctx = ctx.worker();
            let counters = wctx.counters.clone();
            let mut op: BoxedOperator<'a> = Box::new(MorselScanExec::new(
                table,
                layout.clone(),
                wctx,
                Arc::clone(&claims),
            ));
            if let (Some(span), Some(tracer)) = (worker_span, ctx.tracer.as_ref()) {
                op = Box::new(crate::trace::TracedExec::new(
                    op,
                    Arc::clone(tracer),
                    span,
                    counters.clone(),
                    None,
                    ctx.governor.clone(),
                ));
            }
            (op, counters)
        })
        .collect();
    ExchangeExec::new(workers, ctx.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::{CatalogBuilder, SystemConfig};
    use dqep_storage::StoredDatabase;

    fn fixture() -> (dqep_catalog::Catalog, StoredDatabase) {
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 500, 512, |r| r.attr("a", 500.0).attr("b", 25.0))
            .build()
            .unwrap();
        let db = StoredDatabase::generate(&cat, 11);
        (cat, db)
    }

    fn sorted_rows(mut rows: Vec<Tuple>) -> Vec<Tuple> {
        rows.sort();
        rows
    }

    #[test]
    fn parallel_scan_matches_serial_multiset_and_counters() {
        let (cat, db) = fixture();
        let rel = cat.relation_by_name("r").unwrap().id;
        let table = db.table(rel);
        for mode in [ExecMode::Tuple, ExecMode::Batch] {
            let serial_ctx = ExecContext::new(SharedCounters::new()).with_mode(mode);
            let mut serial = crate::scan::FileScanExec::new(
                table,
                TupleLayout::base(&cat, rel),
                serial_ctx.clone(),
            );
            let serial_rows = match mode {
                ExecMode::Tuple => drain(&mut serial).unwrap(),
                ExecMode::Batch => drain_batch(&mut serial).unwrap(),
            };
            let serial_io = db.disk.stats();
            db.disk.reset_stats();

            for dop in [2usize, 4] {
                let ctx = ExecContext::new(SharedCounters::new())
                    .with_mode(mode)
                    .with_dop(dop);
                let mut ex = parallel_scan(table, TupleLayout::base(&cat, rel), &ctx);
                let rows = match mode {
                    ExecMode::Tuple => drain(&mut ex).unwrap(),
                    ExecMode::Batch => drain_batch(&mut ex).unwrap(),
                };
                assert_eq!(
                    sorted_rows(rows),
                    sorted_rows(serial_rows.clone()),
                    "dop {dop} mode {mode:?}"
                );
                assert_eq!(
                    ctx.counters.snapshot().records,
                    serial_ctx.counters.snapshot().records,
                    "record counters merge exactly (dop {dop})"
                );
                let io = db.disk.stats();
                db.disk.reset_stats();
                assert_eq!(io.total(), serial_io.total(), "same pages read once each");
            }
        }
    }

    #[test]
    fn worker_fault_is_deferred_to_next_like_a_serial_scan() {
        use dqep_storage::FaultPlan;
        let (cat, db) = fixture();
        let rel = cat.relation_by_name("r").unwrap().id;
        let table = db.table(rel);
        let pages = table.heap.pages();
        // Fault every page: every worker fails on its first read.
        db.disk.set_fault_plan(FaultPlan::page_range(pages[0].0, pages[pages.len() - 1].0));
        let ctx = ExecContext::new(SharedCounters::new()).with_dop(2);
        let mut ex = parallel_scan(table, TupleLayout::base(&cat, rel), &ctx);
        assert!(ex.open().is_ok(), "worker faults defer past open");
        let err = ex.next().unwrap_err();
        assert!(matches!(err, ExecError::Storage(_)), "{err:?}");
        ex.close();
        db.disk.set_fault_plan(FaultPlan::none());
    }
}
