//! The Filter operator and resolved predicates.

use dqep_algebra::CompareOp;

use crate::batch::RowBatch;
use crate::error::ExecError;
use crate::governor::ExecContext;
use crate::tuple::{Tuple, TupleLayout};
use crate::{BoxedOperator, Operator};

/// A selection predicate with its attribute resolved to a tuple position
/// and its right-hand side resolved to a concrete value (host variables
/// are bound before compilation).
#[derive(Debug, Clone, Copy)]
pub struct ResolvedPred {
    /// Position of the restricted attribute within the input layout.
    pub pos: usize,
    /// Comparison operator.
    pub op: CompareOp,
    /// Bound comparison value.
    pub value: i64,
}

impl ResolvedPred {
    /// Evaluates the predicate on a tuple.
    #[must_use]
    pub fn matches(&self, tuple: &[i64]) -> bool {
        self.op.eval_int(tuple[self.pos], self.value)
    }

    /// The inclusive key range this predicate selects — what a B-tree
    /// range probe descends with.
    #[must_use]
    pub fn key_range(&self) -> (Option<i64>, Option<i64>) {
        match self.op {
            CompareOp::Lt => (None, Some(self.value - 1)),
            CompareOp::Le => (None, Some(self.value)),
            CompareOp::Eq => (Some(self.value), Some(self.value)),
            CompareOp::Ge => (Some(self.value), None),
            CompareOp::Gt => (Some(self.value + 1), None),
        }
    }
}

/// Writes the indices of the column values satisfying `op value` into
/// `sel` — one tight pass over the whole column (no selection vector on
/// the input batch). Dispatching on the operator *outside* the loop keeps
/// each loop body a single branch-free comparison the compiler can
/// auto-vectorize.
fn select_dense(op: CompareOp, col: &[i64], value: i64, sel: &mut Vec<u32>) {
    #[inline]
    fn scan(col: &[i64], sel: &mut Vec<u32>, keep: impl Fn(i64) -> bool) {
        for (i, &v) in col.iter().enumerate() {
            if keep(v) {
                sel.push(i as u32);
            }
        }
    }
    match op {
        CompareOp::Lt => scan(col, sel, |v| v < value),
        CompareOp::Le => scan(col, sel, |v| v <= value),
        CompareOp::Eq => scan(col, sel, |v| v == value),
        CompareOp::Ge => scan(col, sel, |v| v >= value),
        CompareOp::Gt => scan(col, sel, |v| v > value),
    }
}

/// The sparse counterpart of [`select_dense`]: evaluates only the rows in
/// `prev` (the input batch's selection vector), preserving order.
fn select_sparse(op: CompareOp, col: &[i64], value: i64, prev: &[u32], sel: &mut Vec<u32>) {
    #[inline]
    fn scan(col: &[i64], prev: &[u32], sel: &mut Vec<u32>, keep: impl Fn(i64) -> bool) {
        for &idx in prev {
            if keep(col[idx as usize]) {
                sel.push(idx);
            }
        }
    }
    match op {
        CompareOp::Lt => scan(col, prev, sel, |v| v < value),
        CompareOp::Le => scan(col, prev, sel, |v| v <= value),
        CompareOp::Eq => scan(col, prev, sel, |v| v == value),
        CompareOp::Ge => scan(col, prev, sel, |v| v >= value),
        CompareOp::Gt => scan(col, prev, sel, |v| v > value),
    }
}

/// Predicate evaluation over any input (one comparison per input tuple).
pub struct FilterExec<'a> {
    input: BoxedOperator<'a>,
    pred: ResolvedPred,
    ctx: ExecContext,
}

impl<'a> FilterExec<'a> {
    /// Creates a filter over `input`.
    #[must_use]
    pub fn new(input: BoxedOperator<'a>, pred: ResolvedPred, ctx: ExecContext) -> Self {
        FilterExec { input, pred, ctx }
    }
}

impl Operator for FilterExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        loop {
            let Some(t) = self.input.next()? else {
                return Ok(None);
            };
            self.ctx.counters.add_compares(1);
            if self.pred.matches(&t) {
                self.ctx.counters.add_records(1);
                return Ok(Some(t));
            }
        }
    }

    /// Native batch filter: evaluates the predicate over the restricted
    /// attribute's column into the batch's selection vector — one
    /// monomorphic comparison loop over a contiguous `&[i64]` slice (the
    /// X100-style kernel), qualifying rows are never copied, and the
    /// comparison/record counters are charged once per batch. Batches
    /// whose rows all fail are skipped internally so callers always make
    /// progress per call.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>, ExecError> {
        loop {
            let Some(mut batch) = self.input.next_batch(max_rows)? else {
                return Ok(None);
            };
            let examined = batch.len() as u64;
            let col = batch.column(self.pred.pos);
            let mut sel: Vec<u32> = Vec::with_capacity(batch.len());
            match batch.selection() {
                None => select_dense(self.pred.op, col, self.pred.value, &mut sel),
                Some(prev) => select_sparse(self.pred.op, col, self.pred.value, prev, &mut sel),
            }
            self.ctx.counters.add_compares(examined);
            if sel.is_empty() {
                continue;
            }
            self.ctx.counters.add_records(sel.len() as u64);
            batch.set_selection(sel);
            return Ok(Some(batch));
        }
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn layout(&self) -> &TupleLayout {
        self.input.layout()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ranges() {
        let p = |op| ResolvedPred { pos: 0, op, value: 10 };
        assert_eq!(p(CompareOp::Lt).key_range(), (None, Some(9)));
        assert_eq!(p(CompareOp::Le).key_range(), (None, Some(10)));
        assert_eq!(p(CompareOp::Eq).key_range(), (Some(10), Some(10)));
        assert_eq!(p(CompareOp::Ge).key_range(), (Some(10), None));
        assert_eq!(p(CompareOp::Gt).key_range(), (Some(11), None));
    }

    #[test]
    fn matches() {
        let p = ResolvedPred { pos: 1, op: CompareOp::Lt, value: 5 };
        assert!(p.matches(&[100, 4]));
        assert!(!p.matches(&[100, 5]));
    }
}
