//! Always-on structured event journal (flight recorder).
//!
//! A process-global, bounded, lock-free ring of typed events: arbitration
//! winners, interval escapes, re-plans, degradation-ladder steps,
//! live-view drift re-fires, shard winner divergence, link faults, and
//! admission refusals. Writers pay a `fetch_add` plus a handful of
//! relaxed stores — no locks, no allocation — so the journal can stay on
//! in production paths. When the ring wraps, the oldest events are
//! overwritten: the journal answers "what just happened", not "what ever
//! happened" (the metrics registry keeps the totals).
//!
//! Each slot is guarded by a seqlock-style version counter: the writer
//! bumps it to odd, stores the payload, bumps it to even. A reader that
//! observes an odd version, or a version that changed across its reads,
//! discards the slot as torn. Payloads are plain `u64`s, so a torn read
//! can produce garbage but never undefined behavior, and the version
//! check discards it anyway.
//!
//! Timestamps come from [`monotonic_ns`], the same process-wide monotonic
//! epoch the tracer stamps span start times with — so journal events and
//! trace spans order consistently against each other.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Capacity of the global ring, in events. Power of two so the slot
/// index is a mask.
pub const JOURNAL_CAPACITY: usize = 2048;

/// Sentinel for "no shard / no node" in an event's identity fields;
/// rendered as `null` in JSON.
pub const NO_ID: u64 = u64::MAX;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide monotonic epoch (established on
/// first use). Shared by the tracer and the journal so span start times
/// and event timestamps are directly comparable.
#[must_use]
pub fn monotonic_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The typed event vocabulary of the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A choose-plan arbitration picked a winner (`a` = winning
    /// alternative index or [`NO_ID`] when every attempt failed, `b` =
    /// fallbacks absorbed on the way).
    ArbitrationWinner,
    /// A runtime checkpoint observed a cardinality outside its interval
    /// (`a` = observed rows).
    IntervalEscape,
    /// Mid-query re-optimization adopted (or rejected) a new plan
    /// (`a` = 1 when adopted, 0 when kept).
    Replan,
    /// The degradation ladder stepped down (`a` = ladder rung or memory
    /// fraction context).
    DegradationStep,
    /// A live view's observed cardinality drifted out of its bind-time
    /// interval and re-fired arbitration (`a` = rows observed).
    LiveDrift,
    /// Shards disagreed on a choose node's winner (`node` = the choose
    /// node, `a` = number of distinct winners).
    ShardDivergence,
    /// A link dropped a frame (`shard` = sending node, `a` = receiving
    /// node, `b` = drops charged; retransmission may still succeed).
    LinkFault,
    /// Admission control refused or a query failed with a classified
    /// refusal (`a` = refusal class: 0 timeout, 1 grant-too-large,
    /// 2 link-fault exhaustion, 3 memory exhaustion).
    AdmissionRefusal,
}

impl EventKind {
    /// Stable string label, used by the JSON dump and its validator.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::ArbitrationWinner => "arbitration_winner",
            EventKind::IntervalEscape => "interval_escape",
            EventKind::Replan => "replan",
            EventKind::DegradationStep => "degradation_step",
            EventKind::LiveDrift => "live_drift",
            EventKind::ShardDivergence => "shard_divergence",
            EventKind::LinkFault => "link_fault",
            EventKind::AdmissionRefusal => "admission_refusal",
        }
    }

    /// Every kind, in code order (the validator's vocabulary).
    #[must_use]
    pub fn all() -> &'static [EventKind] {
        &[
            EventKind::ArbitrationWinner,
            EventKind::IntervalEscape,
            EventKind::Replan,
            EventKind::DegradationStep,
            EventKind::LiveDrift,
            EventKind::ShardDivergence,
            EventKind::LinkFault,
            EventKind::AdmissionRefusal,
        ]
    }

    fn code(self) -> u64 {
        match self {
            EventKind::ArbitrationWinner => 0,
            EventKind::IntervalEscape => 1,
            EventKind::Replan => 2,
            EventKind::DegradationStep => 3,
            EventKind::LiveDrift => 4,
            EventKind::ShardDivergence => 5,
            EventKind::LinkFault => 6,
            EventKind::AdmissionRefusal => 7,
        }
    }

    fn from_code(code: u64) -> Option<EventKind> {
        EventKind::all().get(usize::try_from(code).ok()?).copied()
    }
}

/// One recorded event, fully plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEvent {
    /// Global sequence number (monotonic across the process).
    pub seq: u64,
    /// Monotonic timestamp ([`monotonic_ns`] epoch).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Distributed trace id the event belongs to (0 = outside any trace).
    pub trace: u64,
    /// Shard (or node) identity, [`NO_ID`] when not applicable.
    pub shard: u64,
    /// Plan-node id, [`NO_ID`] when not applicable.
    pub node: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub b: u64,
}

const FIELDS: usize = 8; // seq, ts, kind, trace, shard, node, a, b

struct Slot {
    version: AtomicU64,
    data: [AtomicU64; FIELDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            data: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bounded lock-free event ring. One global instance ([`journal`]);
/// separate instances exist only in tests.
pub struct Journal {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl Journal {
    /// A fresh ring of [`JOURNAL_CAPACITY`] slots.
    #[must_use]
    pub fn new() -> Journal {
        Journal {
            slots: (0..JOURNAL_CAPACITY).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Records one event. Lock-free; safe from any thread.
    pub fn record(&self, kind: EventKind, trace: u64, shard: u64, node: u64, a: u64, b: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let ts = monotonic_ns();
        let slot = &self.slots[(seq as usize) & (self.slots.len() - 1)];
        // Seqlock write: odd while in flight, even when stable. Two
        // writers lapping each other on the same slot can interleave, but
        // the version check below makes readers discard any such slot.
        slot.version.fetch_add(1, Ordering::AcqRel);
        let fields = [seq, ts, kind.code(), trace, shard, node, a, b];
        for (cell, value) in slot.data.iter().zip(fields) {
            cell.store(value, Ordering::Relaxed);
        }
        slot.version.fetch_add(1, Ordering::AcqRel);
    }

    /// The sequence number the *next* event will get. Take it before an
    /// operation, then pass it to [`Journal::events_since`] to see only
    /// the events the operation produced.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Total events ever recorded (recorded − capacity have been
    /// overwritten when this exceeds the capacity).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Stable snapshot of the ring, oldest surviving event first. Torn
    /// slots (mid-write, or lapped during the read) are skipped.
    #[must_use]
    pub fn snapshot(&self) -> Vec<JournalEvent> {
        let head = self.head.load(Ordering::Acquire);
        let mut events = Vec::with_capacity(self.slots.len().min(head as usize));
        for slot in self.slots.iter() {
            let before = slot.version.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let fields: [u64; FIELDS] =
                std::array::from_fn(|i| slot.data[i].load(Ordering::Relaxed));
            let after = slot.version.load(Ordering::Acquire);
            if after != before {
                continue;
            }
            let [seq, ts_ns, code, trace, shard, node, a, b] = fields;
            let Some(kind) = EventKind::from_code(code) else { continue };
            if seq < head {
                events.push(JournalEvent { seq, ts_ns, kind, trace, shard, node, a, b });
            }
        }
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Events with `seq >= cursor`, oldest first (events older than the
    /// ring's reach are gone).
    #[must_use]
    pub fn events_since(&self, cursor: u64) -> Vec<JournalEvent> {
        let mut events = self.snapshot();
        events.retain(|e| e.seq >= cursor);
        events
    }

    /// The journal as a schema-stable JSON document (see
    /// [`validate_journal_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let events = self.snapshot();
        let mut out = String::from("{\n  \"journal\": {\n");
        out.push_str(&format!("    \"capacity\": {},\n", self.slots.len()));
        out.push_str(&format!("    \"recorded\": {},\n", self.recorded()));
        out.push_str("    \"events\": [");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let opt = |v: u64| -> String {
                if v == NO_ID { "null".into() } else { v.to_string() }
            };
            out.push_str(&format!(
                "\n      {{\"seq\": {}, \"ts_ns\": {}, \"kind\": \"{}\", \"trace\": {}, \
                 \"shard\": {}, \"node\": {}, \"a\": {}, \"b\": {}}}",
                e.seq,
                e.ts_ns,
                e.kind.label(),
                e.trace,
                opt(e.shard),
                opt(e.node),
                opt(e.a),
                opt(e.b),
            ));
        }
        if events.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n    ]\n");
        }
        out.push_str("  }\n}\n");
        out
    }
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new()
    }
}

static GLOBAL: OnceLock<Journal> = OnceLock::new();

/// The process-global flight recorder. Always on; bounded; lock-free.
#[must_use]
pub fn journal() -> &'static Journal {
    GLOBAL.get_or_init(Journal::new)
}

/// Validates a journal JSON document (as produced by [`Journal::to_json`]
/// and dumped by `--journal-json`): one `journal` object with numeric
/// `capacity`/`recorded` and an `events` array whose entries carry a
/// known `kind` label, non-negative numbers, strictly increasing `seq`,
/// and nullable `shard`/`node`/`a`/`b`.
///
/// # Errors
/// The first violation found, as a human-readable string.
pub fn validate_journal_json(text: &str) -> Result<(), String> {
    use crate::explain::JsonValue;
    let doc = crate::explain::parse_json(text)?;
    let journal = doc.get("journal").ok_or("missing top-level `journal` object")?;
    for key in ["capacity", "recorded"] {
        match journal.get(key).and_then(JsonValue::as_num) {
            Some(n) if n >= 0.0 => {}
            _ => return Err(format!("`journal.{key}` must be a non-negative number")),
        }
    }
    let events = journal
        .get("events")
        .and_then(JsonValue::as_arr)
        .ok_or("`journal.events` must be an array")?;
    let known: Vec<&str> = EventKind::all().iter().map(|k| k.label()).collect();
    let mut last_seq: Option<f64> = None;
    for (i, event) in events.iter().enumerate() {
        let kind = event
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: `kind` must be a string"))?;
        if !known.contains(&kind) {
            return Err(format!("event {i}: unknown kind `{kind}`"));
        }
        for key in ["seq", "ts_ns", "trace"] {
            match event.get(key).and_then(JsonValue::as_num) {
                Some(n) if n >= 0.0 => {}
                _ => return Err(format!("event {i}: `{key}` must be a non-negative number")),
            }
        }
        for key in ["shard", "node", "a", "b"] {
            match event.get(key) {
                Some(JsonValue::Null) => {}
                Some(v) if v.as_num().is_some_and(|n| n >= 0.0) => {}
                _ => {
                    return Err(format!(
                        "event {i}: `{key}` must be null or a non-negative number"
                    ))
                }
            }
        }
        let seq = event.get("seq").and_then(JsonValue::as_num).unwrap_or(-1.0);
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!("event {i}: `seq` {seq} not after {prev}"));
            }
        }
        last_seq = Some(seq);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_in_order() {
        let j = Journal::new();
        let cursor = j.cursor();
        j.record(EventKind::ArbitrationWinner, 7, 0, 3, 1, 0);
        j.record(EventKind::LinkFault, 7, 1, NO_ID, 2, 1);
        let events = j.events_since(cursor);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::ArbitrationWinner);
        assert_eq!(events[0].trace, 7);
        assert_eq!(events[0].node, 3);
        assert_eq!(events[1].kind, EventKind::LinkFault);
        assert!(events[0].seq < events[1].seq);
        assert!(events[0].ts_ns <= events[1].ts_ns);
    }

    #[test]
    fn ring_bounds_and_overwrites() {
        let j = Journal::new();
        for i in 0..(JOURNAL_CAPACITY as u64 + 100) {
            j.record(EventKind::Replan, 1, NO_ID, NO_ID, i, 0);
        }
        let events = j.snapshot();
        assert!(events.len() <= JOURNAL_CAPACITY);
        assert_eq!(j.recorded(), JOURNAL_CAPACITY as u64 + 100);
        // The oldest surviving event is at least `overflow` deep.
        assert!(events.first().map_or(0, |e| e.seq) >= 100);
        // Strictly increasing seq.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn concurrent_writers_never_tear() {
        let j = std::sync::Arc::new(Journal::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let j = std::sync::Arc::clone(&j);
                scope.spawn(move || {
                    for i in 0..2000u64 {
                        j.record(EventKind::IntervalEscape, t, t, i, i, t);
                    }
                });
            }
        });
        let events = j.snapshot();
        assert!(!events.is_empty());
        // Every surviving event is internally consistent: the payload `a`
        // matches the node id it was written with.
        assert!(events.iter().all(|e| e.a == e.node));
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn json_dump_validates() {
        let j = Journal::new();
        j.record(EventKind::ShardDivergence, 9, NO_ID, 4, 2, 0);
        j.record(EventKind::AdmissionRefusal, 0, NO_ID, NO_ID, 0, 0);
        let json = j.to_json();
        validate_journal_json(&json).unwrap();
        // Tampered kind fails.
        let bad = json.replace("shard_divergence", "quantum_flux");
        assert!(validate_journal_json(&bad).is_err());
    }

    #[test]
    fn empty_journal_validates() {
        let j = Journal::new();
        validate_journal_json(&j.to_json()).unwrap();
    }
}
