//! Per-operator execution tracing.
//!
//! A [`Tracer`] collects one [`SpanRecord`] per compiled operator. The
//! compiler ([`crate::compile_plan`]) opens a span for every plan node
//! when the [`ExecContext`] carries a tracer and wraps the produced
//! operator in a [`TracedExec`] decorator; with no tracer the compiled
//! tree is byte-identical to the untraced one — no wrapper, no span, no
//! per-row work — so the disabled path costs one branch per plan node at
//! compile time and nothing at run time.
//!
//! Span statistics accumulate *locally* inside each wrapper (plain field
//! updates, no locking on the hot path) and flush into the tracer exactly
//! once, on `close`. Exchange workers share a single span: each worker's
//! wrapper flushes its private [`SpanStats`] and the tracer merges them
//! with [`SpanStats::merge_from`] — the same shape as
//! [`SharedCounters::merge_from`], and merge-order independent by the
//! same argument (all fields are sums, except the memory high-water which
//! merges with `max`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dqep_interval::Interval;
use dqep_plan::PlanNode;
use dqep_storage::{IoStats, SimDisk};
use parking_lot::Mutex;

use crate::batch::RowBatch;
use crate::error::ExecError;
use crate::exec::{BoxedOperator, Operator};
use crate::governor::{ExecContext, ResourceGovernor};
use crate::metrics::{CpuCounters, SharedCounters};
use crate::tuple::{Tuple, TupleLayout};

/// Process-wide trace-id allocator: every [`Tracer`] created with
/// [`Tracer::new`] or [`Tracer::audit_only`] gets a distinct non-zero id,
/// so journal events and frame headers from concurrent queries never
/// collide. Zero is the "no trace" sentinel on the wire.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Index of a span inside its [`Tracer`]. Stable for the tracer's
/// lifetime; parents always have smaller ids than their children because
/// the compiler opens spans top-down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub usize);

/// The optimizer's compile-time interval estimate for one plan node,
/// captured when the node is compiled so EXPLAIN ANALYZE can diff it
/// against actuals.
#[derive(Debug, Clone, Copy)]
pub struct NodeEstimate {
    /// Output cardinality interval (rows).
    pub card: Interval,
    /// Total (subtree-inclusive) cost interval, simulated seconds.
    pub cost: Interval,
}

impl NodeEstimate {
    /// The estimate carried by `node`: its cardinality interval and the
    /// total of its interval cost.
    #[must_use]
    pub fn of(node: &PlanNode) -> NodeEstimate {
        NodeEstimate {
            card: node.stats.card,
            cost: node.total_cost.total(),
        }
    }
}

/// Measured totals for one span. All fields are *inclusive* of the
/// operator's subtree, mirroring `total_cost` semantics, because the
/// wrapper's windows around `open`/`next` contain the children's work.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanStats {
    /// Rows delivered to the parent (live rows for batches).
    pub rows: u64,
    /// Batches delivered to the parent.
    pub batches: u64,
    /// `open` calls observed (a choose-plan may open alternatives that
    /// never deliver rows; exchange workers each count their own).
    pub opens: u64,
    /// Calls that returned an error.
    pub errors: u64,
    /// Wall-clock nanoseconds spent inside `open`.
    pub open_wall_ns: u64,
    /// Wall-clock nanoseconds spent inside `next`/`next_batch`.
    pub next_wall_ns: u64,
    /// CPU counter delta observed across this span's calls.
    pub cpu: CpuCounters,
    /// Accounted I/O delta observed across this span's calls.
    pub io: IoStats,
    /// Governor memory high-water (bytes) sampled while the span ran.
    pub mem_peak: u64,
}

impl SpanStats {
    /// Merges another worker's totals into this span: counts, times, CPU
    /// and I/O sum; the memory high-water takes the max (it is a shared
    /// governor's peak, not a per-worker quantity). Commutative and
    /// associative, so merge order never matters — the property
    /// `tests/observability.rs` exercises under concurrent flushes.
    pub fn merge_from(&mut self, other: &SpanStats) {
        self.rows += other.rows;
        self.batches += other.batches;
        self.opens += other.opens;
        self.errors += other.errors;
        self.open_wall_ns += other.open_wall_ns;
        self.next_wall_ns += other.next_wall_ns;
        self.cpu += other.cpu;
        self.io += other.io;
        self.mem_peak = self.mem_peak.max(other.mem_peak);
    }

    /// Simulated seconds of the span's accounted work under `config`.
    #[must_use]
    pub fn simulated_seconds(&self, config: &dqep_catalog::SystemConfig) -> f64 {
        self.cpu.seconds(config) + self.io.seconds(config)
    }
}

/// Wire accounting attached to a network-exchange span: one side of one
/// simulated link, reconciled against the channel's own [`NetCounters`]
/// so the sum of all send-span byte totals equals the query's
/// `NetStats::since` delta exactly.
///
/// [`NetCounters`]: crate::netexchange::NetStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSpanStats {
    /// Sending node id (shards `0..n`, coordinator `n`).
    pub from: u32,
    /// Receiving node id.
    pub to: u32,
    /// `true` for the sending side of the link (which carries the byte
    /// accounting), `false` for the receiving side (which carries the
    /// propagated remote span id, and no bytes — so totals never double
    /// count).
    pub sent: bool,
    /// Bytes put on the wire, including retransmissions and frames burnt
    /// by an exhausted retransmission budget.
    pub bytes: u64,
    /// Frames delivered.
    pub frames: u64,
    /// Frames retransmitted after an injected drop.
    pub retransmits: u64,
    /// Sends that blocked on credit backpressure.
    pub credit_stalls: u64,
    /// Nanoseconds spent blocked on credit.
    pub credit_wait_ns: u64,
    /// The peer's span id recovered from the frame header (receive side
    /// only): proof the trace context propagated across the wire. Remapped
    /// into merged-report coordinates by [`merge_distributed`].
    pub remote_span: Option<u64>,
}

/// One traced operator: identity, estimate, and measured totals.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// This span's id (its index in the report).
    pub id: SpanId,
    /// Enclosing span, `None` for the plan root.
    pub parent: Option<SpanId>,
    /// Detailed operator label (`Filter[R0.#0 < :v0]`).
    pub label: String,
    /// Operator kind (`File-Scan`, `Choose-Plan`, …), or a synthetic kind
    /// for spans without a plan node (exchange workers).
    pub kind: &'static str,
    /// The plan node's id, when the span maps to one.
    pub node: Option<u64>,
    /// Compile-time interval estimate, when the span maps to a plan node.
    pub estimate: Option<NodeEstimate>,
    /// Degree of parallelism the span ran at (worker spans report the
    /// exchange's worker count; everything else reports the session DOP).
    pub dop: usize,
    /// Measured totals, merged across workers where applicable.
    pub stats: SpanStats,
    /// Monotonic nanoseconds (process-wide epoch, shared with the event
    /// journal) at which the span was opened.
    pub start_ns: u64,
    /// Wire accounting, present only on network-exchange spans.
    pub net: Option<NetSpanStats>,
}

/// One choose-plan arbitration alternative as considered at bind time.
#[derive(Debug, Clone)]
pub struct AltAudit {
    /// Index among the choose-plan's children.
    pub index: usize,
    /// Operator label of the alternative's root.
    pub label: String,
    /// Predicted run seconds under the bound parameter values.
    pub predicted_seconds: f64,
}

/// One open attempt during a choose-plan's run-time arbitration.
#[derive(Debug, Clone)]
pub struct AttemptAudit {
    /// Alternative index attempted.
    pub index: usize,
    /// `"opened"`, or the error that forced a fallback.
    pub outcome: String,
}

/// The audit trail of one choose-plan arbitration: what was considered,
/// under which bindings, what won, and which fallbacks were taken.
#[derive(Debug, Clone)]
pub struct ChooseAudit {
    /// The choose-plan node's id.
    pub node: u64,
    /// Bind-time host-variable values (`:v0` rendered as `v0`).
    pub bind_values: Vec<(String, i64)>,
    /// Bind-time memory grant in pages, when bound.
    pub memory_pages: Option<f64>,
    /// Every alternative with its bind-time cost prediction.
    pub alternatives: Vec<AltAudit>,
    /// Index the start-up evaluation preferred.
    pub preferred: usize,
    /// Open attempts in order, including failed ones.
    pub attempts: Vec<AttemptAudit>,
    /// Index that ultimately opened, `None` when every attempt failed.
    pub winner: Option<usize>,
    /// Retryable failures absorbed before the winner opened.
    pub fallbacks: u64,
}

#[derive(Debug, Default)]
struct TracerInner {
    spans: Vec<SpanRecord>,
    audits: Vec<ChooseAudit>,
}

/// Collector for one traced execution. Cheap to share (`Arc`); wrappers
/// only take its lock twice per operator (span creation and the single
/// flush on close), never per row.
#[derive(Debug)]
pub struct Tracer {
    inner: Mutex<TracerInner>,
    trace_id: u64,
    record_spans: bool,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh, empty tracer with a new process-unique trace id.
    #[must_use]
    pub fn new() -> Tracer {
        Tracer {
            inner: Mutex::default(),
            trace_id: next_trace_id(),
            record_spans: true,
        }
    }

    /// A tracer participating in an existing distributed trace: spans it
    /// records carry `trace_id`, so per-shard reports can be merged into
    /// one connected timeline and frame headers stamp the shared id.
    #[must_use]
    pub fn with_trace_id(trace_id: u64) -> Tracer {
        Tracer {
            inner: Mutex::default(),
            trace_id,
            record_spans: true,
        }
    }

    /// A tracer that collects choose-plan audits but records **no spans**:
    /// [`node_span`] returns `None` under it, so the compiled tree stays
    /// byte-identical to the untraced one. This is how the sharded service
    /// keeps its always-on arbitration audits without paying the
    /// per-operator wrapper cost when EXPLAIN ANALYZE is off.
    #[must_use]
    pub fn audit_only() -> Tracer {
        Tracer {
            inner: Mutex::default(),
            trace_id: next_trace_id(),
            record_spans: false,
        }
    }

    /// The distributed trace id all this tracer's spans belong to.
    #[must_use]
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Whether this tracer records spans (false for [`Tracer::audit_only`]).
    #[must_use]
    pub fn records_spans(&self) -> bool {
        self.record_spans
    }

    /// Registers a new span and returns its id.
    pub fn span(
        &self,
        label: String,
        kind: &'static str,
        node: Option<u64>,
        estimate: Option<NodeEstimate>,
        parent: Option<SpanId>,
        dop: usize,
    ) -> SpanId {
        let start_ns = crate::journal::monotonic_ns();
        let mut inner = self.inner.lock();
        let id = SpanId(inner.spans.len());
        inner.spans.push(SpanRecord {
            id,
            parent,
            label,
            kind,
            node,
            estimate,
            dop,
            stats: SpanStats::default(),
            start_ns,
            net: None,
        });
        id
    }

    /// Attaches wire accounting to a network-exchange span.
    pub fn set_net(&self, id: SpanId, net: NetSpanStats) {
        if let Some(record) = self.inner.lock().spans.get_mut(id.0) {
            record.net = Some(net);
        }
    }

    /// Merges a wrapper's locally accumulated totals into `id`'s record.
    /// Safe to call concurrently from exchange workers sharing a span.
    pub fn merge_span(&self, id: SpanId, stats: &SpanStats) {
        if let Some(record) = self.inner.lock().spans.get_mut(id.0) {
            record.stats.merge_from(stats);
        }
    }

    /// Appends a choose-plan audit trail.
    pub fn audit(&self, audit: ChooseAudit) {
        self.inner.lock().audits.push(audit);
    }

    /// Snapshot of everything recorded so far.
    #[must_use]
    pub fn report(&self) -> TraceReport {
        let inner = self.inner.lock();
        TraceReport {
            trace_id: self.trace_id,
            spans: inner.spans.clone(),
            audits: inner.audits.clone(),
            reopt: crate::reopt::ReoptReport::default(),
        }
    }
}

/// An immutable snapshot of a [`Tracer`]: the span tree plus choose-plan
/// audit trails, in creation order (top-down).
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// The distributed trace id shared by every span (0 for a default
    /// report that never saw a tracer).
    pub trace_id: u64,
    /// All spans; a span's id is its index.
    pub spans: Vec<SpanRecord>,
    /// Choose-plan audits, in arbitration order.
    pub audits: Vec<ChooseAudit>,
    /// Mid-query re-optimization audit trail; empty (the default) unless
    /// the execution ran with [`crate::execute_plan_reopt_traced`].
    pub reopt: crate::reopt::ReoptReport,
}

impl TraceReport {
    /// Spans with no parent (normally exactly one: the plan root).
    #[must_use]
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent.is_none()).collect()
    }

    /// Direct children of `id`, in creation order.
    #[must_use]
    pub fn children_of(&self, id: SpanId) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.parent == Some(id))
            .collect()
    }
}

/// Merges a distributed execution's per-shard trace reports into the
/// coordinator's report, producing one connected span tree.
///
/// The coordinator's spans keep their ids (its root — span 0 — becomes
/// the merged root). Each shard's spans are appended in shard order with
/// their ids and parents shifted by that shard's offset; a shard-local
/// root (parent `None`) is re-parented onto the coordinator root, so the
/// merged report has exactly one root. Receive-side network spans carry
/// the sender's *local* span id recovered from the frame header; those
/// are remapped through the sender's offset (`net.from` names the sending
/// shard), which keeps the cross-wire link pointing at the right span in
/// merged coordinates. The invariants the JSON schema validator enforces
/// — `id == index`, `parent < id` — are preserved by construction.
///
/// Audits concatenate in the same order (coordinator first), and the
/// coordinator's reopt report is kept.
#[must_use]
pub fn merge_distributed(coord: &TraceReport, shards: &[TraceReport]) -> TraceReport {
    let mut spans: Vec<SpanRecord> = coord.spans.clone();
    let coord_root = (!spans.is_empty()).then_some(SpanId(0));
    let mut offsets = Vec::with_capacity(shards.len());
    for shard in shards {
        let offset = spans.len();
        offsets.push(offset);
        for span in &shard.spans {
            let mut merged = span.clone();
            merged.id = SpanId(span.id.0 + offset);
            merged.parent = match span.parent {
                Some(p) => Some(SpanId(p.0 + offset)),
                None => coord_root,
            };
            spans.push(merged);
        }
    }
    // Second pass: remap propagated remote span ids into merged
    // coordinates. `net.from` identifies the sending shard, whose offset
    // shifts the id; a sender outside the shard range (the coordinator
    // never sends) leaves the id untouched.
    for span in &mut spans {
        if let Some(net) = &mut span.net {
            if let Some(remote) = net.remote_span {
                if let Some(&offset) = offsets.get(net.from as usize) {
                    net.remote_span = Some(remote + offset as u64);
                }
            }
        }
    }
    let mut audits = coord.audits.clone();
    for shard in shards {
        audits.extend(shard.audits.iter().cloned());
    }
    TraceReport {
        trace_id: coord.trace_id,
        spans,
        audits,
        reopt: coord.reopt.clone(),
    }
}

fn cpu_delta(later: CpuCounters, earlier: CpuCounters) -> CpuCounters {
    CpuCounters {
        records: later.records - earlier.records,
        compares: later.compares - earlier.compares,
        hashes: later.hashes - earlier.hashes,
    }
}

/// Decorator recording a [`SpanStats`] for the wrapped operator. Deltas
/// are measured inclusively (the window around a call contains the whole
/// subtree's work, like `total_cost`). The accumulated totals flush into
/// the tracer once, on `close` (or on drop as a backstop); exchange
/// worker wrappers share one span id, so their flushes merge.
pub struct TracedExec<'a> {
    inner: BoxedOperator<'a>,
    tracer: Arc<Tracer>,
    span: SpanId,
    counters: SharedCounters,
    /// The disk whose counters this span may read. `None` for exchange
    /// worker spans: concurrent workers' windows over the shared disk
    /// overlap, so per-worker deltas would double-count — the enclosing
    /// exchange node's span accounts the I/O exactly instead.
    disk: Option<SimDisk>,
    governor: ResourceGovernor,
    local: SpanStats,
    flushed: bool,
}

impl<'a> TracedExec<'a> {
    /// Wraps `inner`, accumulating into `span` of `tracer`.
    #[must_use]
    pub fn new(
        inner: BoxedOperator<'a>,
        tracer: Arc<Tracer>,
        span: SpanId,
        counters: SharedCounters,
        disk: Option<SimDisk>,
        governor: ResourceGovernor,
    ) -> TracedExec<'a> {
        TracedExec {
            inner,
            tracer,
            span,
            counters,
            disk,
            governor,
            local: SpanStats::default(),
            flushed: false,
        }
    }

    fn measured<T>(
        &mut self,
        is_open: bool,
        call: impl FnOnce(&mut BoxedOperator<'a>) -> Result<T, ExecError>,
    ) -> Result<T, ExecError> {
        let cpu_before = self.counters.snapshot();
        let io_before = self.disk.as_ref().map(SimDisk::stats);
        let started = Instant::now();
        let result = call(&mut self.inner);
        let wall = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if is_open {
            self.local.opens += 1;
            self.local.open_wall_ns += wall;
        } else {
            self.local.next_wall_ns += wall;
        }
        self.local.cpu += cpu_delta(self.counters.snapshot(), cpu_before);
        if let (Some(disk), Some(before)) = (self.disk.as_ref(), io_before) {
            self.local.io += disk.stats().since(&before);
        }
        self.local.mem_peak = self.local.mem_peak.max(self.governor.memory_peak());
        if result.is_err() {
            self.local.errors += 1;
        }
        result
    }

    fn flush(&mut self) {
        if !self.flushed {
            self.flushed = true;
            self.tracer.merge_span(self.span, &self.local);
        }
    }
}

impl Operator for TracedExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.measured(true, |op| op.open())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        let result = self.measured(false, |op| op.next());
        if matches!(result, Ok(Some(_))) {
            self.local.rows += 1;
        }
        result
    }

    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>, ExecError> {
        let result = self.measured(false, |op| op.next_batch(max_rows));
        if let Ok(Some(batch)) = &result {
            self.local.rows += batch.len() as u64;
            self.local.batches += 1;
        }
        result
    }

    fn close(&mut self) {
        self.inner.close();
        self.flush();
    }

    fn layout(&self) -> &TupleLayout {
        self.inner.layout()
    }

    fn estimated_rows(&self) -> Option<u64> {
        self.inner.estimated_rows()
    }
}

impl Drop for TracedExec<'_> {
    fn drop(&mut self) {
        // Backstop for operators abandoned without close (e.g. a failed
        // choose-plan attempt whose caller forgot teardown): the span
        // still records the work done. `flushed` makes this idempotent.
        self.flush();
    }
}

/// Opens a span for `node` when `ctx` traces: returns the span plus the
/// context child operators should compile under (its `span_parent` points
/// at the new span). Returns `None` — and allocates nothing — when
/// tracing is disabled, so the untraced compile path pays one branch.
#[must_use]
pub fn node_span(ctx: &ExecContext, node: &PlanNode) -> Option<(SpanId, ExecContext)> {
    let tracer = ctx.tracer.as_ref().filter(|t| t.records_spans())?;
    let span = tracer.span(
        node.op.to_string(),
        node.op.name(),
        Some(node.id.0),
        Some(NodeEstimate::of(node)),
        ctx.span_parent,
        ctx.dop,
    );
    let mut child = ctx.clone();
    child.span_parent = Some(span);
    Some((span, child))
}

/// Wraps `op` in a [`TracedExec`] accumulating into `span`. `ctx` must be
/// a tracing context (the one `node_span` returned); a non-tracing
/// context returns `op` unchanged.
#[must_use]
pub fn wrap_span<'a>(
    op: BoxedOperator<'a>,
    span: SpanId,
    ctx: &ExecContext,
    disk: Option<SimDisk>,
) -> BoxedOperator<'a> {
    match ctx.tracer.as_ref() {
        Some(tracer) => Box::new(TracedExec::new(
            op,
            Arc::clone(tracer),
            span,
            ctx.counters.clone(),
            disk,
            ctx.governor.clone(),
        )),
        None => op,
    }
}
