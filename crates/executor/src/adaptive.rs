//! Run-time adaptive execution: decisions delayed *beyond* start-up.
//!
//! The paper's final section sketches the next step past start-up-time
//! decisions: "our initial approach has been to handle inaccurate expected
//! values by evaluating subplans as part of choose-plan decision
//! procedures. When a subplan has been evaluated into a temporary result,
//! its logical and physical properties (e.g., result cardinality and value
//! distributions) are known and therefore may contribute to decisions with
//! increased confidence."
//!
//! [`execute_adaptive`] implements that loop:
//!
//! 1. find a subplan **shared by all alternatives** of the plan's root
//!    choose-plan whose compile-time cardinality is *uncertain* (the
//!    deepest such node — cheapest to pilot);
//! 2. execute it (the "temporary result") and observe its actual
//!    cardinality;
//! 3. re-run the start-up decision procedure with the observation
//!    overriding the estimate ([`dqep_plan::evaluate_startup_observed`]);
//! 4. execute the chosen plan.
//!
//! The pilot's cost is reported separately, but it is *not* repeated:
//! the pilot's materialized rows are retained (via the mid-query
//! re-optimization machinery, [`crate::ReoptState`]) and the main
//! execution serves them through a [`crate::MaterializedScanExec`]
//! wherever the shared subplan appears — so the observation's only
//! overhead is materializing once what the main execution would have
//! computed anyway. That makes the pilot worthwhile whenever estimates
//! are bad enough that the default start-up decision could pick the
//! wrong plan (e.g. skewed data without histograms).

use std::collections::HashSet;
use std::sync::Arc;

use dqep_catalog::Catalog;
use dqep_cost::{Bindings, Environment};
use dqep_plan::{dag, evaluate_startup_observed, Observations, PlanNode, StartupResult};
use dqep_storage::StoredDatabase;

use crate::compile::compile_plan;
use crate::error::ExecError;
use crate::exec::drain;
use crate::governor::ExecContext;
use crate::metrics::{ExecSummary, SharedCounters};

/// Result of one adaptive execution.
#[derive(Debug)]
pub struct AdaptiveResult {
    /// The subplan observed (root of the pilot), if any was eligible.
    pub observed: Option<dqep_plan::NodeId>,
    /// The pilot's observed cardinality, if a pilot ran.
    pub observed_rows: Option<u64>,
    /// Cost of the pilot execution (simulated I/O + CPU).
    pub pilot: Option<ExecSummary>,
    /// The start-up decision made with the observation applied.
    pub startup: StartupResult,
    /// The main execution.
    pub main: ExecSummary,
}

impl AdaptiveResult {
    /// Total simulated seconds including the pilot overhead.
    #[must_use]
    pub fn total_seconds(&self, config: &dqep_catalog::SystemConfig) -> f64 {
        self.main.simulated_seconds(config)
            + self
                .pilot
                .map(|p| p.simulated_seconds(config))
                .unwrap_or(0.0)
    }
}

/// Picks the pilot subplan: the largest (deepest) subplan that (a) appears
/// in every alternative of the root choose-plan and (b) has an uncertain
/// compile-time cardinality. The pilot may itself contain choose-plans —
/// it executes through the run-time choose-plan operator, which resolves
/// its inner decisions lazily. Returns `None` when the plan has no root
/// choose-plan or no eligible shared subplan.
#[must_use]
pub fn pick_pilot(plan: &Arc<PlanNode>) -> Option<Arc<PlanNode>> {
    if !plan.is_choose_plan() {
        return None;
    }
    // Node sets per alternative.
    let mut shared: Option<HashSet<_>> = None;
    for alt in &plan.children {
        let mut ids = HashSet::new();
        dag::walk_dag(alt, &mut |n| {
            ids.insert(n.id);
        });
        shared = Some(match shared {
            None => ids,
            Some(prev) => prev.intersection(&ids).copied().collect(),
        });
    }
    let shared = shared?;
    // Among shared nodes, pick the deepest eligible one.
    let mut best: Option<(usize, Arc<PlanNode>)> = None;
    dag::walk_dag(plan, &mut |n| {
        if !shared.contains(&n.id) {
            return;
        }
        if n.stats.card.is_point() {
            return; // nothing to learn
        }
        let depth = dag::depth(n);
        let better = match &best {
            None => true,
            Some((d, _)) => depth > *d,
        };
        if better {
            best = Some((depth, Arc::clone(n)));
        }
    });
    best.map(|(_, n)| n)
}

/// Executes a dynamic plan with one round of run-time observation (see the
/// module docs). Falls back to ordinary start-up execution when no pilot
/// subplan is eligible.
///
/// # Errors
/// Any [`ExecError`] from the pilot or main execution.
pub fn execute_adaptive(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
) -> Result<AdaptiveResult, ExecError> {
    let memory_pages = bindings
        .memory_pages
        .unwrap_or_else(|| env.memory.expected());
    let memory_bytes = (memory_pages * catalog.config.page_size as f64) as usize;

    let mut observations = Observations::new();
    let mut pilot_summary = None;
    let mut observed = None;
    let mut observed_rows = None;
    let mut retained: Option<Arc<crate::reopt::ReoptState>> = None;

    if let Some(pilot) = pick_pilot(plan) {
        let ctx = ExecContext::new(SharedCounters::new());
        let before = db.disk.stats();
        let mut op = crate::choose::compile_dynamic_plan(
            &pilot, db, catalog, env, bindings, memory_bytes, &ctx,
        )?;
        let pilot_rows = drain(op.as_mut())?;
        let rows = pilot_rows.len() as u64;
        let io = db.disk.stats().since(&before);
        pilot_summary = Some(ExecSummary {
            rows,
            cpu: ctx.counters.snapshot(),
            io,
            fallbacks: ctx.counters.fallbacks(),
            ..ExecSummary::default()
        });
        observations.insert(pilot.id, rows as f64);
        observed = Some(pilot.id);
        observed_rows = Some(rows);
        // Retain the temporary result: the main execution serves it as a
        // materialized scan instead of recomputing the shared subplan.
        let state = Arc::new(crate::reopt::ReoptState::new(crate::reopt::ReoptConfig::default()));
        state.observe_checkpoint(pilot.id, pilot.op.name(), pilot.stats.card, rows);
        let layout = crate::choose::layout_of(&pilot, catalog);
        let _ = state.try_retain(&ctx.governor, pilot.id, layout, pilot_rows);
        retained = Some(state);
    }

    let startup = evaluate_startup_observed(plan, catalog, env, bindings, &observations);
    let mut ctx = ExecContext::new(SharedCounters::new());
    let before = db.disk.stats();
    // With a retained pilot, execute the *original* dynamic plan (its
    // node ids key the substitution); the run-time choose-plan arbitrates
    // with the same observation, reproducing `startup`'s decision, and
    // the compiler serves the pilot's rows in place of its subtree.
    // Without a pilot, run the resolved plan as before.
    let rows = match retained {
        Some(state) => {
            ctx = ctx.with_reopt(state);
            let mut op = crate::choose::compile_dynamic_plan(
                plan, db, catalog, env, bindings, memory_bytes, &ctx,
            )?;
            drain(op.as_mut())?.len() as u64
        }
        None => {
            let mut op =
                compile_plan(&startup.resolved, db, catalog, bindings, memory_bytes, &ctx)?;
            drain(op.as_mut())?.len() as u64
        }
    };
    let io = db.disk.stats().since(&before);
    Ok(AdaptiveResult {
        observed,
        observed_rows,
        pilot: pilot_summary,
        startup,
        main: ExecSummary {
            rows,
            cpu: ctx.counters.snapshot(),
            io,
            fallbacks: ctx.counters.fallbacks(),
            ..ExecSummary::default()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, SelectPred};
    use dqep_catalog::{CatalogBuilder, SystemConfig};
    use dqep_core::Optimizer;
    use dqep_plan::evaluate_startup;
    use dqep_storage::ValueDistribution;

    /// A join whose uncertain input is Zipf-skewed: uniform estimates are
    /// badly wrong, so the plain start-up decision misfires while the
    /// observed decision does not.
    fn skewed_join() -> (Catalog, StoredDatabase, LogicalExpr) {
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 800, 512, |r| {
                r.attr("a", 800.0).attr("j", 200.0).btree("a", false).btree("j", false)
            })
            .relation("s", 400, 512, |r| {
                r.attr("a", 400.0).attr("j", 200.0).btree("j", false)
            })
            .build()
            .unwrap();
        let db =
            StoredDatabase::generate_with(&cat, 3, ValueDistribution::Zipf { exponent: 1.1 });
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        let q = LogicalExpr::get(r.id)
            .select(SelectPred::unbound(
                r.attr_id("a").unwrap(),
                CompareOp::Lt,
                HostVar(0),
            ))
            .join(
                LogicalExpr::get(s.id),
                vec![JoinPred::new(r.attr_id("j").unwrap(), s.attr_id("j").unwrap())],
            );
        (cat, db, q)
    }

    #[test]
    fn pilot_is_a_shared_uncertain_subplan() {
        let (cat, _db, q) = skewed_join();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;
        // Query-1-shaped plans have a root choose-plan over scan variants.
        if let Some(pilot) = pick_pilot(&plan) {
            assert!(!pilot.stats.card.is_point());
        }
        // A static plan never yields a pilot.
        let senv = Environment::static_compile_time(&cat.config);
        let splan = Optimizer::new(&cat, &senv).optimize(&q).unwrap().plan;
        assert!(pick_pilot(&splan).is_none());
    }

    #[test]
    fn observation_corrects_skew_blind_decisions() {
        let (cat, db, q) = skewed_join();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;

        // A binding that looks selective (30/800 ≈ 4%) but matches most of
        // the Zipf-skewed relation.
        let bindings = Bindings::new().with_value(HostVar(0), 30);

        // Plain start-up execution (estimation-blind).
        let blind = evaluate_startup(&plan, &cat, &env, &bindings);
        let (blind_exec, _) =
            crate::compile::execute_plan(&plan, &db, &cat, &env, &bindings).unwrap();

        // Adaptive execution with one observation round.
        let adaptive = execute_adaptive(&plan, &db, &cat, &env, &bindings).unwrap();
        assert_eq!(adaptive.main.rows, blind_exec.rows, "same logical result");

        if let Some(rows) = adaptive.observed_rows {
            // The observation must be the true pilot cardinality, far from
            // the uniform estimate.
            assert!(rows > 100, "zipf: most rows qualify, got {rows}");
        }
        let cfg = &cat.config;
        // The adaptive MAIN execution is no slower than the blind one
        // (it may equal it when the blind decision was already right).
        assert!(
            adaptive.main.simulated_seconds(cfg)
                <= blind_exec.simulated_seconds(cfg) + 1e-9,
            "adaptive main {:.4}s vs blind {:.4}s",
            adaptive.main.simulated_seconds(cfg),
            blind_exec.simulated_seconds(cfg)
        );
        let _ = blind;
    }

    #[test]
    fn pilot_rows_are_reused_not_recomputed() {
        let (cat, db, q) = skewed_join();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;
        let bindings = Bindings::new().with_value(HostVar(0), 30);
        let adaptive = execute_adaptive(&plan, &db, &cat, &env, &bindings).unwrap();
        let pilot = adaptive.pilot.expect("join fixture has a pilot");
        assert!(pilot.io.total() > 0, "pilot reads its base relation");

        // What the same chosen plan costs when executed from scratch.
        let memory_bytes =
            (env.memory.expected() * cat.config.page_size as f64) as usize;
        let ctx = ExecContext::new(SharedCounters::new());
        let before = db.disk.stats();
        let mut op = compile_plan(
            &adaptive.startup.resolved, &db, &cat, &bindings, memory_bytes, &ctx,
        )
        .unwrap();
        let rows = drain(op.as_mut()).unwrap().len() as u64;
        let scratch_io = db.disk.stats().since(&before);

        assert_eq!(rows, adaptive.main.rows, "same logical result");
        assert!(
            adaptive.main.io.total() < scratch_io.total(),
            "serving the retained pilot rows must save the pilot subtree's \
             I/O: main {:?} vs from-scratch {:?}",
            adaptive.main.io,
            scratch_io
        );
    }

    #[test]
    fn adaptive_on_uniform_data_changes_nothing() {
        // With accurate estimates the observation agrees with the
        // estimate and the same plan is chosen.
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 500, 512, |r| r.attr("a", 500.0).btree("a", false))
            .build()
            .unwrap();
        let db = StoredDatabase::generate(&cat, 5);
        let rel = cat.relation_by_name("r").unwrap();
        let q = LogicalExpr::get(rel.id).select(SelectPred::unbound(
            rel.attr_id("a").unwrap(),
            CompareOp::Lt,
            HostVar(0),
        ));
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;
        let bindings = Bindings::new().with_value(HostVar(0), 400);

        let blind = evaluate_startup(&plan, &cat, &env, &bindings);
        let adaptive = execute_adaptive(&plan, &db, &cat, &env, &bindings).unwrap();
        assert_eq!(
            adaptive.startup.resolved.op.name(),
            blind.resolved.op.name(),
            "accurate estimates: observation should not change the choice"
        );
        assert!(adaptive.total_seconds(&cat.config) > 0.0);
    }
}
