//! Per-query resource governance and cooperative cancellation.
//!
//! A [`ResourceGovernor`] is shared (cheaply cloned) by every operator of
//! one query. It enforces the query's memory grant — buffering operators
//! *reserve* bytes before holding rows and abort with
//! [`ExecError::ResourceExhausted`] instead of silently exceeding the
//! grant — plus optional row, I/O and wall-clock budgets, and carries a
//! cancellation flag that operators check once per produced tuple.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::error::{ExecError, Resource};
use crate::metrics::SharedCounters;

/// Budgets a query must stay within. `None` means unlimited.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceLimits {
    /// Cap on bytes simultaneously reserved by buffering operators
    /// (sort buffers, hash tables). This is the *enforced* side of the
    /// memory grant the optimizer planned with.
    pub memory_bytes: Option<u64>,
    /// Cap on result rows produced by the query root.
    pub max_rows: Option<u64>,
    /// Cap on accounted page I/Os performed by the query.
    pub max_io: Option<u64>,
    /// Wall-clock deadline in milliseconds, measured from governor
    /// creation.
    pub wall_clock_ms: Option<u64>,
}

impl ResourceLimits {
    /// No budgets at all.
    #[must_use]
    pub fn unlimited() -> ResourceLimits {
        ResourceLimits::default()
    }
}

#[derive(Debug)]
struct GovernorInner {
    limits: ResourceLimits,
    memory_used: AtomicU64,
    memory_peak: AtomicU64,
    rows: AtomicU64,
    io: AtomicU64,
    cancelled: AtomicBool,
    started: Instant,
    /// Ticks since the wall clock was last consulted; `check` only calls
    /// `Instant::now` every [`CLOCK_STRIDE`] ticks.
    clock_ticks: AtomicU64,
}

/// How many `check` calls elapse between wall-clock reads.
const CLOCK_STRIDE: u64 = 64;

/// Shared enforcement of one query's [`ResourceLimits`].
///
/// Clones share state; hand one clone to every operator of a query.
#[derive(Debug, Clone)]
pub struct ResourceGovernor {
    inner: Arc<GovernorInner>,
}

impl ResourceGovernor {
    /// A governor enforcing `limits`, with its wall clock starting now.
    #[must_use]
    pub fn new(limits: ResourceLimits) -> ResourceGovernor {
        ResourceGovernor {
            inner: Arc::new(GovernorInner {
                limits,
                memory_used: AtomicU64::new(0),
                memory_peak: AtomicU64::new(0),
                rows: AtomicU64::new(0),
                io: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
                started: Instant::now(),
                clock_ticks: AtomicU64::new(0),
            }),
        }
    }

    /// A governor with no budgets.
    #[must_use]
    pub fn unlimited() -> ResourceGovernor {
        ResourceGovernor::new(ResourceLimits::unlimited())
    }

    /// Reserves `bytes` of working memory for a buffering operator.
    ///
    /// # Errors
    /// [`ExecError::ResourceExhausted`] with [`Resource::Memory`] if the
    /// reservation would push usage past the memory limit. Nothing is
    /// reserved on failure.
    pub fn try_reserve_memory(&self, bytes: u64) -> Result<(), ExecError> {
        let used = self.inner.memory_used.fetch_add(bytes, Ordering::SeqCst) + bytes;
        if let Some(limit) = self.inner.limits.memory_bytes {
            if used > limit {
                self.inner.memory_used.fetch_sub(bytes, Ordering::SeqCst);
                return Err(ExecError::ResourceExhausted(Resource::Memory {
                    requested: bytes,
                    limit,
                }));
            }
        }
        self.inner.memory_peak.fetch_max(used, Ordering::SeqCst);
        Ok(())
    }

    /// Returns `bytes` previously reserved with [`Self::try_reserve_memory`].
    pub fn release_memory(&self, bytes: u64) {
        let prev = self.inner.memory_used.fetch_sub(bytes, Ordering::SeqCst);
        debug_assert!(prev >= bytes, "released more memory than reserved");
    }

    /// Bytes currently reserved.
    #[must_use]
    pub fn memory_used(&self) -> u64 {
        self.inner.memory_used.load(Ordering::SeqCst)
    }

    /// High-water mark of reserved bytes.
    #[must_use]
    pub fn memory_peak(&self) -> u64 {
        self.inner.memory_peak.load(Ordering::SeqCst)
    }

    /// Bytes still reservable before the limit refuses a grant, or `None`
    /// when memory is unlimited.
    #[must_use]
    pub fn memory_remaining(&self) -> Option<u64> {
        self.inner
            .limits
            .memory_bytes
            .map(|limit| limit.saturating_sub(self.inner.memory_used.load(Ordering::SeqCst)))
    }

    /// How many rows of `row_bytes` each a buffering operator should
    /// request per ingest batch: at most one row past what the memory
    /// limit can still cover (so a refused reservation trips at exactly
    /// the same input row as the tuple path's per-row reservations — the
    /// producer never over-produces past the first refusable row), capped
    /// at [`crate::BATCH_CAPACITY`].
    #[must_use]
    pub fn ingest_batch_rows(&self, row_bytes: usize) -> usize {
        match self.memory_remaining() {
            Some(remaining) => (remaining as usize / row_bytes.max(1))
                .saturating_add(1)
                .min(crate::batch::BATCH_CAPACITY),
            None => crate::batch::BATCH_CAPACITY,
        }
    }

    /// Charges `n` result rows against the row budget.
    ///
    /// # Errors
    /// [`ExecError::ResourceExhausted`] with [`Resource::Rows`] once the
    /// budget is exceeded.
    pub fn charge_rows(&self, n: u64) -> Result<(), ExecError> {
        let rows = self.inner.rows.fetch_add(n, Ordering::SeqCst) + n;
        if let Some(limit) = self.inner.limits.max_rows {
            if rows > limit {
                return Err(ExecError::ResourceExhausted(Resource::Rows { limit }));
            }
        }
        Ok(())
    }

    /// Charges `n` page I/Os against the I/O budget.
    ///
    /// # Errors
    /// [`ExecError::ResourceExhausted`] with [`Resource::Io`] once the
    /// budget is exceeded.
    pub fn charge_io(&self, n: u64) -> Result<(), ExecError> {
        let io = self.inner.io.fetch_add(n, Ordering::SeqCst) + n;
        if let Some(limit) = self.inner.limits.max_io {
            if io > limit {
                return Err(ExecError::ResourceExhausted(Resource::Io { limit }));
            }
        }
        Ok(())
    }

    /// Requests cooperative cancellation; operators notice at their next
    /// [`Self::check`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Cancellation and deadline check; operators call this once per
    /// produced tuple. The cancellation flag is read every time; the wall
    /// clock only every [`CLOCK_STRIDE`] calls to keep `next()` cheap.
    ///
    /// # Errors
    /// [`ExecError::Cancelled`] after [`Self::cancel`];
    /// [`ExecError::ResourceExhausted`] with [`Resource::WallClock`] past
    /// the deadline.
    pub fn check(&self) -> Result<(), ExecError> {
        self.check_batch(1)
    }

    /// [`Self::check`] amortized over a batch of `n` rows: one
    /// cancellation read and one tick update for the whole batch. The
    /// wall-clock stride advances by `n`, so deadline detection stays as
    /// frequent *per row processed* as the tuple path's — a batched
    /// pipeline reads the clock at the same row counts, just from fewer
    /// call sites.
    ///
    /// # Errors
    /// As [`Self::check`].
    pub fn check_batch(&self, n: u64) -> Result<(), ExecError> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(ExecError::Cancelled);
        }
        if n == 0 {
            return Ok(());
        }
        if let Some(limit_ms) = self.inner.limits.wall_clock_ms {
            let start = self.inner.clock_ticks.fetch_add(n, Ordering::Relaxed);
            // Read the clock iff the window [start, start+n) contains a
            // stride boundary (tick 0 counts: the first check always reads).
            let crosses =
                start.is_multiple_of(CLOCK_STRIDE) || start % CLOCK_STRIDE + n > CLOCK_STRIDE;
            if crosses && self.inner.started.elapsed().as_millis() as u64 > limit_ms {
                return Err(ExecError::ResourceExhausted(Resource::WallClock { limit_ms }));
            }
        }
        Ok(())
    }
}

/// How tuples flow between operators: one at a time through `next()`, or
/// in [`crate::RowBatch`]es through `next_batch()`. Both produce identical
/// results and identical fallback behavior (the batch-parity tests enforce
/// this); batch mode amortizes per-row interpretation overhead and is the
/// default for end-to-end execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Volcano tuple-at-a-time iteration.
    Tuple,
    /// Vectorized batch-at-a-time iteration.
    #[default]
    Batch,
}

/// Everything a compiled operator needs from its query: CPU accounting,
/// resource governance, and the execution mode stop-and-go operators
/// consume their inputs with. Cloning shares the first two.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Simulated-CPU and fallback counters for the query.
    pub counters: SharedCounters,
    /// The query's resource governor.
    pub governor: ResourceGovernor,
    /// Whether blocking operators (hash-join build, sort ingest) pull
    /// their inputs tuple-at-a-time or batched. Streaming operators follow
    /// whichever interface the root drain drives; this field lets the ones
    /// that consume inputs *inside `open()`* batch too.
    pub mode: ExecMode,
    /// Degree of intra-query parallelism: how many worker threads an
    /// exchange-parallel operator (morsel scan, partitioned hash join,
    /// parallel sort) may use. `1` (the default) compiles the classic
    /// serial operators; parallel workers always run their own subtrees
    /// with `dop = 1`.
    pub dop: usize,
    /// Per-operator span collector, `None` (the default) when tracing is
    /// disabled. With a tracer, [`crate::compile_plan`] opens a span per
    /// plan node and wraps its operator in a [`crate::TracedExec`]; the
    /// untraced compile path is unchanged.
    pub tracer: Option<Arc<crate::trace::Tracer>>,
    /// The span the next compiled node nests under ([`None`] at the plan
    /// root). Maintained by the compiler, not by callers.
    pub span_parent: Option<crate::trace::SpanId>,
    /// Mid-query re-optimization state, `None` (the default) when
    /// re-optimization is disabled. With state, [`crate::compile_plan`]
    /// substitutes retained intermediates for their plan nodes, attaches
    /// checkpoint probes to pipeline breakers, and choose-plan operators
    /// arbitrate with the checkpoint observations applied.
    pub reopt: Option<Arc<crate::reopt::ReoptState>>,
}

impl ExecContext {
    /// A context around `counters` with an unlimited governor and the
    /// default (batch) mode.
    #[must_use]
    pub fn new(counters: SharedCounters) -> ExecContext {
        ExecContext {
            counters,
            governor: ResourceGovernor::unlimited(),
            mode: ExecMode::default(),
            dop: 1,
            tracer: None,
            span_parent: None,
            reopt: None,
        }
    }

    /// A context around `counters` enforcing `limits`.
    #[must_use]
    pub fn with_limits(counters: SharedCounters, limits: ResourceLimits) -> ExecContext {
        ExecContext {
            counters,
            governor: ResourceGovernor::new(limits),
            mode: ExecMode::default(),
            dop: 1,
            tracer: None,
            span_parent: None,
            reopt: None,
        }
    }

    /// The same context with per-operator tracing enabled into `tracer`.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<crate::trace::Tracer>) -> ExecContext {
        self.tracer = Some(tracer);
        self
    }

    /// The same context with mid-query re-optimization enabled: compiled
    /// plans substitute retained intermediates, pipeline breakers fire
    /// checkpoint probes, and arbitrations apply checkpoint observations.
    #[must_use]
    pub fn with_reopt(mut self, reopt: Arc<crate::reopt::ReoptState>) -> ExecContext {
        self.reopt = Some(reopt);
        self
    }

    /// The same context with the initial span parent overridden, so a
    /// compiled subtree nests under an externally opened span (e.g. a
    /// shard's root span in a distributed trace).
    #[must_use]
    pub fn with_span_parent(mut self, parent: crate::trace::SpanId) -> ExecContext {
        self.span_parent = Some(parent);
        self
    }

    /// The same context with `mode` overridden.
    #[must_use]
    pub fn with_mode(mut self, mode: ExecMode) -> ExecContext {
        self.mode = mode;
        self
    }

    /// The same context with the degree of parallelism overridden (clamped
    /// to at least 1).
    #[must_use]
    pub fn with_dop(mut self, dop: usize) -> ExecContext {
        self.dop = dop.max(1);
        self
    }

    /// A clone of this context for one exchange worker: fresh private
    /// counters (merged back by the coordinator when the worker finishes),
    /// the *shared* governor (all workers draw on the one query grant and
    /// see the same cancellation flag), the same mode, and `dop = 1` so a
    /// worker's subtree never fans out again. The tracer (and span parent)
    /// carry over so a worker's subtree keeps recording spans.
    #[must_use]
    pub fn worker(&self) -> ExecContext {
        ExecContext {
            counters: SharedCounters::new(),
            governor: self.governor.clone(),
            mode: self.mode,
            dop: 1,
            tracer: self.tracer.clone(),
            span_parent: self.span_parent,
            reopt: self.reopt.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_reservations_enforce_the_grant() {
        let gov = ResourceGovernor::new(ResourceLimits {
            memory_bytes: Some(100),
            ..ResourceLimits::default()
        });
        gov.try_reserve_memory(60).unwrap();
        gov.try_reserve_memory(40).unwrap();
        let err = gov.try_reserve_memory(1).unwrap_err();
        assert_eq!(
            err,
            ExecError::ResourceExhausted(Resource::Memory { requested: 1, limit: 100 })
        );
        assert_eq!(gov.memory_used(), 100, "failed reservation not charged");
        gov.release_memory(60);
        gov.try_reserve_memory(30).unwrap();
        assert_eq!(gov.memory_peak(), 100);
    }

    #[test]
    fn row_and_io_budgets() {
        let gov = ResourceGovernor::new(ResourceLimits {
            max_rows: Some(3),
            max_io: Some(2),
            ..ResourceLimits::default()
        });
        for _ in 0..3 {
            gov.charge_rows(1).unwrap();
        }
        assert_eq!(
            gov.charge_rows(1).unwrap_err(),
            ExecError::ResourceExhausted(Resource::Rows { limit: 3 })
        );
        gov.charge_io(2).unwrap();
        assert_eq!(
            gov.charge_io(1).unwrap_err(),
            ExecError::ResourceExhausted(Resource::Io { limit: 2 })
        );
    }

    #[test]
    fn cancellation_is_seen_by_clones() {
        let gov = ResourceGovernor::unlimited();
        let clone = gov.clone();
        assert!(clone.check().is_ok());
        gov.cancel();
        assert!(gov.is_cancelled());
        assert_eq!(clone.check().unwrap_err(), ExecError::Cancelled);
    }

    #[test]
    fn zero_wall_clock_deadline_trips_first_check() {
        let gov = ResourceGovernor::new(ResourceLimits {
            wall_clock_ms: Some(0),
            ..ResourceLimits::default()
        });
        std::thread::sleep(std::time::Duration::from_millis(2));
        // Tick 0 always reads the clock, so the very first check trips.
        assert_eq!(
            gov.check().unwrap_err(),
            ExecError::ResourceExhausted(Resource::WallClock { limit_ms: 0 })
        );
    }

    #[test]
    fn unlimited_governor_never_objects() {
        let gov = ResourceGovernor::unlimited();
        gov.try_reserve_memory(u64::MAX / 2).unwrap();
        gov.charge_rows(1_000_000).unwrap();
        gov.charge_io(1_000_000).unwrap();
        for _ in 0..200 {
            gov.check().unwrap();
        }
    }
}
