//! Execution accounting: CPU counters, fallback counts, and the combined
//! summary.

use std::sync::Arc;

use dqep_catalog::SystemConfig;
use dqep_storage::IoStats;
use parking_lot::Mutex;

/// CPU work counters, charged at the cost model's constants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuCounters {
    /// Records produced/consumed through operator pipelines.
    pub records: u64,
    /// Key comparisons (filters, merges, sorting).
    pub compares: u64,
    /// Records hashed (hash join build and probe).
    pub hashes: u64,
}

impl CpuCounters {
    /// Simulated CPU seconds under `config`.
    #[must_use]
    pub fn seconds(&self, config: &SystemConfig) -> f64 {
        self.records as f64 * config.cpu_per_record
            + self.compares as f64 * config.cpu_per_compare
            + self.hashes as f64 * config.cpu_per_hash
    }
}

/// Merging per-session counters into service-level totals. Each session
/// owns a private [`SharedCounters`]; a serving layer snapshots them at
/// completion and accumulates the snapshots, so concurrent queries never
/// bleed work into each other's accounting.
impl std::ops::AddAssign for CpuCounters {
    fn add_assign(&mut self, rhs: CpuCounters) {
        self.records += rhs.records;
        self.compares += rhs.compares;
        self.hashes += rhs.hashes;
    }
}

/// How an execution interacted with a prepared-query service's caches.
/// `None` in both fields means the query ran outside a service (the CLI's
/// single-shot path, the experiment harness, direct embedding).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheInfo {
    /// Whether the statement was found in the prepared-statement registry
    /// (`Some(true)`: parse + optimize were skipped entirely).
    pub statement_hit: Option<bool>,
    /// Whether the bind-time choose-plan arbitration was served from the
    /// decision cache (`Some(true)`: no cost functions were re-evaluated).
    pub decision_hit: Option<bool>,
}

impl PlanCacheInfo {
    /// Renders `hit`/`miss`/`-` per cache, for summary lines.
    #[must_use]
    pub fn describe(&self) -> String {
        let word = |o: Option<bool>| match o {
            Some(true) => "hit",
            Some(false) => "miss",
            None => "-",
        };
        format!(
            "statement {}, decision {}",
            word(self.statement_hit),
            word(self.decision_hit)
        )
    }
}

#[derive(Debug, Default)]
struct CountersInner {
    cpu: CpuCounters,
    fallbacks: u64,
}

/// Shared, thread-safe counters cloned into every operator of one query.
#[derive(Debug, Clone, Default)]
pub struct SharedCounters {
    inner: Arc<Mutex<CountersInner>>,
}

impl SharedCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> SharedCounters {
        SharedCounters::default()
    }

    /// Adds produced records.
    pub fn add_records(&self, n: u64) {
        self.inner.lock().cpu.records += n;
    }

    /// Adds comparisons.
    pub fn add_compares(&self, n: u64) {
        self.inner.lock().cpu.compares += n;
    }

    /// Adds hash operations.
    pub fn add_hashes(&self, n: u64) {
        self.inner.lock().cpu.hashes += n;
    }

    /// Records choose-plan fallbacks (an alternative failed retryably and
    /// a different one was tried).
    pub fn add_fallbacks(&self, n: u64) {
        self.inner.lock().fallbacks += n;
    }

    /// Fallbacks recorded so far.
    #[must_use]
    pub fn fallbacks(&self) -> u64 {
        self.inner.lock().fallbacks
    }

    /// Snapshot of the CPU counters.
    #[must_use]
    pub fn snapshot(&self) -> CpuCounters {
        self.inner.lock().cpu
    }

    /// Folds another counter set into this one — how an exchange
    /// coordinator merges its workers' private counters back into the
    /// query's counters after the parallel phase, so [`ExecSummary`]
    /// totals are exact regardless of the degree of parallelism.
    pub fn merge_from(&self, other: &SharedCounters) {
        let (cpu, fallbacks) = {
            let o = other.inner.lock();
            (o.cpu, o.fallbacks)
        };
        let mut inner = self.inner.lock();
        inner.cpu += cpu;
        inner.fallbacks += fallbacks;
    }
}

/// The result of executing one plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecSummary {
    /// Result rows produced.
    pub rows: u64,
    /// CPU counters accumulated.
    pub cpu: CpuCounters,
    /// I/O performed (query only; excludes load).
    pub io: IoStats,
    /// Choose-plan fallbacks taken (0 when the preferred alternative ran).
    pub fallbacks: u64,
    /// Plan-cache provenance when executed through a prepared-query
    /// service (defaults to "not via a service").
    pub plan_cache: PlanCacheInfo,
}

impl ExecSummary {
    /// Total simulated seconds (CPU + I/O) under `config` — directly
    /// comparable to the optimizer's predicted cost.
    #[must_use]
    pub fn simulated_seconds(&self, config: &SystemConfig) -> f64 {
        self.cpu.seconds(config) + self.io.seconds(config)
    }

    /// Folds another summary's work into this one (rows, CPU, I/O,
    /// fallbacks). Cache provenance is per-execution and not merged.
    pub fn accumulate(&mut self, other: &ExecSummary) {
        self.rows += other.rows;
        self.cpu += other.cpu;
        self.io += other.io;
        self.fallbacks += other.fallbacks;
    }

    /// The one summary line: rows, simulated time, I/O breakdown,
    /// fallbacks (only when any were taken), and plan-cache provenance.
    /// Both CLI paths (`--run` and `--serve`) print executions through
    /// this renderer, so the formats cannot drift apart again.
    #[must_use]
    pub fn describe(&self, config: &SystemConfig) -> String {
        use std::fmt::Write as _;
        let mut line = format!(
            "{} rows, {:.4}s simulated ({} seq + {} random reads, {} writes)",
            self.rows,
            self.simulated_seconds(config),
            self.io.seq_reads,
            self.io.random_reads,
            self.io.writes,
        );
        if self.fallbacks > 0 {
            let _ = write!(line, ", {} fallback(s)", self.fallbacks);
        }
        let _ = write!(line, ", plan cache: {}", self.plan_cache.describe());
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_convert() {
        let shared = SharedCounters::new();
        shared.add_records(100);
        shared.add_compares(50);
        shared.add_hashes(10);
        shared.add_records(1);
        let snap = shared.snapshot();
        assert_eq!(snap.records, 101);
        let cfg = SystemConfig::paper_1994();
        let expected = 101.0 * cfg.cpu_per_record + 50.0 * cfg.cpu_per_compare + 10.0 * cfg.cpu_per_hash;
        assert!((snap.seconds(&cfg) - expected).abs() < 1e-15);
    }

    #[test]
    fn fallbacks_tracked_separately() {
        let shared = SharedCounters::new();
        assert_eq!(shared.fallbacks(), 0);
        shared.add_fallbacks(1);
        shared.add_fallbacks(2);
        assert_eq!(shared.fallbacks(), 3);
        assert_eq!(shared.snapshot(), CpuCounters::default());
    }

    #[test]
    fn summary_combines_cpu_and_io() {
        let cfg = SystemConfig::paper_1994();
        let s = ExecSummary {
            rows: 5,
            cpu: CpuCounters { records: 10, compares: 0, hashes: 0 },
            io: IoStats { seq_reads: 100, random_reads: 0, writes: 0 },
            ..ExecSummary::default()
        };
        let expected = 10.0 * cfg.cpu_per_record + 100.0 * cfg.seq_page_io;
        assert!((s.simulated_seconds(&cfg) - expected).abs() < 1e-15);
    }

    #[test]
    fn summaries_accumulate_without_merging_provenance() {
        let mut total = ExecSummary::default();
        let a = ExecSummary {
            rows: 5,
            cpu: CpuCounters { records: 10, compares: 2, hashes: 1 },
            io: IoStats { seq_reads: 3, random_reads: 1, writes: 0 },
            fallbacks: 1,
            plan_cache: PlanCacheInfo { statement_hit: Some(true), decision_hit: Some(false) },
        };
        total.accumulate(&a);
        total.accumulate(&a);
        assert_eq!(total.rows, 10);
        assert_eq!(total.cpu, CpuCounters { records: 20, compares: 4, hashes: 2 });
        assert_eq!(total.io.total(), 8);
        assert_eq!(total.fallbacks, 2);
        assert_eq!(total.plan_cache, PlanCacheInfo::default(), "provenance not merged");
    }

    #[test]
    fn plan_cache_info_describes_states() {
        assert_eq!(PlanCacheInfo::default().describe(), "statement -, decision -");
        let info = PlanCacheInfo { statement_hit: Some(true), decision_hit: Some(false) };
        assert_eq!(info.describe(), "statement hit, decision miss");
    }
}
