//! Execution accounting: CPU counters, fallback counts, and the combined
//! summary.

use std::sync::Arc;

use dqep_catalog::SystemConfig;
use dqep_storage::IoStats;
use parking_lot::Mutex;

/// CPU work counters, charged at the cost model's constants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuCounters {
    /// Records produced/consumed through operator pipelines.
    pub records: u64,
    /// Key comparisons (filters, merges, sorting).
    pub compares: u64,
    /// Records hashed (hash join build and probe).
    pub hashes: u64,
}

impl CpuCounters {
    /// Simulated CPU seconds under `config`.
    #[must_use]
    pub fn seconds(&self, config: &SystemConfig) -> f64 {
        self.records as f64 * config.cpu_per_record
            + self.compares as f64 * config.cpu_per_compare
            + self.hashes as f64 * config.cpu_per_hash
    }
}

#[derive(Debug, Default)]
struct CountersInner {
    cpu: CpuCounters,
    fallbacks: u64,
}

/// Shared, thread-safe counters cloned into every operator of one query.
#[derive(Debug, Clone, Default)]
pub struct SharedCounters {
    inner: Arc<Mutex<CountersInner>>,
}

impl SharedCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> SharedCounters {
        SharedCounters::default()
    }

    /// Adds produced records.
    pub fn add_records(&self, n: u64) {
        self.inner.lock().cpu.records += n;
    }

    /// Adds comparisons.
    pub fn add_compares(&self, n: u64) {
        self.inner.lock().cpu.compares += n;
    }

    /// Adds hash operations.
    pub fn add_hashes(&self, n: u64) {
        self.inner.lock().cpu.hashes += n;
    }

    /// Records choose-plan fallbacks (an alternative failed retryably and
    /// a different one was tried).
    pub fn add_fallbacks(&self, n: u64) {
        self.inner.lock().fallbacks += n;
    }

    /// Fallbacks recorded so far.
    #[must_use]
    pub fn fallbacks(&self) -> u64 {
        self.inner.lock().fallbacks
    }

    /// Snapshot of the CPU counters.
    #[must_use]
    pub fn snapshot(&self) -> CpuCounters {
        self.inner.lock().cpu
    }
}

/// The result of executing one plan.
#[derive(Debug, Clone, Copy)]
pub struct ExecSummary {
    /// Result rows produced.
    pub rows: u64,
    /// CPU counters accumulated.
    pub cpu: CpuCounters,
    /// I/O performed (query only; excludes load).
    pub io: IoStats,
    /// Choose-plan fallbacks taken (0 when the preferred alternative ran).
    pub fallbacks: u64,
}

impl ExecSummary {
    /// Total simulated seconds (CPU + I/O) under `config` — directly
    /// comparable to the optimizer's predicted cost.
    #[must_use]
    pub fn simulated_seconds(&self, config: &SystemConfig) -> f64 {
        self.cpu.seconds(config) + self.io.seconds(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_convert() {
        let shared = SharedCounters::new();
        shared.add_records(100);
        shared.add_compares(50);
        shared.add_hashes(10);
        shared.add_records(1);
        let snap = shared.snapshot();
        assert_eq!(snap.records, 101);
        let cfg = SystemConfig::paper_1994();
        let expected = 101.0 * cfg.cpu_per_record + 50.0 * cfg.cpu_per_compare + 10.0 * cfg.cpu_per_hash;
        assert!((snap.seconds(&cfg) - expected).abs() < 1e-15);
    }

    #[test]
    fn fallbacks_tracked_separately() {
        let shared = SharedCounters::new();
        assert_eq!(shared.fallbacks(), 0);
        shared.add_fallbacks(1);
        shared.add_fallbacks(2);
        assert_eq!(shared.fallbacks(), 3);
        assert_eq!(shared.snapshot(), CpuCounters::default());
    }

    #[test]
    fn summary_combines_cpu_and_io() {
        let cfg = SystemConfig::paper_1994();
        let s = ExecSummary {
            rows: 5,
            cpu: CpuCounters { records: 10, compares: 0, hashes: 0 },
            io: IoStats { seq_reads: 100, random_reads: 0, writes: 0 },
            fallbacks: 0,
        };
        let expected = 10.0 * cfg.cpu_per_record + 100.0 * cfg.seq_page_io;
        assert!((s.simulated_seconds(&cfg) - expected).abs() < 1e-15);
    }
}
