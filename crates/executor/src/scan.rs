//! Data-retrieval operators: File-Scan, B-tree-Scan, Filter-B-tree-Scan.

use dqep_storage::{Rid, SlottedPage, StoredTable};

use crate::error::ExecError;
use crate::governor::ExecContext;
use crate::tuple::{Tuple, TupleLayout};
use crate::Operator;

/// Sequential scan of a base table (accounted as sequential page reads).
pub struct FileScanExec<'a> {
    table: &'a StoredTable,
    layout: TupleLayout,
    ctx: ExecContext,
    page_idx: usize,
    buffer: Vec<Tuple>,
    buffer_pos: usize,
}

impl<'a> FileScanExec<'a> {
    /// Creates a scan over `table`.
    #[must_use]
    pub fn new(table: &'a StoredTable, layout: TupleLayout, ctx: ExecContext) -> Self {
        FileScanExec {
            table,
            layout,
            ctx,
            page_idx: 0,
            buffer: Vec::new(),
            buffer_pos: 0,
        }
    }
}

impl Operator for FileScanExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.page_idx = 0;
        self.buffer.clear();
        self.buffer_pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        loop {
            self.ctx.governor.check()?;
            if self.buffer_pos < self.buffer.len() {
                let t = self.buffer[self.buffer_pos].clone();
                self.buffer_pos += 1;
                self.ctx.counters.add_records(1);
                return Ok(Some(t));
            }
            let pages = self.table.heap.pages();
            if self.page_idx >= pages.len() {
                return Ok(None);
            }
            self.ctx.governor.charge_io(1)?;
            let page = SlottedPage::from_bytes(self.table.heap.disk().read(pages[self.page_idx])?);
            self.page_idx += 1;
            self.buffer = page.iter().map(|r| self.table.decode(r)).collect();
            self.buffer_pos = 0;
        }
    }

    fn close(&mut self) {
        self.buffer.clear();
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }
}

/// Full scan through an unclustered B-tree: delivers key order, at the
/// cost of one random record fetch per entry — the trade the optimizer
/// reasons about when an interesting order is requested.
pub struct BtreeScanExec<'a> {
    table: &'a StoredTable,
    index: dqep_catalog::IndexId,
    layout: TupleLayout,
    ctx: ExecContext,
    rids: std::vec::IntoIter<Rid>,
}

impl<'a> BtreeScanExec<'a> {
    /// Creates a full index scan.
    #[must_use]
    pub fn new(
        table: &'a StoredTable,
        index: dqep_catalog::IndexId,
        layout: TupleLayout,
        ctx: ExecContext,
    ) -> Self {
        BtreeScanExec {
            table,
            index,
            layout,
            ctx,
            rids: Vec::new().into_iter(),
        }
    }
}

impl Operator for BtreeScanExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        let tree = &self.table.indexes[&self.index];
        let mut rids = Vec::with_capacity(tree.len() as usize);
        tree.scan_all(|_, rid| rids.push(rid))?;
        self.rids = rids.into_iter();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        self.ctx.governor.check()?;
        let Some(rid) = self.rids.next() else {
            return Ok(None);
        };
        self.ctx.governor.charge_io(1)?;
        let record = self.table.heap.fetch(rid)?;
        self.ctx.counters.add_records(1);
        Ok(Some(self.table.decode(&record)))
    }

    fn close(&mut self) {
        self.rids = Vec::new().into_iter();
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }
}

/// Combined retrieval + selection through a B-tree range probe
/// (Filter-B-tree-Scan): descends once and touches only qualifying keys.
pub struct FilterBtreeScanExec<'a> {
    table: &'a StoredTable,
    index: dqep_catalog::IndexId,
    /// Inclusive key range derived from the (bound) predicate.
    range: (Option<i64>, Option<i64>),
    layout: TupleLayout,
    ctx: ExecContext,
    rids: std::vec::IntoIter<Rid>,
}

impl<'a> FilterBtreeScanExec<'a> {
    /// Creates a range probe over `[lo, hi]` (inclusive bounds).
    #[must_use]
    pub fn new(
        table: &'a StoredTable,
        index: dqep_catalog::IndexId,
        range: (Option<i64>, Option<i64>),
        layout: TupleLayout,
        ctx: ExecContext,
    ) -> Self {
        FilterBtreeScanExec {
            table,
            index,
            range,
            layout,
            ctx,
            rids: Vec::new().into_iter(),
        }
    }
}

impl Operator for FilterBtreeScanExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        let tree = &self.table.indexes[&self.index];
        self.rids = tree.range(self.range.0, self.range.1)?.into_iter();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        self.ctx.governor.check()?;
        let Some(rid) = self.rids.next() else {
            return Ok(None);
        };
        self.ctx.governor.charge_io(1)?;
        let record = self.table.heap.fetch(rid)?;
        self.ctx.counters.add_records(1);
        Ok(Some(self.table.decode(&record)))
    }

    fn close(&mut self) {
        self.rids = Vec::new().into_iter();
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }
}
