//! Data-retrieval operators: File-Scan, B-tree-Scan, Filter-B-tree-Scan,
//! and the morsel-driven scan worker backing the parallel file scan.

use std::ops::Range;
use std::sync::Arc;

use dqep_storage::{PageClaims, Rid, SlottedPage, StoredTable};

use crate::batch::RowBatch;
use crate::error::ExecError;
use crate::governor::ExecContext;
use crate::tuple::{Tuple, TupleLayout};
use crate::Operator;

/// Sequential scan of a base table (accounted as sequential page reads).
pub struct FileScanExec<'a> {
    table: &'a StoredTable,
    layout: TupleLayout,
    ctx: ExecContext,
    page_idx: usize,
    buffer: Vec<Tuple>,
    buffer_pos: usize,
    /// Error hit while a batch already held decoded rows; surfaced on the
    /// next call so the partial batch is delivered (and counted) first —
    /// exactly where the tuple path would deliver those rows.
    pending_err: Option<ExecError>,
}

impl<'a> FileScanExec<'a> {
    /// Creates a scan over `table`.
    #[must_use]
    pub fn new(table: &'a StoredTable, layout: TupleLayout, ctx: ExecContext) -> Self {
        FileScanExec {
            table,
            layout,
            ctx,
            page_idx: 0,
            buffer: Vec::new(),
            buffer_pos: 0,
            pending_err: None,
        }
    }
}

impl Operator for FileScanExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.page_idx = 0;
        self.buffer.clear();
        self.buffer_pos = 0;
        self.pending_err = None;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if let Some(e) = self.pending_err.take() {
            return Err(e);
        }
        loop {
            self.ctx.governor.check()?;
            if self.buffer_pos < self.buffer.len() {
                let t = self.buffer[self.buffer_pos].clone();
                self.buffer_pos += 1;
                self.ctx.counters.add_records(1);
                return Ok(Some(t));
            }
            let pages = self.table.heap.pages();
            if self.page_idx >= pages.len() {
                return Ok(None);
            }
            self.ctx.governor.charge_io(1)?;
            let page = SlottedPage::from_bytes(self.table.heap.disk().read(pages[self.page_idx])?);
            self.page_idx += 1;
            self.buffer = page.iter().map(|r| self.table.decode(r)).collect();
            self.buffer_pos = 0;
        }
    }

    /// Native batch scan: decodes whole pages straight into the batch's
    /// contiguous storage — no per-row allocation, one governor check and
    /// one record-counter update per batch, I/O charged per page exactly
    /// as the tuple path charges it (so fault injection and I/O budgets
    /// trip at identical points).
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>, ExecError> {
        if let Some(e) = self.pending_err.take() {
            return Err(e);
        }
        let mut batch = RowBatch::with_capacity(self.layout.width(), max_rows);
        // Leftover rows first: a partially drained page buffer, from an
        // earlier tuple-wise call or a previous batch's page tail.
        while self.buffer_pos < self.buffer.len() && batch.rows() < max_rows {
            batch.push_row(&self.buffer[self.buffer_pos]);
            self.buffer_pos += 1;
        }
        if self.buffer_pos >= self.buffer.len() {
            self.buffer.clear();
            self.buffer_pos = 0;
        }
        while batch.rows() < max_rows && self.buffer.is_empty() {
            let pages = self.table.heap.pages();
            if self.page_idx >= pages.len() {
                break;
            }
            let read = self
                .ctx
                .governor
                .charge_io(1)
                .and_then(|()| Ok(self.table.heap.disk().read(pages[self.page_idx])?));
            let bytes = match read {
                Ok(bytes) => bytes,
                Err(e) if batch.rows() > 0 => {
                    self.pending_err = Some(e);
                    break;
                }
                Err(e) => return Err(e),
            };
            let page = SlottedPage::from_bytes(bytes);
            self.page_idx += 1;
            let records: Vec<&[u8]> = page.iter().collect();
            let take = records.len().min(max_rows - batch.rows());
            batch.extend_rows_with(take, |cols| {
                self.table.decode_columns_into(&records[..take], cols);
            });
            for record in &records[take..] {
                // Page tail past the request: deliver it next call.
                self.buffer.push(self.table.decode(record));
            }
        }
        let rows = batch.rows();
        if rows == 0 {
            return Ok(None);
        }
        self.ctx.governor.check_batch(rows as u64)?;
        self.ctx.counters.add_records(rows as u64);
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.buffer.clear();
        self.buffer_pos = 0;
        self.pending_err = None;
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }

    fn estimated_rows(&self) -> Option<u64> {
        Some(self.table.heap.record_count())
    }
}

/// One worker of the partition-parallel file scan: claims page-range
/// morsels from a shared [`PageClaims`] dispenser and scans only the pages
/// it claims. The exchange operator runs `ctx.dop` of these over one
/// dispenser; together they read each page exactly once, charging I/O and
/// record counters exactly as the serial [`FileScanExec`] does — totals
/// are independent of how threads interleave.
pub struct MorselScanExec<'a> {
    table: &'a StoredTable,
    layout: TupleLayout,
    ctx: ExecContext,
    claims: Arc<PageClaims>,
    /// Page indexes of the current morsel not yet read.
    current: Range<usize>,
    buffer: Vec<Tuple>,
    buffer_pos: usize,
    /// Error hit while a batch already held decoded rows; surfaced on the
    /// next call (same deferral contract as [`FileScanExec`]).
    pending_err: Option<ExecError>,
}

impl<'a> MorselScanExec<'a> {
    /// Creates one scan worker over `table`, drawing morsels from `claims`.
    #[must_use]
    pub fn new(
        table: &'a StoredTable,
        layout: TupleLayout,
        ctx: ExecContext,
        claims: Arc<PageClaims>,
    ) -> Self {
        MorselScanExec {
            table,
            layout,
            ctx,
            claims,
            current: 0..0,
            buffer: Vec::new(),
            buffer_pos: 0,
            pending_err: None,
        }
    }

    /// The next page index this worker should read, claiming a fresh
    /// morsel when the current one is exhausted.
    fn next_page(&mut self) -> Option<usize> {
        loop {
            if let Some(idx) = self.current.next() {
                return Some(idx);
            }
            self.current = self.claims.claim()?;
        }
    }
}

impl Operator for MorselScanExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.buffer.clear();
        self.buffer_pos = 0;
        self.pending_err = None;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if let Some(e) = self.pending_err.take() {
            return Err(e);
        }
        loop {
            self.ctx.governor.check()?;
            if self.buffer_pos < self.buffer.len() {
                let t = self.buffer[self.buffer_pos].clone();
                self.buffer_pos += 1;
                self.ctx.counters.add_records(1);
                return Ok(Some(t));
            }
            let Some(page_idx) = self.next_page() else {
                return Ok(None);
            };
            let pages = self.table.heap.pages();
            self.ctx.governor.charge_io(1)?;
            let page = SlottedPage::from_bytes(self.table.heap.disk().read(pages[page_idx])?);
            self.buffer = page.iter().map(|r| self.table.decode(r)).collect();
            self.buffer_pos = 0;
        }
    }

    /// Native batch fill, mirroring [`FileScanExec::next_batch`]: decodes
    /// claimed pages straight into the batch, defers a mid-batch fault so
    /// already-decoded rows are delivered (and counted) first.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>, ExecError> {
        if let Some(e) = self.pending_err.take() {
            return Err(e);
        }
        let mut batch = RowBatch::with_capacity(self.layout.width(), max_rows);
        while self.buffer_pos < self.buffer.len() && batch.rows() < max_rows {
            batch.push_row(&self.buffer[self.buffer_pos]);
            self.buffer_pos += 1;
        }
        if self.buffer_pos >= self.buffer.len() {
            self.buffer.clear();
            self.buffer_pos = 0;
        }
        while batch.rows() < max_rows && self.buffer.is_empty() {
            let Some(page_idx) = self.next_page() else { break };
            let pages = self.table.heap.pages();
            let read = self
                .ctx
                .governor
                .charge_io(1)
                .and_then(|()| Ok(self.table.heap.disk().read(pages[page_idx])?));
            let bytes = match read {
                Ok(bytes) => bytes,
                Err(e) if batch.rows() > 0 => {
                    self.pending_err = Some(e);
                    break;
                }
                Err(e) => return Err(e),
            };
            let page = SlottedPage::from_bytes(bytes);
            let records: Vec<&[u8]> = page.iter().collect();
            let take = records.len().min(max_rows - batch.rows());
            batch.extend_rows_with(take, |cols| {
                self.table.decode_columns_into(&records[..take], cols);
            });
            for record in &records[take..] {
                self.buffer.push(self.table.decode(record));
            }
        }
        let rows = batch.rows();
        if rows == 0 {
            return Ok(None);
        }
        self.ctx.governor.check_batch(rows as u64)?;
        self.ctx.counters.add_records(rows as u64);
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.buffer.clear();
        self.buffer_pos = 0;
        self.pending_err = None;
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }

    fn estimated_rows(&self) -> Option<u64> {
        // Unknown: this worker produces only its share of the table, and
        // the share depends on run-time claim racing.
        None
    }
}

/// Full scan through an unclustered B-tree: delivers key order, at the
/// cost of one random record fetch per entry — the trade the optimizer
/// reasons about when an interesting order is requested.
pub struct BtreeScanExec<'a> {
    table: &'a StoredTable,
    index: dqep_catalog::IndexId,
    layout: TupleLayout,
    ctx: ExecContext,
    rids: std::vec::IntoIter<Rid>,
}

impl<'a> BtreeScanExec<'a> {
    /// Creates a full index scan.
    #[must_use]
    pub fn new(
        table: &'a StoredTable,
        index: dqep_catalog::IndexId,
        layout: TupleLayout,
        ctx: ExecContext,
    ) -> Self {
        BtreeScanExec {
            table,
            index,
            layout,
            ctx,
            rids: Vec::new().into_iter(),
        }
    }
}

impl Operator for BtreeScanExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        let tree = &self.table.indexes[&self.index];
        let mut rids = Vec::with_capacity(tree.len() as usize);
        tree.scan_all(|_, rid| rids.push(rid))?;
        self.rids = rids.into_iter();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        self.ctx.governor.check()?;
        let Some(rid) = self.rids.next() else {
            return Ok(None);
        };
        self.ctx.governor.charge_io(1)?;
        let record = self.table.heap.fetch(rid)?;
        self.ctx.counters.add_records(1);
        Ok(Some(self.table.decode(&record)))
    }

    fn close(&mut self) {
        self.rids = Vec::new().into_iter();
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }

    fn estimated_rows(&self) -> Option<u64> {
        // Exact after `open` (remaining rids); zero before.
        Some(self.rids.len() as u64)
    }
}

/// Combined retrieval + selection through a B-tree range probe
/// (Filter-B-tree-Scan): descends once and touches only qualifying keys.
pub struct FilterBtreeScanExec<'a> {
    table: &'a StoredTable,
    index: dqep_catalog::IndexId,
    /// Inclusive key range derived from the (bound) predicate.
    range: (Option<i64>, Option<i64>),
    layout: TupleLayout,
    ctx: ExecContext,
    rids: std::vec::IntoIter<Rid>,
}

impl<'a> FilterBtreeScanExec<'a> {
    /// Creates a range probe over `[lo, hi]` (inclusive bounds).
    #[must_use]
    pub fn new(
        table: &'a StoredTable,
        index: dqep_catalog::IndexId,
        range: (Option<i64>, Option<i64>),
        layout: TupleLayout,
        ctx: ExecContext,
    ) -> Self {
        FilterBtreeScanExec {
            table,
            index,
            range,
            layout,
            ctx,
            rids: Vec::new().into_iter(),
        }
    }
}

impl Operator for FilterBtreeScanExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        let tree = &self.table.indexes[&self.index];
        self.rids = tree.range(self.range.0, self.range.1)?.into_iter();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        self.ctx.governor.check()?;
        let Some(rid) = self.rids.next() else {
            return Ok(None);
        };
        self.ctx.governor.charge_io(1)?;
        let record = self.table.heap.fetch(rid)?;
        self.ctx.counters.add_records(1);
        Ok(Some(self.table.decode(&record)))
    }

    fn close(&mut self) {
        self.rids = Vec::new().into_iter();
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }

    fn estimated_rows(&self) -> Option<u64> {
        // Exact after `open` (remaining qualifying rids); zero before.
        Some(self.rids.len() as u64)
    }
}
