//! External sort with memory-bounded, governor-audited runs.

use dqep_storage::gen::{decode_record, encode_record};
use dqep_storage::{HeapFile, SimDisk};

use crate::batch::RowBatch;
use crate::error::ExecError;
use crate::exchange::run_parallel;
use crate::governor::{ExecContext, ExecMode};
use crate::tuple::{Tuple, TupleLayout};
use crate::{BoxedOperator, Operator};

/// Merges `rows`, consisting of consecutive sorted slices of length
/// `share` (the last possibly shorter), into one sorted vector by moving
/// tuples out (no clones). Used by the parallel chunk sort to combine the
/// slices the workers sorted independently.
fn merge_sorted_slices(rows: &mut [Tuple], share: usize, key: usize) -> Vec<Tuple> {
    let n = rows.len();
    let mut cursors: Vec<(usize, usize)> = (0..n)
        .step_by(share)
        .map(|s| (s, (s + share).min(n)))
        .collect();
    let mut out = Vec::with_capacity(n);
    loop {
        let mut best: Option<usize> = None;
        for (i, &(pos, end)) in cursors.iter().enumerate() {
            if pos < end {
                best = match best {
                    Some(b) if rows[cursors[b].0][key] <= rows[pos][key] => Some(b),
                    _ => Some(i),
                };
            }
        }
        let Some(b) = best else { break };
        let pos = cursors[b].0;
        out.push(std::mem::take(&mut rows[pos]));
        cursors[b].0 += 1;
    }
    out
}

/// Sorts its input ascending on one attribute position.
///
/// Inputs fitting the memory grant are sorted in place; larger inputs are
/// cut into sorted runs spilled to accounted temporary files and merged —
/// one extra write + read pass over the data, matching the cost model's
/// `2 × pages × passes` charge (the experiments' inputs need at most one
/// merge pass at the minimum 16-page grant).
///
/// Buffered rows are *reserved* with the query's resource governor before
/// they are held, so a grant the governor refuses to cover surfaces as
/// [`ExecError::ResourceExhausted`] from `open` instead of silently
/// exceeding the limit. Run formation is governed; the merge pass streams
/// runs through fixed-size decode buffers the simulator does not charge
/// (the classic "one page per run" merge assumption).
pub struct SortExec<'a> {
    input: BoxedOperator<'a>,
    key: usize,
    ctx: ExecContext,
    disk: SimDisk,
    budget_bytes: usize,
    /// Bytes currently reserved with the governor; released in `close`.
    reserved: u64,
    output: std::vec::IntoIter<Tuple>,
    /// Mid-query re-optimization probe, fired once per `open` with the
    /// input's actual cardinality when ingest completes.
    checkpoint: Option<crate::reopt::ReoptProbe>,
}

impl<'a> SortExec<'a> {
    /// Creates a sort on attribute position `key`.
    #[must_use]
    pub fn new(
        input: BoxedOperator<'a>,
        key: usize,
        ctx: ExecContext,
        disk: SimDisk,
        budget_bytes: usize,
    ) -> Self {
        SortExec {
            input,
            key,
            ctx,
            disk,
            budget_bytes,
            reserved: 0,
            output: Vec::new().into_iter(),
            checkpoint: None,
        }
    }

    /// Attaches a re-optimization checkpoint probe to the ingest phase.
    pub(crate) fn with_checkpoint(mut self, probe: crate::reopt::ReoptProbe) -> Self {
        self.checkpoint = Some(probe);
        self
    }

    fn charge_sort_cpu(&self, n: usize) {
        if n > 1 {
            let compares = (n as f64 * (n as f64).log2()).ceil() as u64;
            self.ctx.counters.add_compares(compares);
        }
    }

    fn reserve(&mut self, bytes: u64) -> Result<(), ExecError> {
        self.ctx.governor.try_reserve_memory(bytes)?;
        self.reserved += bytes;
        Ok(())
    }

    fn release(&mut self, bytes: u64) {
        self.ctx.governor.release_memory(bytes);
        self.reserved -= bytes;
    }

    /// Sorts one buffered chunk, charging the cost model's `n·log₂(n)`
    /// compare formula. `sort_unstable_by_key` (in-place pattern-defeating
    /// quicksort): the key is a single `i64`, so stability buys nothing,
    /// and the unstable sort avoids the stable sort's allocation and
    /// merge passes. With `ctx.dop > 1` and a chunk worth splitting, the
    /// chunk is cut into `dop` slices sorted on worker threads and merged
    /// back — parallel run generation. Compare accounting is the same
    /// formula either way, so counters stay DOP-independent.
    fn sort_rows(&self, rows: &mut Vec<Tuple>) {
        let key = self.key;
        self.charge_sort_cpu(rows.len());
        let dop = self.ctx.dop.max(1);
        if dop <= 1 || rows.len() < dop * 2 {
            rows.sort_unstable_by_key(|t| t[key]);
            return;
        }
        let share = rows.len().div_ceil(dop);
        let tasks: Vec<_> = rows
            .chunks_mut(share)
            .map(|slice| {
                move || {
                    slice.sort_unstable_by_key(|t| t[key]);
                    Ok(())
                }
            })
            .collect();
        // Slice sorting is pure CPU: the tasks are infallible.
        run_parallel::<(), _>(tasks);
        *rows = merge_sorted_slices(rows, share, key);
    }

    /// Sorts `chunk` and spills it to a fresh accounted run, releasing its
    /// memory reservation.
    fn spill_chunk(
        &mut self,
        chunk: &mut Vec<Tuple>,
        runs: &mut Vec<HeapFile>,
        row_bytes: usize,
    ) -> Result<(), ExecError> {
        self.sort_rows(chunk);
        let mut run = HeapFile::new_temp(self.disk.clone());
        for row in chunk.iter() {
            run.append(&encode_record(row, row_bytes))?;
        }
        run.finish()?;
        runs.push(run);
        self.release((chunk.len() * row_bytes) as u64);
        chunk.clear();
        Ok(())
    }

    /// Consumes the (already open) input and leaves sorted rows in
    /// `self.output`.
    fn fill(&mut self) -> Result<(), ExecError> {
        let row_bytes = self.input.layout().row_bytes;
        let width = self.input.layout().width();
        let budget_rows = (self.budget_bytes / row_bytes).max(1);
        let key = self.key;

        // Run formation: buffer up to one memory grant of rows; on
        // overflow, sort the buffered chunk and spill it as a run. Rows
        // are *reserved* per row in both modes — the spill bound (never
        // more than one grant of rows resident) is part of the memory
        // contract, so batch ingest must not reserve a whole batch ahead.
        let mut chunk: Vec<Tuple> = Vec::new();
        let mut runs: Vec<HeapFile> = Vec::new();
        let mut ingested: u64 = 0;
        if self.ctx.mode == ExecMode::Batch {
            loop {
                // Request at most one row past what the memory limit still
                // covers, so a refused reservation trips at the same input
                // row as the tuple path (the producer never over-produces
                // past the first refusable row).
                let req = self.ctx.governor.ingest_batch_rows(row_bytes);
                let Some(batch) = self.input.next_batch(req)? else { break };
                self.ctx.governor.check_batch(batch.len() as u64)?;
                ingested += batch.len() as u64;
                for row in &batch {
                    if chunk.len() >= budget_rows {
                        self.spill_chunk(&mut chunk, &mut runs, row_bytes)?;
                    }
                    self.reserve(row_bytes as u64)?;
                    chunk.push(row.to_vec());
                }
            }
        } else {
            while let Some(t) = self.input.next()? {
                self.ctx.governor.check()?;
                ingested += 1;
                if chunk.len() >= budget_rows {
                    self.spill_chunk(&mut chunk, &mut runs, row_bytes)?;
                }
                self.reserve(row_bytes as u64)?;
                chunk.push(t);
            }
        }

        // Ingest completion is a pipeline breaker: the input's true
        // cardinality is now known exactly.
        if let Some(probe) = &self.checkpoint {
            probe.observe(ingested);
        }

        if runs.is_empty() {
            // Everything fit the grant: sort in place. The reservation is
            // held until `close` — the rows really are resident.
            self.sort_rows(&mut chunk);
            self.output = chunk.into_iter();
            return Ok(());
        }

        // The tail chunk becomes the final run.
        if !chunk.is_empty() {
            self.spill_chunk(&mut chunk, &mut runs, row_bytes)?;
        }

        // Merge pass: read runs back (accounted) and k-way merge. Compares
        // are charged by the cost model's `n·log₂(k)` selection-tree
        // formula rather than counted in the loop: the loop's actual count
        // depends on how the runs' key ranges interleave, and run
        // *composition* is arrival-order dependent under an exchange — a
        // per-head count would make the total DOP-sensitive. Run count and
        // total rows are fixed by the memory grant, so the formula keeps
        // the counters DOP-exact (and sums with the per-run charges to the
        // model's `n·log₂(n)`).
        let mut streams: Vec<std::vec::IntoIter<Tuple>> = Vec::with_capacity(runs.len());
        let mut total_rows = 0u64;
        for run in &runs {
            let mut rows = Vec::new();
            for record in run.scan() {
                rows.push(decode_record(&record?, width));
            }
            total_rows += rows.len() as u64;
            streams.push(rows.into_iter());
        }
        if total_rows > 0 && streams.len() > 1 {
            let merge_compares =
                (total_rows as f64 * (streams.len() as f64).log2()).ceil() as u64;
            self.ctx.counters.add_compares(merge_compares);
        }
        let mut heads: Vec<Option<Tuple>> = streams.iter_mut().map(Iterator::next).collect();
        let mut merged = Vec::new();
        loop {
            let mut best: Option<(usize, i64)> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some(t) = head {
                    let k = t[key];
                    if best.is_none_or(|(_, bk)| k < bk) {
                        best = Some((i, k));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            if let Some(t) = heads[i].take() {
                merged.push(t);
            }
            heads[i] = streams[i].next();
        }
        self.output = merged.into_iter();
        Ok(())
    }
}

impl Operator for SortExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.input.open()?;
        let result = self.fill();
        self.input.close();
        result
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        self.ctx.governor.check()?;
        let Some(t) = self.output.next() else {
            return Ok(None);
        };
        self.ctx.counters.add_records(1);
        Ok(Some(t))
    }

    /// Native batch emission from the sorted buffer: one governor check
    /// and one counter update per batch.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>, ExecError> {
        let mut batch = RowBatch::with_capacity(self.input.layout().width(), max_rows);
        while batch.rows() < max_rows {
            let Some(t) = self.output.next() else { break };
            batch.push_row(&t);
        }
        let rows = batch.rows();
        if rows == 0 {
            return Ok(None);
        }
        self.ctx.governor.check_batch(rows as u64)?;
        self.ctx.counters.add_records(rows as u64);
        Ok(Some(batch))
    }

    fn close(&mut self) {
        if self.reserved > 0 {
            self.ctx.governor.release_memory(self.reserved);
            self.reserved = 0;
        }
        self.output = Vec::new().into_iter();
    }

    fn layout(&self) -> &TupleLayout {
        self.input.layout()
    }

    fn estimated_rows(&self) -> Option<u64> {
        // Exact after `open`: the sorted buffer's remaining length.
        Some(self.output.len() as u64)
    }
}
