//! External sort with memory-bounded, governor-audited runs.

use dqep_storage::gen::{decode_record, encode_record};
use dqep_storage::{HeapFile, SimDisk};

use crate::error::ExecError;
use crate::governor::ExecContext;
use crate::tuple::{Tuple, TupleLayout};
use crate::Operator;

/// Sorts its input ascending on one attribute position.
///
/// Inputs fitting the memory grant are sorted in place; larger inputs are
/// cut into sorted runs spilled to accounted temporary files and merged —
/// one extra write + read pass over the data, matching the cost model's
/// `2 × pages × passes` charge (the experiments' inputs need at most one
/// merge pass at the minimum 16-page grant).
///
/// Buffered rows are *reserved* with the query's resource governor before
/// they are held, so a grant the governor refuses to cover surfaces as
/// [`ExecError::ResourceExhausted`] from `open` instead of silently
/// exceeding the limit. Run formation is governed; the merge pass streams
/// runs through fixed-size decode buffers the simulator does not charge
/// (the classic "one page per run" merge assumption).
pub struct SortExec<'a> {
    input: Box<dyn Operator + 'a>,
    key: usize,
    ctx: ExecContext,
    disk: SimDisk,
    budget_bytes: usize,
    /// Bytes currently reserved with the governor; released in `close`.
    reserved: u64,
    output: std::vec::IntoIter<Tuple>,
}

impl<'a> SortExec<'a> {
    /// Creates a sort on attribute position `key`.
    #[must_use]
    pub fn new(
        input: Box<dyn Operator + 'a>,
        key: usize,
        ctx: ExecContext,
        disk: SimDisk,
        budget_bytes: usize,
    ) -> Self {
        SortExec {
            input,
            key,
            ctx,
            disk,
            budget_bytes,
            reserved: 0,
            output: Vec::new().into_iter(),
        }
    }

    fn charge_sort_cpu(&self, n: usize) {
        if n > 1 {
            let compares = (n as f64 * (n as f64).log2()).ceil() as u64;
            self.ctx.counters.add_compares(compares);
        }
    }

    fn reserve(&mut self, bytes: u64) -> Result<(), ExecError> {
        self.ctx.governor.try_reserve_memory(bytes)?;
        self.reserved += bytes;
        Ok(())
    }

    fn release(&mut self, bytes: u64) {
        self.ctx.governor.release_memory(bytes);
        self.reserved -= bytes;
    }

    /// Consumes the (already open) input and leaves sorted rows in
    /// `self.output`.
    fn fill(&mut self) -> Result<(), ExecError> {
        let row_bytes = self.input.layout().row_bytes;
        let width = self.input.layout().width();
        let budget_rows = (self.budget_bytes / row_bytes).max(1);
        let key = self.key;

        // Run formation: buffer up to one memory grant of rows; on
        // overflow, sort the buffered chunk and spill it as a run.
        let mut chunk: Vec<Tuple> = Vec::new();
        let mut runs: Vec<HeapFile> = Vec::new();
        while let Some(t) = self.input.next()? {
            self.ctx.governor.check()?;
            if chunk.len() >= budget_rows {
                self.charge_sort_cpu(chunk.len());
                chunk.sort_by_key(|t| t[key]);
                let mut run = HeapFile::new_temp(self.disk.clone());
                for row in &chunk {
                    run.append(&encode_record(row, row_bytes))?;
                }
                run.finish()?;
                runs.push(run);
                self.release((chunk.len() * row_bytes) as u64);
                chunk.clear();
            }
            self.reserve(row_bytes as u64)?;
            chunk.push(t);
        }

        if runs.is_empty() {
            // Everything fit the grant: sort in place. The reservation is
            // held until `close` — the rows really are resident.
            self.charge_sort_cpu(chunk.len());
            chunk.sort_by_key(|t| t[key]);
            self.output = chunk.into_iter();
            return Ok(());
        }

        // The tail chunk becomes the final run.
        if !chunk.is_empty() {
            self.charge_sort_cpu(chunk.len());
            chunk.sort_by_key(|t| t[key]);
            let mut run = HeapFile::new_temp(self.disk.clone());
            for row in &chunk {
                run.append(&encode_record(row, row_bytes))?;
            }
            run.finish()?;
            runs.push(run);
            self.release((chunk.len() * row_bytes) as u64);
            chunk.clear();
        }

        // Merge pass: read runs back (accounted) and k-way merge.
        let mut streams: Vec<std::vec::IntoIter<Tuple>> = Vec::with_capacity(runs.len());
        for run in &runs {
            let mut rows = Vec::new();
            for record in run.scan() {
                rows.push(decode_record(&record?, width));
            }
            streams.push(rows.into_iter());
        }
        let mut heads: Vec<Option<Tuple>> = streams.iter_mut().map(Iterator::next).collect();
        let mut merged = Vec::new();
        loop {
            let mut best: Option<(usize, i64)> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some(t) = head {
                    self.ctx.counters.add_compares(1);
                    let k = t[key];
                    if best.is_none_or(|(_, bk)| k < bk) {
                        best = Some((i, k));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            if let Some(t) = heads[i].take() {
                merged.push(t);
            }
            heads[i] = streams[i].next();
        }
        self.output = merged.into_iter();
        Ok(())
    }
}

impl Operator for SortExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.input.open()?;
        let result = self.fill();
        self.input.close();
        result
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        self.ctx.governor.check()?;
        let Some(t) = self.output.next() else {
            return Ok(None);
        };
        self.ctx.counters.add_records(1);
        Ok(Some(t))
    }

    fn close(&mut self) {
        if self.reserved > 0 {
            self.ctx.governor.release_memory(self.reserved);
            self.reserved = 0;
        }
        self.output = Vec::new().into_iter();
    }

    fn layout(&self) -> &TupleLayout {
        self.input.layout()
    }
}
