//! External sort with memory-bounded runs.

use dqep_storage::gen::{decode_record, encode_record};
use dqep_storage::{HeapFile, SimDisk};

use crate::metrics::SharedCounters;
use crate::tuple::{Tuple, TupleLayout};
use crate::Operator;

/// Sorts its input ascending on one attribute position.
///
/// Inputs fitting the memory grant are sorted in place; larger inputs are
/// cut into sorted runs spilled to accounted temporary files and merged —
/// one extra write + read pass over the data, matching the cost model's
/// `2 × pages × passes` charge (the experiments' inputs need at most one
/// merge pass at the minimum 16-page grant).
pub struct SortExec<'a> {
    input: Box<dyn Operator + 'a>,
    key: usize,
    counters: SharedCounters,
    disk: SimDisk,
    budget_bytes: usize,
    output: std::vec::IntoIter<Tuple>,
}

impl<'a> SortExec<'a> {
    /// Creates a sort on attribute position `key`.
    #[must_use]
    pub fn new(
        input: Box<dyn Operator + 'a>,
        key: usize,
        counters: SharedCounters,
        disk: SimDisk,
        budget_bytes: usize,
    ) -> Self {
        SortExec {
            input,
            key,
            counters,
            disk,
            budget_bytes,
            output: Vec::new().into_iter(),
        }
    }

    fn charge_sort_cpu(&self, n: usize) {
        if n > 1 {
            let compares = (n as f64 * (n as f64).log2()).ceil() as u64;
            self.counters.add_compares(compares);
        }
    }
}

impl Operator for SortExec<'_> {
    fn open(&mut self) {
        self.input.open();
        let row_bytes = self.input.layout().row_bytes;
        let width = self.input.layout().width();
        let budget_rows = (self.budget_bytes / row_bytes).max(1);

        let mut rows = Vec::new();
        while let Some(t) = self.input.next() {
            rows.push(t);
        }
        self.input.close();

        let key = self.key;
        if rows.len() <= budget_rows {
            self.charge_sort_cpu(rows.len());
            rows.sort_by_key(|t| t[key]);
            self.output = rows.into_iter();
            return;
        }

        // Run formation: sort chunks of the memory grant, spill each.
        let mut runs: Vec<HeapFile> = Vec::new();
        for chunk in rows.chunks_mut(budget_rows) {
            self.charge_sort_cpu(chunk.len());
            chunk.sort_by_key(|t| t[key]);
            let mut run = HeapFile::new_temp(self.disk.clone());
            for row in chunk.iter() {
                run.append(&encode_record(row, row_bytes));
            }
            run.finish();
            runs.push(run);
        }
        drop(rows);

        // Merge pass: read runs back (accounted) and k-way merge.
        let mut streams: Vec<std::vec::IntoIter<Tuple>> = runs
            .iter()
            .map(|run| {
                run.scan()
                    .map(|r| decode_record(&r, width))
                    .collect::<Vec<_>>()
                    .into_iter()
            })
            .collect();
        let mut heads: Vec<Option<Tuple>> = streams.iter_mut().map(Iterator::next).collect();
        let mut merged = Vec::new();
        loop {
            let mut best: Option<usize> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some(t) = head {
                    self.counters.add_compares(1);
                    let better = match best {
                        None => true,
                        Some(b) => t[key] < heads[b].as_ref().expect("best is live")[key],
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            merged.push(heads[i].take().expect("best is live"));
            heads[i] = streams[i].next();
        }
        self.output = merged.into_iter();
    }

    fn next(&mut self) -> Option<Tuple> {
        let t = self.output.next()?;
        self.counters.add_records(1);
        Some(t)
    }

    fn close(&mut self) {
        self.output = Vec::new().into_iter();
    }

    fn layout(&self) -> &TupleLayout {
        self.input.layout()
    }
}
