//! External sort with memory-bounded, governor-audited runs.

use dqep_storage::gen::{decode_record, encode_record};
use dqep_storage::{HeapFile, PageId, SimDisk, SlottedPage};

use crate::batch::RowBatch;
use crate::error::ExecError;
use crate::exchange::run_parallel;
use crate::governor::{ExecContext, ExecMode};
use crate::tuple::{Tuple, TupleLayout};
use crate::{BoxedOperator, Operator};

/// Merges `rows`, consisting of consecutive sorted slices of length
/// `share` (the last possibly shorter), into one sorted vector by moving
/// tuples out (no clones). Used by the parallel chunk sort to combine the
/// slices the workers sorted independently.
fn merge_sorted_slices(rows: &mut [Tuple], share: usize, key: usize) -> Vec<Tuple> {
    let n = rows.len();
    let mut cursors: Vec<(usize, usize)> = (0..n)
        .step_by(share)
        .map(|s| (s, (s + share).min(n)))
        .collect();
    let mut out = Vec::with_capacity(n);
    loop {
        let mut best: Option<usize> = None;
        for (i, &(pos, end)) in cursors.iter().enumerate() {
            if pos < end {
                best = match best {
                    Some(b) if rows[cursors[b].0][key] <= rows[pos][key] => Some(b),
                    _ => Some(i),
                };
            }
        }
        let Some(b) = best else { break };
        let pos = cursors[b].0;
        out.push(std::mem::take(&mut rows[pos]));
        cursors[b].0 += 1;
    }
    out
}

/// K-way merge of sorted run segments into one sorted vector, ties broken
/// toward the lowest run index (the scan below replaces `best` only on a
/// strictly smaller key). Both the serial merge (over whole runs) and
/// each parallel range worker (over one key range's segments) use this
/// loop, so the parallel concatenation is byte-identical to the serial
/// merge.
fn kway_merge(segments: Vec<Vec<Tuple>>, key: usize) -> Vec<Tuple> {
    let total: usize = segments.iter().map(Vec::len).sum();
    let mut streams: Vec<std::vec::IntoIter<Tuple>> =
        segments.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<Tuple>> = streams.iter_mut().map(Iterator::next).collect();
    let mut merged = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, i64)> = None;
        for (i, head) in heads.iter().enumerate() {
            if let Some(t) = head {
                let k = t[key];
                if best.is_none_or(|(_, bk)| k < bk) {
                    best = Some((i, k));
                }
            }
        }
        let Some((i, _)) = best else { break };
        if let Some(t) = heads[i].take() {
            merged.push(t);
        }
        heads[i] = streams[i].next();
    }
    merged
}

/// The cooperative merge phase: partitions the key space into up to `dop`
/// ranges by sampling splitter keys from the sorted runs, cuts every run
/// at each splitter with a binary search (`partition_point` on `<=`, so
/// equal keys never straddle a boundary), and merges each range's
/// segments on its own worker thread. Every worker runs the same
/// tie-break as the serial merge within its disjoint key range, so
/// concatenating the ranges in order reproduces the serial merge output
/// exactly — only the wall-clock work is split.
fn parallel_range_merge(runs: Vec<Vec<Tuple>>, key: usize, dop: usize) -> Vec<Tuple> {
    // Splitters: sample up to 32 evenly spaced keys per run, then take
    // `dop - 1` quantiles of the pooled sample. Sampling quality affects
    // only range balance, never correctness.
    let mut samples: Vec<i64> = Vec::new();
    for run in &runs {
        let s = run.len().min(32);
        for j in 0..s {
            samples.push(run[j * run.len() / s][key]);
        }
    }
    samples.sort_unstable();
    let mut bounds: Vec<i64> = (1..dop)
        .map(|i| samples[i * samples.len() / dop])
        .collect();
    bounds.dedup();
    // Cut offsets per run: range `r` owns `cuts[r]..cuts[r + 1]`.
    let cuts: Vec<Vec<usize>> = runs
        .iter()
        .map(|run| {
            let mut c = Vec::with_capacity(bounds.len() + 2);
            c.push(0);
            for &b in &bounds {
                c.push(run.partition_point(|t| t[key] <= b));
            }
            c.push(run.len());
            c
        })
        .collect();
    let ranges = bounds.len() + 1;
    // Split each run into per-range segments by moving tuples out
    // (splitting off tails back to front keeps offsets valid).
    let mut segments: Vec<Vec<Vec<Tuple>>> = (0..ranges).map(|_| Vec::new()).collect();
    for (run, cut) in runs.into_iter().zip(&cuts) {
        let mut rest = run;
        let mut tails: Vec<Vec<Tuple>> = Vec::with_capacity(ranges);
        for r in (0..ranges).rev() {
            tails.push(rest.split_off(cut[r]));
        }
        for (r, seg) in tails.into_iter().rev().enumerate() {
            segments[r].push(seg);
        }
    }
    let tasks: Vec<_> = segments
        .into_iter()
        .map(|segs| move || Ok(kway_merge(segs, key)))
        .collect();
    let mut merged: Vec<Tuple> = Vec::new();
    // Range merging is pure CPU: the tasks are infallible.
    for part in run_parallel(tasks).into_iter().flatten() {
        merged.extend(part);
    }
    merged
}

/// Sorts its input ascending on one attribute position.
///
/// Inputs fitting the memory grant are sorted in place; larger inputs are
/// cut into sorted runs spilled to accounted temporary files and merged —
/// one extra write + read pass over the data, matching the cost model's
/// `2 × pages × passes` charge (the experiments' inputs need at most one
/// merge pass at the minimum 16-page grant).
///
/// Buffered rows are *reserved* with the query's resource governor before
/// they are held, so a grant the governor refuses to cover surfaces as
/// [`ExecError::ResourceExhausted`] from `open` instead of silently
/// exceeding the limit. Run formation is governed; the merge pass streams
/// runs through fixed-size decode buffers the simulator does not charge
/// (the classic "one page per run" merge assumption).
pub struct SortExec<'a> {
    input: BoxedOperator<'a>,
    key: usize,
    ctx: ExecContext,
    disk: SimDisk,
    budget_bytes: usize,
    /// Bytes currently reserved with the governor; released in `close`.
    reserved: u64,
    output: std::vec::IntoIter<Tuple>,
    /// Mid-query re-optimization probe, fired once per `open` with the
    /// input's actual cardinality when ingest completes.
    checkpoint: Option<crate::reopt::ReoptProbe>,
}

impl<'a> SortExec<'a> {
    /// Creates a sort on attribute position `key`.
    #[must_use]
    pub fn new(
        input: BoxedOperator<'a>,
        key: usize,
        ctx: ExecContext,
        disk: SimDisk,
        budget_bytes: usize,
    ) -> Self {
        SortExec {
            input,
            key,
            ctx,
            disk,
            budget_bytes,
            reserved: 0,
            output: Vec::new().into_iter(),
            checkpoint: None,
        }
    }

    /// Attaches a re-optimization checkpoint probe to the ingest phase.
    pub(crate) fn with_checkpoint(mut self, probe: crate::reopt::ReoptProbe) -> Self {
        self.checkpoint = Some(probe);
        self
    }

    fn charge_sort_cpu(&self, n: usize) {
        if n > 1 {
            let compares = (n as f64 * (n as f64).log2()).ceil() as u64;
            self.ctx.counters.add_compares(compares);
        }
    }

    fn reserve(&mut self, bytes: u64) -> Result<(), ExecError> {
        self.ctx.governor.try_reserve_memory(bytes)?;
        self.reserved += bytes;
        Ok(())
    }

    fn release(&mut self, bytes: u64) {
        self.ctx.governor.release_memory(bytes);
        self.reserved -= bytes;
    }

    /// Sorts one buffered chunk, charging the cost model's `n·log₂(n)`
    /// compare formula. `sort_unstable_by_key` (in-place pattern-defeating
    /// quicksort): the key is a single `i64`, so stability buys nothing,
    /// and the unstable sort avoids the stable sort's allocation and
    /// merge passes. With `ctx.dop > 1` and a chunk worth splitting, the
    /// chunk is cut into `dop` slices sorted on worker threads and merged
    /// back — parallel run generation. Compare accounting is the same
    /// formula either way, so counters stay DOP-independent.
    fn sort_rows(&self, rows: &mut Vec<Tuple>) {
        let key = self.key;
        self.charge_sort_cpu(rows.len());
        let dop = self.ctx.dop.max(1);
        if dop <= 1 || rows.len() < dop * 2 {
            rows.sort_unstable_by_key(|t| t[key]);
            return;
        }
        let share = rows.len().div_ceil(dop);
        let tasks: Vec<_> = rows
            .chunks_mut(share)
            .map(|slice| {
                move || {
                    slice.sort_unstable_by_key(|t| t[key]);
                    Ok(())
                }
            })
            .collect();
        // Slice sorting is pure CPU: the tasks are infallible.
        run_parallel::<(), _>(tasks);
        *rows = merge_sorted_slices(rows, share, key);
    }

    /// Sorts `chunk` and spills it to a fresh accounted run, releasing its
    /// memory reservation.
    ///
    /// The run's record content goes through unaccounted page writes and
    /// the accounting is settled explicitly afterwards: exactly one
    /// charged write per data page, the same count, order, and
    /// fault-ordinal positions as the accounted-append path (no other
    /// accounted I/O happens inside a spill). Splitting content from
    /// accounting lets a parallel sort overlap the charges' pacing stalls
    /// across workers.
    fn spill_chunk(
        &mut self,
        chunk: &mut Vec<Tuple>,
        runs: &mut Vec<HeapFile>,
        row_bytes: usize,
    ) -> Result<(), ExecError> {
        self.sort_rows(chunk);
        let mut run = HeapFile::new(self.disk.clone());
        for row in chunk.iter() {
            run.append(&encode_record(row, row_bytes))?;
        }
        self.charge_run_writes(run.page_count())?;
        runs.push(run);
        self.release((chunk.len() * row_bytes) as u64);
        chunk.clear();
        Ok(())
    }

    /// Charges the spilled run's page writes. Serial below DOP 2 (or for
    /// a single page); otherwise the charges split across `dop` workers so
    /// their I/O pacing stalls overlap. Totals are DOP-exact; a write
    /// fault is charged before it errors on either path, exactly like an
    /// accounted append.
    fn charge_run_writes(&self, pages: usize) -> Result<(), ExecError> {
        let dop = self.ctx.dop.max(1);
        if dop <= 1 || pages < 2 {
            for _ in 0..pages {
                self.disk.note_write()?;
            }
            return Ok(());
        }
        let share = pages.div_ceil(dop);
        let disk = &self.disk;
        let tasks: Vec<_> = (0..dop)
            .map(|w| share.min(pages.saturating_sub(w * share)))
            .filter(|&n| n > 0)
            .map(|n| {
                move || {
                    for _ in 0..n {
                        disk.note_write()?;
                    }
                    Ok(())
                }
            })
            .collect();
        for result in run_parallel::<(), _>(tasks) {
            result?;
        }
        Ok(())
    }

    /// Consumes the (already open) input and leaves sorted rows in
    /// `self.output`.
    fn fill(&mut self) -> Result<(), ExecError> {
        let row_bytes = self.input.layout().row_bytes;
        let width = self.input.layout().width();
        let budget_rows = (self.budget_bytes / row_bytes).max(1);
        let key = self.key;

        // Run formation: buffer up to one memory grant of rows; on
        // overflow, sort the buffered chunk and spill it as a run. Rows
        // are *reserved* per row in both modes — the spill bound (never
        // more than one grant of rows resident) is part of the memory
        // contract, so batch ingest must not reserve a whole batch ahead.
        let mut chunk: Vec<Tuple> = Vec::new();
        let mut runs: Vec<HeapFile> = Vec::new();
        let mut ingested: u64 = 0;
        if self.ctx.mode == ExecMode::Batch {
            loop {
                // Request at most one row past what the memory limit still
                // covers, so a refused reservation trips at the same input
                // row as the tuple path (the producer never over-produces
                // past the first refusable row).
                let req = self.ctx.governor.ingest_batch_rows(row_bytes);
                let Some(batch) = self.input.next_batch(req)? else { break };
                self.ctx.governor.check_batch(batch.len() as u64)?;
                ingested += batch.len() as u64;
                for row in &batch {
                    if chunk.len() >= budget_rows {
                        self.spill_chunk(&mut chunk, &mut runs, row_bytes)?;
                    }
                    self.reserve(row_bytes as u64)?;
                    chunk.push(row);
                }
            }
        } else {
            while let Some(t) = self.input.next()? {
                self.ctx.governor.check()?;
                ingested += 1;
                if chunk.len() >= budget_rows {
                    self.spill_chunk(&mut chunk, &mut runs, row_bytes)?;
                }
                self.reserve(row_bytes as u64)?;
                chunk.push(t);
            }
        }

        // Ingest completion is a pipeline breaker: the input's true
        // cardinality is now known exactly.
        if let Some(probe) = &self.checkpoint {
            probe.observe(ingested);
        }

        if runs.is_empty() {
            // Everything fit the grant: sort in place. The reservation is
            // held until `close` — the rows really are resident.
            self.sort_rows(&mut chunk);
            self.output = chunk.into_iter();
            return Ok(());
        }

        // The tail chunk becomes the final run.
        if !chunk.is_empty() {
            self.spill_chunk(&mut chunk, &mut runs, row_bytes)?;
        }

        // Merge pass: read runs back (accounted) and k-way merge. Compares
        // are charged by the cost model's `n·log₂(k)` selection-tree
        // formula rather than counted in the loop: the loop's actual count
        // depends on how the runs' key ranges interleave, and run
        // *composition* is arrival-order dependent under an exchange — a
        // per-head count would make the total DOP-sensitive. Run count and
        // total rows are fixed by the memory grant, so the formula keeps
        // the counters DOP-exact (and sums with the per-run charges to the
        // model's `n·log₂(n)`).
        //
        // With `dop > 1` the read-back fans out over *pages*, not whole
        // runs (worker `w` reads every `dop`-th page of the concatenated
        // run page list, so the paced stalls overlap even when the grant
        // produced fewer runs than workers — the page *set* is identical,
        // so page-identity faults trip identically; only the seq/random
        // read split may shift) and the merge itself is range-cooperative:
        // workers claim disjoint key ranges via splitter sampling and
        // merge them concurrently. Both phases reproduce the serial
        // output exactly: records decode per page in slot order and pages
        // reassemble per run in page order.
        let dop = self.ctx.dop.max(1);
        let run_rows: Vec<Vec<Tuple>> = if dop <= 1 {
            let mut all = Vec::with_capacity(runs.len());
            for run in &runs {
                let mut rows = Vec::with_capacity(run.record_count() as usize);
                for record in run.scan() {
                    rows.push(decode_record(&record?, width));
                }
                all.push(rows);
            }
            all
        } else {
            // (run index, page id) units in scan order across all runs.
            let units: Vec<(usize, PageId)> = runs
                .iter()
                .enumerate()
                .flat_map(|(r, run)| run.pages().iter().map(move |&pid| (r, pid)))
                .collect();
            let runs_ref = &runs;
            let units_ref = &units;
            let tasks: Vec<_> = (0..dop.min(units.len().max(1)))
                .map(|w| {
                    move || {
                        let mut out: Vec<(usize, usize, Vec<Tuple>)> = Vec::new();
                        let mut u = w;
                        while u < units_ref.len() {
                            let (r, pid) = units_ref[u];
                            let bytes = runs_ref[r]
                                .disk()
                                .read(pid)
                                .map_err(ExecError::from)?;
                            let page = SlottedPage::from_bytes(bytes);
                            let rows: Vec<Tuple> = page
                                .iter()
                                .map(|record| decode_record(record, width))
                                .collect();
                            out.push((r, u, rows));
                            u += dop;
                        }
                        Ok(out)
                    }
                })
                .collect();
            let mut collected: Vec<(usize, usize, Vec<Tuple>)> = Vec::new();
            for result in run_parallel(tasks) {
                collected.extend(result?);
            }
            // Reassemble: unit index orders pages globally in scan order,
            // and runs were concatenated run 0 first, so a stable sort by
            // (run, unit) restores every run's page order.
            collected.sort_by_key(|&(r, u, _)| (r, u));
            let mut all: Vec<Vec<Tuple>> = runs
                .iter()
                .map(|run| Vec::with_capacity(run.record_count() as usize))
                .collect();
            for (r, _, rows) in collected {
                all[r].extend(rows);
            }
            all
        };
        let total_rows: u64 = run_rows.iter().map(|r| r.len() as u64).sum();
        if total_rows > 0 && run_rows.len() > 1 {
            let merge_compares =
                (total_rows as f64 * (run_rows.len() as f64).log2()).ceil() as u64;
            self.ctx.counters.add_compares(merge_compares);
        }
        let merged = if dop <= 1 || total_rows < 2 {
            kway_merge(run_rows, key)
        } else {
            parallel_range_merge(run_rows, key, dop)
        };
        self.output = merged.into_iter();
        Ok(())
    }
}

impl Operator for SortExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.input.open()?;
        let result = self.fill();
        self.input.close();
        result
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        self.ctx.governor.check()?;
        let Some(t) = self.output.next() else {
            return Ok(None);
        };
        self.ctx.counters.add_records(1);
        Ok(Some(t))
    }

    /// Native batch emission from the sorted buffer: one governor check
    /// and one counter update per batch.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>, ExecError> {
        let mut batch = RowBatch::with_capacity(self.input.layout().width(), max_rows);
        while batch.rows() < max_rows {
            let Some(t) = self.output.next() else { break };
            batch.push_row(&t);
        }
        let rows = batch.rows();
        if rows == 0 {
            return Ok(None);
        }
        self.ctx.governor.check_batch(rows as u64)?;
        self.ctx.counters.add_records(rows as u64);
        Ok(Some(batch))
    }

    fn close(&mut self) {
        if self.reserved > 0 {
            self.ctx.governor.release_memory(self.reserved);
            self.reserved = 0;
        }
        self.output = Vec::new().into_iter();
    }

    fn layout(&self) -> &TupleLayout {
        self.input.layout()
    }

    fn estimated_rows(&self) -> Option<u64> {
        // Exact after `open`: the sorted buffer's remaining length.
        Some(self.output.len() as u64)
    }
}
