//! The Volcano iterator interface, tuple-at-a-time and batched.

use crate::batch::RowBatch;
use crate::error::ExecError;
use crate::tuple::{Tuple, TupleLayout};

/// A demand-driven query operator (Volcano iterator model): `open`
/// prepares state (and may consume inputs eagerly for stop-and-go
/// operators like sort and hash-join build), `next` produces one tuple at
/// a time, `close` releases state.
///
/// `open` and `next` are fallible: storage faults, resource-governor
/// aborts and cancellation surface as [`ExecError`] instead of panics, so
/// a choose-plan operator can catch a retryable `open` failure and fall
/// back to another alternative. `close` stays infallible — teardown must
/// always succeed so errors propagate without leaking operator state.
///
/// Operators additionally transport rows in batches through
/// [`Operator::next_batch`]. The default implementation loops `next()`, so
/// every operator works in a batched pipeline unchanged; hot operators
/// (scans, filter, hash join, sort) override it natively to amortize
/// per-row costs. One pipeline must stick to one interface between `open`
/// and `close` — interleaving `next` and `next_batch` calls on the same
/// operator is unsupported.
pub trait Operator {
    /// Prepares the operator; must be called before `next`.
    ///
    /// # Errors
    /// Any [`ExecError`]; blocking operators do their buffering here, so
    /// memory exhaustion and most storage faults surface from `open`.
    fn open(&mut self) -> Result<(), ExecError>;

    /// Produces the next tuple, or `Ok(None)` when exhausted.
    ///
    /// # Errors
    /// Any [`ExecError`]. After an error the operator's state is
    /// unspecified; callers should `close` it and not call `next` again.
    fn next(&mut self) -> Result<Option<Tuple>, ExecError>;

    /// Produces the next batch of up to roughly `max_rows` rows, or
    /// `Ok(None)` when exhausted. A returned batch is never empty of
    /// physical rows, but a native filter may return a batch whose
    /// selection vector is empty — callers iterate live rows and pull
    /// again.
    ///
    /// The default implementation loops [`Operator::next`]; it is
    /// *correct* for every operator but pays the tuple path's per-row
    /// costs.
    ///
    /// # Errors
    /// Any [`ExecError`], as for `next`.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>, ExecError> {
        let mut batch = RowBatch::with_capacity(self.layout().width(), max_rows);
        while batch.rows() < max_rows {
            match self.next()? {
                Some(t) => batch.push_row(&t),
                None => break,
            }
        }
        Ok(if batch.rows() == 0 { None } else { Some(batch) })
    }

    /// Releases resources; the operator may not be reopened.
    fn close(&mut self);

    /// The layout of produced tuples.
    fn layout(&self) -> &TupleLayout;

    /// A hint of how many rows this operator will still produce, when it
    /// knows (a file scan knows its table's record count; a sort knows its
    /// buffered output exactly after `open`). `None` when unknown —
    /// operators whose output depends on predicate selectivity do not
    /// guess. Callers use this to pre-size result buffers only; it has no
    /// correctness weight.
    fn estimated_rows(&self) -> Option<u64> {
        None
    }
}

/// A boxed operator as the compiler produces it. Operators are `Send` so
/// a compiled subtree can be handed to an exchange worker thread; they are
/// not `Sync` — each worker owns its subtree exclusively.
pub type BoxedOperator<'a> = Box<dyn Operator + Send + 'a>;

/// Caps speculative `Vec` pre-sizing from [`Operator::estimated_rows`], so
/// a bad hint cannot ask for unbounded memory up front.
pub(crate) const MAX_PRESIZE_ROWS: u64 = 1 << 20;

/// Drains an operator to completion, returning all tuples. The output is
/// pre-sized from the operator's [`Operator::estimated_rows`] hint.
///
/// The operator is closed on success *and* on error, so buffered state
/// and memory reservations are released either way.
///
/// # Errors
/// The first [`ExecError`] raised by `open` or `next`.
pub fn drain(op: &mut dyn Operator) -> Result<Vec<Tuple>, ExecError> {
    fn run(op: &mut dyn Operator, out: &mut Vec<Tuple>) -> Result<(), ExecError> {
        op.open()?;
        if let Some(n) = op.estimated_rows() {
            out.reserve(n.min(MAX_PRESIZE_ROWS) as usize);
        }
        while let Some(t) = op.next()? {
            out.push(t);
        }
        Ok(())
    }
    let mut out = Vec::new();
    let result = run(op, &mut out);
    op.close();
    result.map(|()| out)
}

/// Drains an operator to completion through the **batch** interface,
/// returning all tuples (materialized row by row for interop). The
/// batched analogue of [`drain`], with the same close-on-error contract.
///
/// # Errors
/// The first [`ExecError`] raised by `open` or `next_batch`.
pub fn drain_batch(op: &mut dyn Operator) -> Result<Vec<Tuple>, ExecError> {
    fn run(op: &mut dyn Operator, out: &mut Vec<Tuple>) -> Result<(), ExecError> {
        op.open()?;
        if let Some(n) = op.estimated_rows() {
            out.reserve(n.min(MAX_PRESIZE_ROWS) as usize);
        }
        while let Some(batch) = op.next_batch(crate::batch::BATCH_CAPACITY)? {
            out.extend(batch.iter());
        }
        Ok(())
    }
    let mut out = Vec::new();
    let result = run(op, &mut out);
    op.close();
    result.map(|()| out)
}
