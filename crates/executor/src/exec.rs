//! The Volcano iterator interface.

use crate::tuple::{Tuple, TupleLayout};

/// A demand-driven query operator (Volcano iterator model): `open`
/// prepares state (and may consume inputs eagerly for stop-and-go
/// operators like sort and hash-join build), `next` produces one tuple at
/// a time, `close` releases state.
pub trait Operator {
    /// Prepares the operator; must be called before `next`.
    fn open(&mut self);

    /// Produces the next tuple, or `None` when exhausted.
    fn next(&mut self) -> Option<Tuple>;

    /// Releases resources; the operator may not be reopened.
    fn close(&mut self);

    /// The layout of produced tuples.
    fn layout(&self) -> &TupleLayout;
}

/// Drains an operator to completion, returning all tuples.
pub fn drain(op: &mut dyn Operator) -> Vec<Tuple> {
    let mut out = Vec::new();
    op.open();
    while let Some(t) = op.next() {
        out.push(t);
    }
    op.close();
    out
}
