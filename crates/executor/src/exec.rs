//! The Volcano iterator interface.

use crate::error::ExecError;
use crate::tuple::{Tuple, TupleLayout};

/// A demand-driven query operator (Volcano iterator model): `open`
/// prepares state (and may consume inputs eagerly for stop-and-go
/// operators like sort and hash-join build), `next` produces one tuple at
/// a time, `close` releases state.
///
/// `open` and `next` are fallible: storage faults, resource-governor
/// aborts and cancellation surface as [`ExecError`] instead of panics, so
/// a choose-plan operator can catch a retryable `open` failure and fall
/// back to another alternative. `close` stays infallible — teardown must
/// always succeed so errors propagate without leaking operator state.
pub trait Operator {
    /// Prepares the operator; must be called before `next`.
    ///
    /// # Errors
    /// Any [`ExecError`]; blocking operators do their buffering here, so
    /// memory exhaustion and most storage faults surface from `open`.
    fn open(&mut self) -> Result<(), ExecError>;

    /// Produces the next tuple, or `Ok(None)` when exhausted.
    ///
    /// # Errors
    /// Any [`ExecError`]. After an error the operator's state is
    /// unspecified; callers should `close` it and not call `next` again.
    fn next(&mut self) -> Result<Option<Tuple>, ExecError>;

    /// Releases resources; the operator may not be reopened.
    fn close(&mut self);

    /// The layout of produced tuples.
    fn layout(&self) -> &TupleLayout;
}

/// Drains an operator to completion, returning all tuples.
///
/// The operator is closed on success *and* on error, so buffered state
/// and memory reservations are released either way.
///
/// # Errors
/// The first [`ExecError`] raised by `open` or `next`.
pub fn drain(op: &mut dyn Operator) -> Result<Vec<Tuple>, ExecError> {
    fn run(op: &mut dyn Operator, out: &mut Vec<Tuple>) -> Result<(), ExecError> {
        op.open()?;
        while let Some(t) = op.next()? {
            out.push(t);
        }
        Ok(())
    }
    let mut out = Vec::new();
    let result = run(op, &mut out);
    op.close();
    result.map(|()| out)
}
