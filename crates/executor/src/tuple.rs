//! Tuples and tuple layouts.

use dqep_catalog::{AttrId, Catalog, RelationId};

/// A materialized tuple: the concatenated integer attributes of its
/// constituent base relations, in layout order.
pub type Tuple = Vec<i64>;

/// Describes which relations (and how many attributes each) a tuple
/// carries, so predicates over [`AttrId`]s can be resolved to positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleLayout {
    /// Constituent relations, in concatenation order.
    rels: Vec<(RelationId, usize)>,
    /// Total attribute count.
    width: usize,
    /// Total bytes per tuple when materialized (sum of the relations'
    /// record lengths) — used for memory budgeting and spill accounting.
    pub row_bytes: usize,
}

impl TupleLayout {
    /// The layout of a single base relation.
    #[must_use]
    pub fn base(catalog: &Catalog, rel: RelationId) -> TupleLayout {
        let r = catalog.relation(rel);
        TupleLayout {
            rels: vec![(rel, r.attributes.len())],
            width: r.attributes.len(),
            row_bytes: r.stats.record_len as usize,
        }
    }

    /// The layout of a join result: left attributes followed by right.
    #[must_use]
    pub fn concat(&self, right: &TupleLayout) -> TupleLayout {
        let mut rels = self.rels.clone();
        rels.extend(right.rels.iter().copied());
        TupleLayout {
            rels,
            width: self.width + right.width,
            row_bytes: self.row_bytes + right.row_bytes,
        }
    }

    /// Number of attributes per tuple.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// A synthetic single-relation layout for unit tests that need only
    /// width and row bytes.
    #[cfg(test)]
    pub(crate) fn for_tests(width: usize, row_bytes: usize) -> TupleLayout {
        TupleLayout {
            rels: vec![(RelationId(0), width)],
            width,
            row_bytes,
        }
    }

    /// The column permutation that rewrites a tuple laid out as `other`
    /// into *this* layout: `proj[i]` is the position in `other` of this
    /// layout's `i`-th column. Returns `None` when the layouts already
    /// agree (the common case — callers skip the copy entirely).
    ///
    /// Both layouts must carry the same relations; commuted join orders
    /// produce exactly such pairs.
    ///
    /// # Panics
    /// Panics when `other` lacks a relation this layout carries.
    #[must_use]
    pub fn projection_from(&self, other: &TupleLayout) -> Option<Vec<usize>> {
        if self.rels == other.rels {
            return None;
        }
        let offset_in_other = |rel: RelationId| {
            let mut offset = 0;
            for &(orel, on) in &other.rels {
                if orel == rel {
                    return offset;
                }
                offset += on;
            }
            panic!("relation {rel} absent from source layout {:?}", other.rels)
        };
        let mut proj = Vec::with_capacity(self.width);
        for &(rel, n) in &self.rels {
            let base = offset_in_other(rel);
            proj.extend(base..base + n);
        }
        Some(proj)
    }

    /// Resolves an attribute to its position, or `None` when the layout
    /// does not carry its relation.
    #[must_use]
    pub fn position(&self, attr: AttrId) -> Option<usize> {
        let mut offset = 0;
        for &(rel, n) in &self.rels {
            if rel == attr.relation {
                let idx = attr.index as usize;
                return (idx < n).then_some(offset + idx);
            }
            offset += n;
        }
        None
    }

    /// Resolves an attribute, panicking with context when absent.
    ///
    /// # Panics
    /// Panics when the attribute's relation is not part of the layout.
    #[must_use]
    pub fn require(&self, attr: AttrId) -> usize {
        self.position(attr)
            .unwrap_or_else(|| panic!("attribute {attr} not in layout {:?}", self.rels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_catalog::{CatalogBuilder, SystemConfig};

    fn catalog() -> Catalog {
        CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 10, 512, |r| r.attr("a", 10.0).attr("b", 10.0))
            .relation("s", 10, 256, |r| r.attr("x", 10.0))
            .build()
            .unwrap()
    }

    #[test]
    fn base_layout_positions() {
        let cat = catalog();
        let r = cat.relation_by_name("r").unwrap();
        let layout = TupleLayout::base(&cat, r.id);
        assert_eq!(layout.width(), 2);
        assert_eq!(layout.row_bytes, 512);
        assert_eq!(layout.position(r.attr_id("a").unwrap()), Some(0));
        assert_eq!(layout.position(r.attr_id("b").unwrap()), Some(1));
    }

    #[test]
    fn concat_offsets() {
        let cat = catalog();
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        let joined = TupleLayout::base(&cat, r.id).concat(&TupleLayout::base(&cat, s.id));
        assert_eq!(joined.width(), 3);
        assert_eq!(joined.row_bytes, 512 + 256);
        assert_eq!(joined.position(r.attr_id("b").unwrap()), Some(1));
        assert_eq!(joined.position(s.attr_id("x").unwrap()), Some(2));
        assert_eq!(joined.require(s.attr_id("x").unwrap()), 2);
    }

    #[test]
    fn missing_relation_is_none() {
        let cat = catalog();
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        let layout = TupleLayout::base(&cat, r.id);
        assert_eq!(layout.position(s.attr_id("x").unwrap()), None);
    }

    #[test]
    fn projection_rewrites_a_commuted_layout() {
        let cat = catalog();
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        let rs = TupleLayout::base(&cat, r.id).concat(&TupleLayout::base(&cat, s.id));
        let sr = TupleLayout::base(&cat, s.id).concat(&TupleLayout::base(&cat, r.id));
        // A commuted tuple [x, a, b] rewritten into r-then-s order [a, b, x].
        let proj = rs.projection_from(&sr).expect("orders differ");
        assert_eq!(proj, vec![1, 2, 0]);
        let row = [7i64, 1, 2];
        let rewritten: Vec<i64> = proj.iter().map(|&i| row[i]).collect();
        assert_eq!(rewritten, vec![1, 2, 7]);
        // Identical layouts need no copy at all.
        assert_eq!(rs.projection_from(&rs.clone()), None);
    }

    #[test]
    #[should_panic(expected = "not in layout")]
    fn require_panics_when_absent() {
        let cat = catalog();
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        let _ = TupleLayout::base(&cat, r.id).require(s.attr_id("x").unwrap());
    }
}
