//! Batched tuple transport: the vectorized counterpart of the Volcano
//! `next()` interface.
//!
//! A [`RowBatch`] carries up to [`BATCH_CAPACITY`] fixed-width rows in
//! **columnar** layout: one value vector per attribute, plus an optional
//! **selection vector** marking which rows are live. Operators exchange
//! whole batches through [`crate::Operator::next_batch`], amortizing the
//! per-row costs of the tuple interface — the virtual call, the `Result`
//! unwrap, the governor check, the shared-counter lock, and (for scans)
//! one heap allocation per row — to once per batch. The columnar layout
//! goes further than amortization: kernels (filter comparisons, the join
//! mix hash) run as one tight loop over a contiguous `&[i64]` column the
//! compiler can auto-vectorize, the MonetDB/X100 decomposition. Filters
//! qualify rows by writing the selection vector instead of copying
//! survivors, so a selective scan stays allocation-free.

use crate::tuple::Tuple;

/// Target rows per batch. Producers may overshoot slightly (a scan
/// finishes decoding the page it is on rather than buffer half a page),
/// so consumers must size by [`RowBatch::rows`], not this constant.
pub const BATCH_CAPACITY: usize = 1024;

/// A batch of fixed-width rows in columnar storage.
///
/// `columns[c]` holds attribute `c` of every row, so `columns` is a
/// `width × rows` transpose of the row-major layout; `selection`, when
/// present, lists the indices of live rows in ascending order. All
/// consuming iteration goes through [`RowBatch::iter`] /
/// [`RowBatch::selected_indices`], which respect the selection vector, so
/// a filtered batch never needs compaction. Kernels that want a whole
/// attribute at once use [`RowBatch::column`].
#[derive(Debug, Clone, Default)]
pub struct RowBatch {
    width: usize,
    rows: usize,
    columns: Vec<Vec<i64>>,
    selection: Option<Vec<u32>>,
}

impl RowBatch {
    /// An empty batch of `width`-attribute rows, with storage reserved for
    /// [`BATCH_CAPACITY`] rows.
    #[must_use]
    pub fn new(width: usize) -> RowBatch {
        RowBatch::with_capacity(width, BATCH_CAPACITY)
    }

    /// An empty batch with storage reserved for `rows` rows.
    #[must_use]
    pub fn with_capacity(width: usize, rows: usize) -> RowBatch {
        RowBatch {
            width,
            rows: 0,
            columns: (0..width).map(|_| Vec::with_capacity(rows)).collect(),
            selection: None,
        }
    }

    /// Attributes per row.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Physical rows stored (ignoring the selection vector).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Live rows (respecting the selection vector).
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.selection {
            Some(sel) => sel.len(),
            None => self.rows,
        }
    }

    /// Whether no live rows remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The selection vector, if one was applied.
    #[must_use]
    pub fn selection(&self) -> Option<&[u32]> {
        self.selection.as_deref()
    }

    /// The value vector of attribute `c`: one entry per **physical** row.
    /// Kernels pair it with [`RowBatch::selection`] to skip dead rows.
    ///
    /// # Panics
    /// Panics if `c >= width`.
    #[must_use]
    pub fn column(&self, c: usize) -> &[i64] {
        &self.columns[c]
    }

    /// Appends one row. The batch grows past [`BATCH_CAPACITY`] if pushed
    /// to — capacity is a fill target, not a hard limit.
    ///
    /// # Panics
    /// Panics if `row.len() != width`.
    pub fn push_row(&mut self, row: &[i64]) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        debug_assert!(self.selection.is_none(), "push into a filtered batch");
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Appends the concatenation of two row slices (a join output).
    ///
    /// # Panics
    /// Panics if the combined width does not match the batch width.
    pub fn push_concat(&mut self, left: &[i64], right: &[i64]) {
        assert_eq!(left.len() + right.len(), self.width, "row width mismatch");
        debug_assert!(self.selection.is_none(), "push into a filtered batch");
        let (lcols, rcols) = self.columns.split_at_mut(left.len());
        for (col, &v) in lcols.iter_mut().zip(left) {
            col.push(v);
        }
        for (col, &v) in rcols.iter_mut().zip(right) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Appends `n` rows whose values the producer writes straight into the
    /// column vectors (a scan decoding a page column-wise, a join
    /// gathering match pairs). The closure must extend **every** column by
    /// exactly `n` values; this is checked in debug builds.
    pub fn extend_rows_with(&mut self, n: usize, f: impl FnOnce(&mut [Vec<i64>])) {
        debug_assert!(self.selection.is_none(), "push into a filtered batch");
        f(&mut self.columns);
        self.rows += n;
        debug_assert!(
            self.columns.iter().all(|c| c.len() == self.rows),
            "extend_rows_with left ragged columns"
        );
    }

    /// Copies the `i`-th physical row (selection vector not applied) into
    /// `out`, appending `width` values.
    ///
    /// # Panics
    /// Panics if `i >= rows()`.
    pub fn gather_row_into(&self, i: usize, out: &mut Vec<i64>) {
        assert!(i < self.rows, "row index out of range");
        out.extend(self.columns.iter().map(|col| col[i]));
    }

    /// The `i`-th physical row as an owned tuple (selection vector not
    /// applied). Gathers across the columns; kernels should prefer
    /// [`RowBatch::column`].
    ///
    /// # Panics
    /// Panics if `i >= rows()`.
    #[must_use]
    pub fn row_vec(&self, i: usize) -> Tuple {
        let mut out = Vec::with_capacity(self.width);
        self.gather_row_into(i, &mut out);
        out
    }

    /// Restricts the batch to the rows whose physical indices are in
    /// `sel` (ascending). Composes with an existing selection: indices are
    /// interpreted as physical row numbers either way.
    pub fn set_selection(&mut self, sel: Vec<u32>) {
        debug_assert!(sel.windows(2).all(|w| w[0] < w[1]), "selection unsorted");
        self.selection = Some(sel);
    }

    /// Physical indices of the live rows, in order.
    pub fn selected_indices(&self) -> impl Iterator<Item = usize> + '_ {
        let sel = self.selection.as_deref();
        (0..self.len()).map(move |i| match sel {
            Some(s) => s[i] as usize,
            None => i,
        })
    }

    /// Iterates the live rows as owned tuples (gathering across columns).
    pub fn iter(&self) -> RowBatchIter<'_> {
        RowBatchIter {
            batch: self,
            pos: 0,
        }
    }

    /// Copies the live rows out as owned tuples (interop with the tuple
    /// path; used by tests and `drain`-style collectors).
    #[must_use]
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter().collect()
    }

    /// Clears all rows and the selection vector, keeping the allocations.
    pub fn clear(&mut self) {
        for col in &mut self.columns {
            col.clear();
        }
        self.rows = 0;
        self.selection = None;
    }
}

/// Iterator over a batch's live rows, yielding owned tuples.
#[derive(Debug)]
pub struct RowBatchIter<'a> {
    batch: &'a RowBatch,
    /// Position within the selection vector, or the physical row index
    /// when no selection is set.
    pos: usize,
}

impl Iterator for RowBatchIter<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let idx = match &self.batch.selection {
            Some(sel) => *sel.get(self.pos)? as usize,
            None => {
                if self.pos >= self.batch.rows {
                    return None;
                }
                self.pos
            }
        };
        self.pos += 1;
        Some(self.batch.row_vec(idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.batch.len().saturating_sub(self.pos);
        (remaining, Some(remaining))
    }
}

impl<'a> IntoIterator for &'a RowBatch {
    type Item = Tuple;
    type IntoIter = RowBatchIter<'a>;

    fn into_iter(self) -> RowBatchIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut b = RowBatch::new(2);
        b.push_row(&[1, 2]);
        b.push_row(&[3, 4]);
        b.push_concat(&[5], &[6]);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.row_vec(1), vec![3, 4]);
        assert_eq!(b.column(0), &[1, 3, 5]);
        assert_eq!(b.column(1), &[2, 4, 6]);
        let all: Vec<_> = b.iter().collect();
        assert_eq!(all, vec![vec![1i64, 2], vec![3, 4], vec![5, 6]]);
        assert_eq!(b.to_tuples(), vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
    }

    #[test]
    fn selection_vector_filters_iteration() {
        let mut b = RowBatch::new(1);
        for v in 0..6 {
            b.push_row(&[v]);
        }
        b.set_selection(vec![0, 2, 5]);
        assert_eq!(b.rows(), 6, "physical rows unchanged");
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let live: Vec<_> = b.iter().map(|r| r[0]).collect();
        assert_eq!(live, vec![0, 2, 5]);
        assert_eq!(b.selected_indices().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(b.selection(), Some(&[0u32, 2, 5][..]));
    }

    #[test]
    fn empty_selection_is_empty() {
        let mut b = RowBatch::new(3);
        b.push_row(&[1, 2, 3]);
        b.set_selection(Vec::new());
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn clear_resets_selection_and_rows() {
        let mut b = RowBatch::new(1);
        b.push_row(&[9]);
        b.set_selection(vec![0]);
        b.clear();
        assert_eq!(b.rows(), 0);
        assert!(b.is_empty());
        assert!(b.selection().is_none());
        b.push_row(&[7]);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn extend_rows_with_appends_columns() {
        let mut b = RowBatch::new(2);
        b.extend_rows_with(2, |cols| {
            cols[0].extend_from_slice(&[1, 3]);
            cols[1].extend_from_slice(&[2, 4]);
        });
        assert_eq!(b.rows(), 2);
        assert_eq!(b.row_vec(0), vec![1, 2]);
        assert_eq!(b.column(1), &[2, 4]);
    }

    #[test]
    fn gather_row_into_appends() {
        let mut b = RowBatch::new(2);
        b.push_row(&[7, 8]);
        let mut out = vec![42];
        b.gather_row_into(0, &mut out);
        assert_eq!(out, vec![42, 7, 8]);
    }

    #[test]
    fn size_hint_tracks_iteration() {
        let mut b = RowBatch::new(1);
        b.push_row(&[1]);
        b.push_row(&[2]);
        let mut it = b.iter();
        assert_eq!(it.size_hint(), (2, Some(2)));
        it.next();
        assert_eq!(it.size_hint(), (1, Some(1)));
    }
}
