//! Mid-query adaptive re-optimization: runtime checkpoints, bounded
//! re-planning, and graceful degradation under drift and memory pressure.
//!
//! Start-up-time arbitration (the paper's choose-plan decision) is only
//! as good as its compile-time intervals. When the data is skewed or the
//! estimates drift, a running query discovers the truth at its **pipeline
//! breakers** — the build side of a hash join, the input of a sort, an
//! exchange's worker join — where an entire intermediate result is
//! materialized and its actual cardinality is known exactly.
//!
//! [`execute_plan_reopt`] closes the loop the EXPLAIN ANALYZE drift
//! detector only observes:
//!
//! 1. **Checkpoints.** Blocking inputs along the arbitrated path are
//!    materialized deepest-first ([`dqep_plan::next_blocking_input`]).
//!    Each materialization is a checkpoint: the observed cardinality is
//!    compared against the compile-time interval (with the same slack the
//!    drift detector uses).
//! 2. **Bounded re-planning.** On escape, the *remaining* plan is
//!    re-arbitrated via [`dqep_plan::evaluate_startup_observed`] with the
//!    observation applied — under a per-query re-optimization budget (max
//!    re-plans, a wall-clock cap, exponential backoff between attempts)
//!    enforced with the [`ResourceGovernor`], so recovery can never cost
//!    more than the misestimate it fixes.
//! 3. **No repeated work.** Retained intermediates are substituted into
//!    the re-planned execution as [`MaterializedScanExec`] leaves, keyed
//!    by original plan-node id — the build table that triggered the
//!    re-plan is never recomputed (verifiable by I/O counters).
//! 4. **Graceful degradation.** A governor refusal to retain an
//!    intermediate degrades the memory grant the re-arbitration plans
//!    with (steering toward the cheapest-memory alternatives) instead of
//!    failing the query; a retryable failure *during* a checkpoint or of
//!    a re-planned run falls back to continuing the original plan
//!    (observations suppressed); only then does a governed failure
//!    surface. The ladder: re-plan → cheaper alternative → original plan
//!    → governed failure.
//!
//! Every step is recorded as a [`ReoptEvent`] in the [`ReoptReport`],
//! rendered by EXPLAIN ANALYZE and exported by the service metrics.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dqep_catalog::Catalog;
use dqep_cost::{Bindings, Environment};
use dqep_interval::Interval;
use dqep_plan::{
    chosen_map, evaluate_startup_observed, next_blocking_input, NodeId, Observations, PlanNode,
    StartupResult,
};
use dqep_storage::StoredDatabase;
use parking_lot::Mutex;

use crate::batch::RowBatch;
use crate::error::ExecError;
use crate::exec::{drain, drain_batch, Operator};
use crate::governor::{ExecContext, ExecMode, ResourceGovernor, ResourceLimits};
use crate::metrics::{ExecSummary, SharedCounters};
use crate::trace::{TraceReport, Tracer};
use crate::tuple::{Tuple, TupleLayout};

/// The per-query re-optimization budget.
#[derive(Debug, Clone, Copy)]
pub struct ReoptConfig {
    /// Maximum re-plans adopted per query.
    pub max_replans: u32,
    /// Wall-clock cap on the whole re-optimization machinery, measured
    /// from query start: past this, re-plan requests are denied and the
    /// current plan runs to completion.
    pub wall_clock_ms: u64,
    /// Base of the exponential backoff slept before the n-th re-plan
    /// (`base · 2ⁿ` ms, capped at one second). Zero disables the sleep
    /// (deterministic tests).
    pub backoff_base_ms: u64,
}

impl Default for ReoptConfig {
    fn default() -> ReoptConfig {
        ReoptConfig {
            max_replans: 2,
            wall_clock_ms: 10_000,
            backoff_base_ms: 1,
        }
    }
}

/// What happened at one step of the re-optimization machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptEventKind {
    /// A pipeline breaker completed and its cardinality was observed.
    Checkpoint,
    /// A checkpoint observation escaped its compile-time interval.
    Escape,
    /// The remaining plan was re-arbitrated with observations applied.
    Replan,
    /// A re-plan request was denied by the budget.
    ReplanDenied,
    /// A checkpoint or re-plan failed; the original plan continues.
    ReplanFailed,
    /// The governor refused to retain an intermediate; the memory grant
    /// the re-arbitration plans with was degraded instead.
    MemoryDegrade,
    /// A choose-plan operator arbitrated with checkpoint observations.
    Arbitration,
    /// A re-planned run failed and execution reverted to the original
    /// arbitration.
    Fallback,
}

impl ReoptEventKind {
    /// Stable lowercase label (JSON key and rendering).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReoptEventKind::Checkpoint => "checkpoint",
            ReoptEventKind::Escape => "escape",
            ReoptEventKind::Replan => "replan",
            ReoptEventKind::ReplanDenied => "replan-denied",
            ReoptEventKind::ReplanFailed => "replan-failed",
            ReoptEventKind::MemoryDegrade => "memory-degrade",
            ReoptEventKind::Arbitration => "arbitration",
            ReoptEventKind::Fallback => "fallback",
        }
    }
}

/// One audit-trail entry of the re-optimization machinery.
#[derive(Debug, Clone)]
pub struct ReoptEvent {
    /// What happened.
    pub kind: ReoptEventKind,
    /// The plan node concerned, when the event is node-specific.
    pub node: Option<NodeId>,
    /// The compile-time cardinality interval, for checkpoint/escape
    /// events.
    pub estimate: Option<(f64, f64)>,
    /// The observed cardinality, for checkpoint/escape events.
    pub observed: Option<f64>,
    /// Human-readable context.
    pub detail: String,
}

/// Counter totals across one query's re-optimization machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReoptCounters {
    /// Pipeline-breaker checkpoints observed.
    pub checkpoints: u64,
    /// Checkpoint observations that escaped their interval.
    pub escapes: u64,
    /// Re-plans requested (granted or not).
    pub replans_attempted: u64,
    /// Re-plans granted and adopted.
    pub replans_adopted: u64,
    /// Re-plan requests denied by the budget.
    pub replans_denied: u64,
    /// Checkpoints or re-plans that failed retryably (original plan
    /// continued).
    pub replan_failures: u64,
    /// Governor refusals absorbed by degrading the planning memory grant.
    pub memory_degradations: u64,
    /// Choose-plan arbitrations that applied checkpoint observations.
    pub observed_arbitrations: u64,
    /// Re-planned runs that reverted to the original arbitration.
    pub fallbacks: u64,
}

/// The re-optimization audit trail of one query: every event plus the
/// counter totals. Attached to [`TraceReport`] and rendered by EXPLAIN
/// ANALYZE.
#[derive(Debug, Clone, Default)]
pub struct ReoptReport {
    /// Events in occurrence order.
    pub events: Vec<ReoptEvent>,
    /// Counter totals.
    pub counters: ReoptCounters,
}

impl ReoptReport {
    /// The escape observations as `(node, observed)` pairs — the feed for
    /// the service decision cache. Empty when execution fell back to the
    /// original arbitration: a reverted run proved nothing about which
    /// alternative the observations should steer future sessions toward.
    #[must_use]
    pub fn escaped_observations(&self) -> Vec<(NodeId, f64)> {
        if self.counters.fallbacks > 0 {
            return Vec::new();
        }
        self.events
            .iter()
            .filter(|e| e.kind == ReoptEventKind::Escape)
            .filter_map(|e| Some((e.node?, e.observed?)))
            .collect()
    }
}

#[derive(Debug, Default)]
struct ReoptInner {
    events: Vec<ReoptEvent>,
    counters: ReoptCounters,
    /// Re-plans granted so far (budget consumption).
    attempts: u32,
    observations: Observations,
    /// Set when execution reverted to the original plan: the getter then
    /// serves no observations, so arbitrations reproduce the original
    /// decisions.
    suppressed: bool,
    materialized: Vec<(NodeId, TupleLayout, Arc<Vec<Tuple>>)>,
    reserved_bytes: u64,
}

/// Shared state of one query's re-optimization machinery: checkpoint
/// observations, retained intermediates, the re-plan budget, and the
/// audit trail. Carried on [`ExecContext::reopt`] and shared by the
/// driver, the compiler hooks, and the operator probes.
#[derive(Debug)]
pub struct ReoptState {
    config: ReoptConfig,
    started: Instant,
    inner: Mutex<ReoptInner>,
}

/// Whether an observed cardinality falls outside a bind-time interval —
/// the trigger both for mid-query re-optimization and for live-view
/// re-arbitration. Same escape semantics as the EXPLAIN ANALYZE
/// cardinality drift check: absolute slack of half a row (rounding) plus
/// a hair of relative slack.
#[must_use]
pub fn escapes_interval(actual: f64, card: Interval) -> bool {
    let slack = 0.5 + 1e-9 * card.hi().abs().max(1.0);
    actual < card.lo() - slack || actual > card.hi() + slack
}

impl ReoptState {
    /// Fresh state under `config`, with the wall clock starting now.
    #[must_use]
    pub fn new(config: ReoptConfig) -> ReoptState {
        ReoptState {
            config,
            started: Instant::now(),
            inner: Mutex::new(ReoptInner::default()),
        }
    }

    /// The checkpoint observations accumulated so far (empty after a
    /// fallback suppressed them), keyed by original plan-node id.
    #[must_use]
    pub fn observations(&self) -> Observations {
        let inner = self.inner.lock();
        if inner.suppressed {
            Observations::new()
        } else {
            inner.observations.clone()
        }
    }

    /// Records a checkpoint: `actual` rows observed at `node`, whose
    /// compile-time estimate was `card`. Returns whether the observation
    /// escaped the interval (an [`ReoptEventKind::Escape`] event).
    pub fn observe_checkpoint(
        &self,
        node: NodeId,
        label: &str,
        card: Interval,
        actual: u64,
    ) -> bool {
        let escaped = escapes_interval(actual as f64, card);
        let mut inner = self.inner.lock();
        inner.counters.checkpoints += 1;
        inner.events.push(ReoptEvent {
            kind: ReoptEventKind::Checkpoint,
            node: Some(node),
            estimate: Some((card.lo(), card.hi())),
            observed: Some(actual as f64),
            detail: label.to_string(),
        });
        inner.observations.insert(node, actual as f64);
        if escaped {
            inner.counters.escapes += 1;
            inner.events.push(ReoptEvent {
                kind: ReoptEventKind::Escape,
                node: Some(node),
                estimate: Some((card.lo(), card.hi())),
                observed: Some(actual as f64),
                detail: format!(
                    "{label}: observed {actual} outside [{:.0}, {:.0}]",
                    card.lo(),
                    card.hi()
                ),
            });
            crate::journal::journal().record(
                crate::journal::EventKind::IntervalEscape,
                0,
                crate::journal::NO_ID,
                node.0,
                actual,
                card.hi() as u64,
            );
        }
        escaped
    }

    /// Requests one re-plan against the budget. Grants consume an attempt
    /// and sleep the exponential backoff; denials (budget exhausted, wall
    /// cap passed, or the governor objecting) record a
    /// [`ReoptEventKind::ReplanDenied`] event.
    pub fn request_replan(&self, governor: &ResourceGovernor) -> bool {
        let mut inner = self.inner.lock();
        inner.counters.replans_attempted += 1;
        let elapsed_ms = self.started.elapsed().as_millis() as u64;
        let denied = if inner.attempts >= self.config.max_replans {
            Some(format!(
                "re-plan budget exhausted ({} of {})",
                inner.attempts, self.config.max_replans
            ))
        } else if elapsed_ms > self.config.wall_clock_ms {
            Some(format!(
                "wall-clock cap passed ({elapsed_ms}ms > {}ms)",
                self.config.wall_clock_ms
            ))
        } else {
            // The governor has the last word: a cancelled query or a spent
            // wall-clock budget must not buy more planning.
            match governor.check_batch(64) {
                Ok(()) => None,
                Err(e) => Some(format!("governor refused: {e}")),
            }
        };
        if let Some(reason) = denied {
            inner.counters.replans_denied += 1;
            inner.events.push(ReoptEvent {
                kind: ReoptEventKind::ReplanDenied,
                node: None,
                estimate: None,
                observed: None,
                detail: reason,
            });
            return false;
        }
        let backoff_ms = self
            .config
            .backoff_base_ms
            .saturating_mul(1u64 << inner.attempts.min(10))
            .min(1_000);
        inner.attempts += 1;
        drop(inner);
        if backoff_ms > 0 {
            std::thread::sleep(Duration::from_millis(backoff_ms));
        }
        true
    }

    /// Records an adopted re-plan.
    pub fn record_replan(&self, node: NodeId, detail: &str) {
        let mut inner = self.inner.lock();
        inner.counters.replans_adopted += 1;
        inner.events.push(ReoptEvent {
            kind: ReoptEventKind::Replan,
            node: Some(node),
            estimate: None,
            observed: None,
            detail: detail.to_string(),
        });
        crate::journal::journal().record(
            crate::journal::EventKind::Replan,
            0,
            crate::journal::NO_ID,
            node.0,
            inner.counters.replans_adopted,
            crate::journal::NO_ID,
        );
    }

    /// Records a retryably failed checkpoint or re-plan (the original
    /// plan continues).
    pub fn record_replan_failure(&self, node: Option<NodeId>, detail: &str) {
        let mut inner = self.inner.lock();
        inner.counters.replan_failures += 1;
        inner.events.push(ReoptEvent {
            kind: ReoptEventKind::ReplanFailed,
            node,
            estimate: None,
            observed: None,
            detail: detail.to_string(),
        });
    }

    /// Records a governor refusal absorbed by degrading the planning
    /// memory grant.
    pub fn record_memory_degrade(&self, node: NodeId, detail: &str) {
        let mut inner = self.inner.lock();
        inner.counters.memory_degradations += 1;
        inner.events.push(ReoptEvent {
            kind: ReoptEventKind::MemoryDegrade,
            node: Some(node),
            estimate: None,
            observed: None,
            detail: detail.to_string(),
        });
        crate::journal::journal().record(
            crate::journal::EventKind::DegradationStep,
            0,
            crate::journal::NO_ID,
            node.0,
            inner.counters.memory_degradations,
            crate::journal::NO_ID,
        );
    }

    /// Records a choose-plan arbitration that applied checkpoint
    /// observations.
    pub fn record_arbitration(&self, node: NodeId, detail: &str) {
        let mut inner = self.inner.lock();
        inner.counters.observed_arbitrations += 1;
        inner.events.push(ReoptEvent {
            kind: ReoptEventKind::Arbitration,
            node: Some(node),
            estimate: None,
            observed: None,
            detail: detail.to_string(),
        });
    }

    /// Reverts to the original plan: records a fallback and suppresses
    /// the observations so subsequent arbitrations reproduce the original
    /// decisions. Retained intermediates stay substitutable — they are
    /// the original plan's own subtree results.
    pub fn record_fallback(&self, detail: &str) {
        let mut inner = self.inner.lock();
        inner.counters.fallbacks += 1;
        inner.suppressed = true;
        inner.events.push(ReoptEvent {
            kind: ReoptEventKind::Fallback,
            node: None,
            estimate: None,
            observed: None,
            detail: detail.to_string(),
        });
    }

    /// Retains a materialized intermediate for reuse, reserving its bytes
    /// with the governor. Returns `false` (and retains nothing) when the
    /// governor refuses — the caller degrades instead of failing.
    pub fn try_retain(
        &self,
        governor: &ResourceGovernor,
        node: NodeId,
        layout: TupleLayout,
        rows: Vec<Tuple>,
    ) -> bool {
        let bytes = (rows.len() * layout.row_bytes) as u64;
        if governor.try_reserve_memory(bytes).is_err() {
            return false;
        }
        let mut inner = self.inner.lock();
        inner.reserved_bytes += bytes;
        inner.materialized.push((node, layout, Arc::new(rows)));
        true
    }

    /// The retained intermediate for `node`, if any — shared, so a plan
    /// that references the node twice serves the same rows twice.
    #[must_use]
    pub fn materialized(&self, node: NodeId) -> Option<(TupleLayout, Arc<Vec<Tuple>>)> {
        self.inner
            .lock()
            .materialized
            .iter()
            .find(|(id, _, _)| *id == node)
            .map(|(_, layout, rows)| (layout.clone(), Arc::clone(rows)))
    }

    /// Returns every retention reservation to the governor (the rows stay
    /// available). Called once before the final run: operators consuming a
    /// [`MaterializedScanExec`] re-reserve as they buffer, and holding the
    /// retention reservation across that would double-charge the grant.
    pub fn release_reservations(&self, governor: &ResourceGovernor) {
        let mut inner = self.inner.lock();
        let bytes = std::mem::take(&mut inner.reserved_bytes);
        drop(inner);
        if bytes > 0 {
            governor.release_memory(bytes);
        }
    }

    /// Counter totals so far.
    #[must_use]
    pub fn counters(&self) -> ReoptCounters {
        self.inner.lock().counters
    }

    /// Escape observations so far — see
    /// [`ReoptReport::escaped_observations`].
    #[must_use]
    pub fn escaped_observations(&self) -> Vec<(NodeId, f64)> {
        self.report().escaped_observations()
    }

    /// The full audit trail.
    #[must_use]
    pub fn report(&self) -> ReoptReport {
        let inner = self.inner.lock();
        ReoptReport {
            events: inner.events.clone(),
            counters: inner.counters,
        }
    }
}

/// A checkpoint probe attached to a pipeline breaker (hash-join build,
/// sort ingest, exchange worker join). Fired once per `open` with the
/// actual cardinality the breaker materialized.
#[derive(Debug, Clone)]
pub(crate) struct ReoptProbe {
    state: Arc<ReoptState>,
    node: NodeId,
    label: String,
    card: Interval,
}

impl ReoptProbe {
    pub(crate) fn new(
        state: Arc<ReoptState>,
        node: NodeId,
        label: &str,
        card: Interval,
    ) -> ReoptProbe {
        ReoptProbe {
            state,
            node,
            label: label.to_string(),
            card,
        }
    }

    /// Records the checkpoint observation.
    pub(crate) fn observe(&self, actual: u64) {
        self.state
            .observe_checkpoint(self.node, &self.label, self.card, actual);
    }
}

/// Serves a retained intermediate result as an ordinary [`Operator`]:
/// the executor's leaf form of "already-materialized work". Like the
/// exchange's merge buffer this is pure transport — the rows were charged
/// (CPU and I/O) when they were first produced, so serving them again
/// charges nothing, keeping counter totals identical to a one-pass run.
pub struct MaterializedScanExec {
    rows: Arc<Vec<Tuple>>,
    layout: TupleLayout,
    ctx: ExecContext,
    pos: usize,
}

impl MaterializedScanExec {
    /// An operator serving `rows` with `layout`.
    #[must_use]
    pub fn new(rows: Arc<Vec<Tuple>>, layout: TupleLayout, ctx: ExecContext) -> Self {
        MaterializedScanExec {
            rows,
            layout,
            ctx,
            pos: 0,
        }
    }
}

impl Operator for MaterializedScanExec {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        self.ctx.governor.check()?;
        let Some(row) = self.rows.get(self.pos) else {
            return Ok(None);
        };
        self.pos += 1;
        Ok(Some(row.clone()))
    }

    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>, ExecError> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.pos + max_rows).min(self.rows.len());
        let mut batch = RowBatch::with_capacity(self.layout.width(), end - self.pos);
        for row in &self.rows[self.pos..end] {
            batch.push_row(row);
        }
        self.pos = end;
        self.ctx.governor.check_batch(batch.len() as u64)?;
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.pos = 0;
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }

    fn estimated_rows(&self) -> Option<u64> {
        Some((self.rows.len() - self.pos.min(self.rows.len())) as u64)
    }
}

/// What one re-optimizing execution reports back.
#[derive(Debug)]
pub struct ReoptOutcome {
    /// Execution accounting (rows, CPU, I/O, fallbacks) across the
    /// checkpoints and the final run.
    pub summary: ExecSummary,
    /// The arbitration in force at completion (the original one if the
    /// query fell back).
    pub startup: StartupResult,
    /// The re-optimization audit trail.
    pub report: ReoptReport,
    /// The query result. This engine materializes results at the root in
    /// every entry point; keeping them here lets callers verify multiset
    /// parity against other execution paths.
    pub rows: Vec<Tuple>,
}

fn grant_bytes(bindings: &Bindings, env: &Environment, catalog: &Catalog) -> usize {
    let pages = bindings
        .memory_pages
        .unwrap_or_else(|| env.memory.expected());
    (pages * catalog.config.page_size as f64) as usize
}

/// Materializes one checkpoint subtree, in the context's execution mode.
/// Compiled dynamically: a checkpoint target may itself contain
/// choose-plan operators, which arbitrate at `open` with the observations
/// accumulated so far.
fn materialize(
    target: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    memory_bytes: usize,
    ctx: &ExecContext,
) -> Result<Vec<Tuple>, ExecError> {
    let mut op = crate::choose::compile_dynamic_plan(
        target,
        db,
        catalog,
        env,
        bindings,
        memory_bytes,
        ctx,
    )?;
    match ctx.mode {
        ExecMode::Tuple => drain(op.as_mut()),
        ExecMode::Batch => drain_batch(op.as_mut()),
    }
}

/// Compiles and drains the full dynamic plan, charging result rows
/// against the row budget exactly as the plain entry points do.
fn run_collect(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    memory_bytes: usize,
    ctx: &ExecContext,
) -> Result<Vec<Tuple>, ExecError> {
    let mut op =
        crate::choose::compile_dynamic_plan(plan, db, catalog, env, bindings, memory_bytes, ctx)?;
    fn collect(
        op: &mut dyn Operator,
        governor: &ResourceGovernor,
        mode: ExecMode,
    ) -> Result<Vec<Tuple>, ExecError> {
        let mut out = Vec::new();
        op.open()?;
        match mode {
            ExecMode::Tuple => {
                while let Some(t) = op.next()? {
                    governor.charge_rows(1)?;
                    out.push(t);
                }
            }
            ExecMode::Batch => {
                while let Some(batch) = op.next_batch(crate::batch::BATCH_CAPACITY)? {
                    governor.charge_rows(batch.len() as u64)?;
                    out.extend(batch.iter());
                }
            }
        }
        Ok(out)
    }
    let result = collect(op.as_mut(), &ctx.governor, ctx.mode);
    op.close();
    result
}

/// Executes a dynamic plan with mid-query re-optimization (see the module
/// docs): checkpoint the blocking inputs, re-arbitrate the remainder on
/// escape within the [`ReoptConfig`] budget, reuse every retained
/// intermediate, degrade gracefully under memory pressure, and fall back
/// to the original plan when re-planning itself fails.
///
/// # Errors
/// Any non-retryable [`ExecError`], or a retryable one that survived the
/// whole degradation ladder.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_reopt(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    limits: ResourceLimits,
    mode: ExecMode,
    dop: usize,
    config: ReoptConfig,
) -> Result<ReoptOutcome, ExecError> {
    reopt_inner(
        plan, db, catalog, env, bindings, limits, mode, dop, config, None,
    )
    .map(|(outcome, _)| outcome)
}

/// [`execute_plan_reopt`] with per-operator tracing; the returned
/// [`TraceReport`] carries the re-optimization audit trail in its
/// `reopt` field.
///
/// # Errors
/// As [`execute_plan_reopt`].
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_reopt_traced(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    limits: ResourceLimits,
    mode: ExecMode,
    dop: usize,
    config: ReoptConfig,
) -> Result<(ReoptOutcome, TraceReport), ExecError> {
    reopt_inner(
        plan,
        db,
        catalog,
        env,
        bindings,
        limits,
        mode,
        dop,
        config,
        Some(Arc::new(Tracer::new())),
    )
}

/// [`execute_plan_reopt`] over a caller-supplied execution context: the
/// context's shared counters, governor (so cooperative cancellation keeps
/// working), mode, DOP, and tracer are all preserved — only a fresh
/// [`ReoptState`] is attached for the duration of this execution. This is
/// the service entry point: a session's accounting and cancellation
/// handle stay live across the re-optimizing run.
///
/// # Errors
/// As [`execute_plan_reopt`].
pub fn execute_plan_reopt_ctx(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    config: ReoptConfig,
    ctx: &ExecContext,
) -> Result<ReoptOutcome, ExecError> {
    let state = Arc::new(ReoptState::new(config));
    let ctx = ctx.clone().with_reopt(Arc::clone(&state));
    drive(plan, db, catalog, env, bindings, &state, &ctx)
}

#[allow(clippy::too_many_arguments)]
fn reopt_inner(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    limits: ResourceLimits,
    mode: ExecMode,
    dop: usize,
    config: ReoptConfig,
    tracer: Option<Arc<Tracer>>,
) -> Result<(ReoptOutcome, TraceReport), ExecError> {
    let state = Arc::new(ReoptState::new(config));
    let mut ctx = ExecContext::with_limits(SharedCounters::new(), limits)
        .with_mode(mode)
        .with_dop(dop)
        .with_reopt(Arc::clone(&state));
    if let Some(t) = &tracer {
        ctx = ctx.with_tracer(Arc::clone(t));
    }
    let outcome = drive(plan, db, catalog, env, bindings, &state, &ctx)?;
    let mut trace = tracer.map(|t| t.report()).unwrap_or_default();
    trace.reopt = outcome.report.clone();
    Ok((outcome, trace))
}

/// The checkpoint-loop driver shared by every re-optimizing entry point;
/// `ctx` already carries `state` on [`ExecContext::reopt`].
fn drive(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    state: &Arc<ReoptState>,
    ctx: &ExecContext,
) -> Result<ReoptOutcome, ExecError> {
    let io_before = db.disk.stats();

    let mut exec_bindings = bindings.clone();
    let mut startup =
        evaluate_startup_observed(plan, catalog, env, &exec_bindings, &state.observations());
    let mut done: HashSet<NodeId> = HashSet::new();
    let mut replanned = false;

    // Checkpoint loop: materialize the blocking inputs along the chosen
    // path deepest-first, observing each and re-arbitrating on escape.
    loop {
        let chosen = chosen_map(&startup.decisions);
        let Some(target) = next_blocking_input(plan, &chosen, &done) else {
            break;
        };
        done.insert(target.id);
        let memory_bytes = grant_bytes(&exec_bindings, env, catalog);
        let rows = match materialize(&target, db, catalog, env, &exec_bindings, memory_bytes, ctx)
        {
            Ok(rows) => rows,
            Err(e) if e.is_retryable() => {
                // A faulted checkpoint is abandoned, not fatal: the final
                // run recomputes the subtree on the original plan.
                state.record_replan_failure(
                    Some(target.id),
                    &format!("checkpoint failed ({e}); continuing original plan"),
                );
                break;
            }
            Err(e) => return Err(e),
        };
        let actual = rows.len() as u64;
        // Escape against the *bind-time* estimate: host variables are
        // bound and prior observations applied, so this interval is what
        // the in-force arbitration actually believed. The compile-time
        // interval on the node is kept deliberately wide for unbound
        // parameters and would mask real drift.
        let estimate = startup
            .estimates
            .get(&target.id)
            .copied()
            .unwrap_or(target.stats.card);
        let escaped = state.observe_checkpoint(target.id, target.op.name(), estimate, actual);
        let layout = crate::choose::layout_of(&target, catalog);
        if !state.try_retain(&ctx.governor, target.id, layout, rows) {
            // Memory pressure: drop the intermediate and re-arbitrate
            // with a halved planning grant, steering the remaining
            // decisions toward the cheapest-memory alternatives.
            let pages = exec_bindings
                .memory_pages
                .unwrap_or_else(|| env.memory.expected());
            let degraded = (pages / 2.0).max(1.0);
            state.record_memory_degrade(
                target.id,
                &format!(
                    "governor refused to retain {actual} rows; planning grant {pages:.0} -> \
                     {degraded:.0} pages"
                ),
            );
            exec_bindings = exec_bindings.with_memory(degraded);
            startup = evaluate_startup_observed(
                plan,
                catalog,
                env,
                &exec_bindings,
                &state.observations(),
            );
            continue;
        }
        if escaped {
            if state.request_replan(&ctx.governor) {
                startup = evaluate_startup_observed(
                    plan,
                    catalog,
                    env,
                    &exec_bindings,
                    &state.observations(),
                );
                state.record_replan(
                    target.id,
                    "re-arbitrated remaining plan with checkpoint observation",
                );
                replanned = true;
            } else {
                break;
            }
        }
    }

    // Final run over the original dynamic plan: choose-plan operators
    // arbitrate with the observations applied and the compiler serves
    // retained intermediates in place of their subtrees.
    state.release_reservations(&ctx.governor);
    let memory_bytes = grant_bytes(&exec_bindings, env, catalog);
    let rows = match run_collect(plan, db, catalog, env, &exec_bindings, memory_bytes, ctx) {
        Ok(rows) => rows,
        Err(e) if e.is_retryable() && replanned => {
            // Last rung before governed failure: suppress the
            // observations and continue the original plan.
            state.record_fallback(&format!(
                "re-planned run failed ({e}); reverting to original arbitration"
            ));
            ctx.counters.add_fallbacks(1);
            exec_bindings = bindings.clone();
            let memory_bytes = grant_bytes(&exec_bindings, env, catalog);
            run_collect(plan, db, catalog, env, &exec_bindings, memory_bytes, ctx)?
        }
        Err(e) => return Err(e),
    };

    // Report the arbitration actually in force at completion (identical
    // inputs reproduce the choose-plan operators' own decisions).
    let startup =
        evaluate_startup_observed(plan, catalog, env, &exec_bindings, &state.observations());
    let io = db.disk.stats().since(&io_before);
    let summary = ExecSummary {
        rows: rows.len() as u64,
        cpu: ctx.counters.snapshot(),
        io,
        fallbacks: ctx.counters.fallbacks(),
        ..ExecSummary::default()
    };
    let report = state.report();
    Ok(ReoptOutcome {
        summary,
        startup,
        report,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::drain;
    use dqep_algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, SelectPred};
    use dqep_catalog::{CatalogBuilder, SystemConfig};
    use dqep_core::Optimizer;
    use dqep_storage::{FaultPlan, ValueDistribution};

    /// The adaptive module's skewed-join shape: a filtered Zipf relation
    /// joined to a second relation. Uniform estimates are badly wrong
    /// about `a < 30`, so the first checkpoint escapes its interval.
    fn skewed_fixture() -> (Catalog, StoredDatabase, Arc<PlanNode>, Environment, Bindings) {
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 800, 512, |r| {
                r.attr("a", 800.0).attr("j", 200.0).btree("a", false).btree("j", false)
            })
            .relation("s", 400, 512, |r| {
                r.attr("a", 400.0).attr("j", 200.0).btree("j", false)
            })
            .build()
            .unwrap();
        let db =
            StoredDatabase::generate_with(&cat, 3, ValueDistribution::Zipf { exponent: 1.1 });
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        let q = LogicalExpr::get(r.id)
            .select(SelectPred::unbound(
                r.attr_id("a").unwrap(),
                CompareOp::Lt,
                HostVar(0),
            ))
            .join(
                LogicalExpr::get(s.id),
                vec![JoinPred::new(r.attr_id("j").unwrap(), s.attr_id("j").unwrap())],
            );
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;
        let bindings = Bindings::new().with_value(HostVar(0), 30);
        (cat, db, plan, env, bindings)
    }

    fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
        rows.sort();
        rows
    }

    fn quick_config() -> ReoptConfig {
        ReoptConfig {
            backoff_base_ms: 0,
            ..ReoptConfig::default()
        }
    }

    /// Baseline result and I/O of the plain dynamic execution.
    fn baseline(
        plan: &Arc<PlanNode>,
        db: &StoredDatabase,
        cat: &Catalog,
        env: &Environment,
        bindings: &Bindings,
    ) -> Vec<Tuple> {
        let grant = grant_bytes(bindings, env, cat);
        let ctx = ExecContext::new(SharedCounters::new());
        let mut op =
            crate::choose::compile_dynamic_plan(plan, db, cat, env, bindings, grant, &ctx)
                .unwrap();
        drain(op.as_mut()).unwrap()
    }

    #[test]
    fn escape_replans_and_reuses_the_intermediate() {
        let (cat, db, plan, env, bindings) = skewed_fixture();
        let grant = grant_bytes(&bindings, &env, &cat);
        let base_rows = baseline(&plan, &db, &cat, &env, &bindings);

        // The checkpoint subtree's own I/O, measured standalone.
        let startup =
            evaluate_startup_observed(&plan, &cat, &env, &bindings, &Observations::new());
        let target =
            next_blocking_input(&plan, &chosen_map(&startup.decisions), &HashSet::new())
                .expect("the join fixture has a blocking input");
        let before = db.disk.stats();
        let ctx = ExecContext::new(SharedCounters::new());
        materialize(&target, &db, &cat, &env, &bindings, grant, &ctx).unwrap();
        let subtree_io = db.disk.stats().since(&before);
        assert!(subtree_io.total() > 0, "the build side reads its relation");

        let before = db.disk.stats();
        let outcome = execute_plan_reopt(
            &plan,
            &db,
            &cat,
            &env,
            &bindings,
            ResourceLimits::unlimited(),
            ExecMode::Batch,
            1,
            quick_config(),
        )
        .unwrap();
        assert_eq!(
            sorted(outcome.rows.clone()),
            sorted(base_rows),
            "re-optimization must preserve the result multiset"
        );
        let c = outcome.report.counters;
        assert!(c.checkpoints >= 1, "blocking input must checkpoint: {c:?}");
        assert!(c.escapes >= 1, "zipf skew must escape the uniform interval: {c:?}");
        assert!(c.replans_adopted >= 1, "escape within budget must re-plan: {c:?}");

        // Intermediate reuse, verified by I/O counters: the adopted plan
        // run from scratch repeats the build side's reads; the reopt run
        // must not (no duplicate build-side reads).
        let reopt_io = db.disk.stats().since(&before);
        let before = db.disk.stats();
        let ctx = ExecContext::new(SharedCounters::new());
        let mut scratch = crate::compile::compile_plan(
            &outcome.startup.resolved,
            &db,
            &cat,
            &bindings,
            grant,
            &ctx,
        )
        .unwrap();
        let scratch_rows = drain(scratch.as_mut()).unwrap().len();
        let scratch_io = db.disk.stats().since(&before);
        assert_eq!(scratch_rows, outcome.rows.len(), "same adopted plan");
        assert!(
            reopt_io.total() < subtree_io.total() + scratch_io.total(),
            "substituting the retained build side must not repeat its reads: \
             reopt {reopt_io:?} vs subtree {subtree_io:?} + scratch {scratch_io:?}"
        );
        assert_eq!(outcome.summary.io.total(), reopt_io.total(), "summary reports query I/O");
    }

    #[test]
    fn faulted_checkpoint_continues_the_original_plan() {
        let (cat, db, plan, env, bindings) = skewed_fixture();
        let base_rows = baseline(&plan, &db, &cat, &env, &bindings);

        // Fail the first read of *every* checkpoint alternative (the
        // choose-plan target has two), so the checkpoint itself dies
        // retryably; the final run's reads start past the schedule and
        // succeed on the original plan.
        db.disk.set_fault_plan(FaultPlan {
            fail_nth_reads: vec![1, 2],
            ..FaultPlan::default()
        });
        let outcome = execute_plan_reopt(
            &plan,
            &db,
            &cat,
            &env,
            &bindings,
            ResourceLimits::unlimited(),
            ExecMode::Batch,
            1,
            quick_config(),
        )
        .unwrap();
        db.disk.set_fault_plan(FaultPlan::none());
        assert_eq!(
            sorted(outcome.rows.clone()),
            sorted(base_rows),
            "a failed checkpoint must not change the answer"
        );
        let c = outcome.report.counters;
        assert!(
            c.replan_failures >= 1,
            "the faulted checkpoint must be recorded: {c:?}"
        );
        assert_eq!(c.replans_adopted, 0, "no observation, no re-plan: {c:?}");
        assert!(outcome
            .report
            .events
            .iter()
            .any(|e| e.kind == ReoptEventKind::ReplanFailed));
    }

    #[test]
    fn memory_pressure_degrades_the_grant_instead_of_failing() {
        let (cat, db, plan, env, bindings) = skewed_fixture();
        let base_rows = baseline(&plan, &db, &cat, &env, &bindings);

        // A memory ceiling too small to retain the materialized build side
        // (hundreds of 512-byte rows): retention is refused, the planning
        // grant degrades, and the query still answers.
        let limits = ResourceLimits {
            memory_bytes: Some(64 * 1024),
            ..ResourceLimits::default()
        };
        let outcome = execute_plan_reopt(
            &plan,
            &db,
            &cat,
            &env,
            &bindings,
            limits,
            ExecMode::Batch,
            1,
            quick_config(),
        )
        .unwrap();
        assert_eq!(
            sorted(outcome.rows.clone()),
            sorted(base_rows),
            "degradation must not change the answer"
        );
        let c = outcome.report.counters;
        assert!(
            c.memory_degradations >= 1,
            "the refused retention must degrade, not fail: {c:?}"
        );
    }

    #[test]
    fn escape_check_uses_drift_slack() {
        let card = Interval::new(10.0, 20.0);
        assert!(!escapes_interval(10.0, card));
        assert!(!escapes_interval(20.4, card), "within half-row slack");
        assert!(escapes_interval(21.0, card));
        assert!(escapes_interval(8.0, card));
        assert!(!escapes_interval(30.0, Interval::new(0.0, 30.0)));
    }

    #[test]
    fn budget_denies_past_max_replans_and_counts() {
        let state = ReoptState::new(ReoptConfig {
            max_replans: 1,
            wall_clock_ms: u64::MAX,
            backoff_base_ms: 0,
        });
        let gov = ResourceGovernor::unlimited();
        assert!(state.request_replan(&gov));
        assert!(!state.request_replan(&gov), "budget of 1 exhausted");
        let counters = state.counters();
        assert_eq!(counters.replans_attempted, 2);
        assert_eq!(counters.replans_denied, 1);
        assert!(state
            .report()
            .events
            .iter()
            .any(|e| e.kind == ReoptEventKind::ReplanDenied));
    }

    #[test]
    fn wall_cap_and_cancellation_deny_replans() {
        let state = ReoptState::new(ReoptConfig {
            max_replans: 10,
            wall_clock_ms: 0,
            backoff_base_ms: 0,
        });
        std::thread::sleep(Duration::from_millis(2));
        assert!(!state.request_replan(&ResourceGovernor::unlimited()));

        let state = ReoptState::new(ReoptConfig {
            max_replans: 10,
            wall_clock_ms: u64::MAX,
            backoff_base_ms: 0,
        });
        let gov = ResourceGovernor::unlimited();
        gov.cancel();
        assert!(!state.request_replan(&gov), "governor has the last word");
    }

    #[test]
    fn retention_is_governed_and_released() {
        let layout = TupleLayout::for_tests(1, 100);
        let gov = ResourceGovernor::new(ResourceLimits {
            memory_bytes: Some(250),
            ..ResourceLimits::default()
        });
        let state = ReoptState::new(ReoptConfig::default());
        assert!(state.try_retain(&gov, NodeId(1), layout.clone(), vec![vec![1], vec![2]]));
        assert_eq!(gov.memory_used(), 200);
        assert!(
            !state.try_retain(&gov, NodeId(2), layout.clone(), vec![vec![3]]),
            "second retention exceeds the grant"
        );
        assert_eq!(gov.memory_used(), 200, "refused retention reserves nothing");
        assert!(state.materialized(NodeId(1)).is_some());
        assert!(state.materialized(NodeId(2)).is_none());
        state.release_reservations(&gov);
        assert_eq!(gov.memory_used(), 0);
        assert!(
            state.materialized(NodeId(1)).is_some(),
            "rows stay available after the reservation returns"
        );
    }

    #[test]
    fn fallback_suppresses_observations() {
        let state = ReoptState::new(ReoptConfig::default());
        state.observe_checkpoint(NodeId(7), "Sort", Interval::new(0.0, 5.0), 100);
        assert_eq!(state.observations().len(), 1);
        assert_eq!(state.escaped_observations(), vec![(NodeId(7), 100.0)]);
        state.record_fallback("test");
        assert!(state.observations().is_empty());
        assert_eq!(state.counters().fallbacks, 1);
    }

    #[test]
    fn materialized_scan_serves_rows_in_both_modes() {
        let layout = TupleLayout::for_tests(1, 16);
        let rows = Arc::new(vec![vec![1i64], vec![2], vec![3]]);
        for mode in [ExecMode::Tuple, ExecMode::Batch] {
            let ctx = ExecContext::new(SharedCounters::new()).with_mode(mode);
            let mut op = MaterializedScanExec::new(Arc::clone(&rows), layout.clone(), ctx);
            let got = match mode {
                ExecMode::Tuple => drain(&mut op).unwrap(),
                ExecMode::Batch => drain_batch(&mut op).unwrap(),
            };
            assert_eq!(got, *rows);
            // Re-open serves again from the start.
            let again = drain(&mut op).unwrap();
            assert_eq!(again, *rows);
        }
    }
}
