//! Index nested-loop join: probe the inner relation's B-tree per outer
//! tuple.

use dqep_catalog::IndexId;
use dqep_storage::{BufferPool, SlottedPage, StoredTable};

use crate::filter::ResolvedPred;
use crate::metrics::SharedCounters;
use crate::tuple::{Tuple, TupleLayout};
use crate::Operator;

/// Index join: for each outer tuple, look up matching inner records
/// through the inner relation's B-tree, fetch them, and apply the
/// residual selection and any extra join predicates. Preserves the
/// outer's order.
///
/// Inner record fetches go through a [`BufferPool`] sized to the query's
/// memory grant: repeated probes for popular keys hit the cache, which is
/// the executable counterpart of the cost model's assumption that probe
/// I/O is bounded by one leaf access plus the matching fetches.
pub struct IndexJoinExec<'a> {
    outer: Box<dyn Operator + 'a>,
    inner: &'a StoredTable,
    pool: BufferPool,
    index: IndexId,
    /// Position of the indexed join attribute within the outer layout.
    outer_key: usize,
    /// Extra equi-join checks: (outer position, inner attribute position).
    extra: Vec<(usize, usize)>,
    /// The inner relation's selection predicate, positions within the
    /// inner record.
    residual: Option<ResolvedPred>,
    layout: TupleLayout,
    counters: SharedCounters,
    pending: Vec<Tuple>,
}

impl<'a> IndexJoinExec<'a> {
    /// Creates an index join.
    #[must_use]
    pub fn new(
        outer: Box<dyn Operator + 'a>,
        inner: &'a StoredTable,
        inner_layout: &TupleLayout,
        index: IndexId,
        outer_key: usize,
        extra: Vec<(usize, usize)>,
        residual: Option<ResolvedPred>,
        counters: SharedCounters,
        pool_pages: usize,
    ) -> Self {
        let layout = outer.layout().concat(inner_layout);
        let pool = BufferPool::new(inner.heap.disk().clone(), pool_pages.max(1));
        IndexJoinExec {
            outer,
            inner,
            pool,
            index,
            outer_key,
            extra,
            residual,
            layout,
            counters,
            pending: Vec::new(),
        }
    }
}

impl Operator for IndexJoinExec<'_> {
    fn open(&mut self) {
        self.outer.open();
        self.pending.clear();
    }

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(t) = self.pending.pop() {
                return Some(t);
            }
            let outer = self.outer.next()?;
            let key = outer[self.outer_key];
            let tree = &self.inner.indexes[&self.index];
            for rid in tree.lookup(key) {
                let page = SlottedPage::from_bytes(self.pool.read(rid.page));
                let record = page.get(rid.slot).expect("index rid valid").to_vec();
                let inner = self.inner.decode(&record);
                self.counters.add_compares(1);
                if let Some(residual) = &self.residual {
                    if !residual.matches(&inner) {
                        continue;
                    }
                }
                if !self.extra.iter().all(|&(o, i)| outer[o] == inner[i]) {
                    continue;
                }
                let mut joined = outer.clone();
                joined.extend_from_slice(&inner);
                self.counters.add_records(1);
                self.pending.push(joined);
            }
            self.pending.reverse();
        }
    }

    fn close(&mut self) {
        self.outer.close();
        self.pending.clear();
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }
}
