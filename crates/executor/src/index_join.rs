//! Index nested-loop join: probe the inner relation's B-tree per outer
//! tuple.

use dqep_catalog::IndexId;
use dqep_storage::{BufferPool, SlottedPage, StorageError, StoredTable};

use crate::error::ExecError;
use crate::filter::ResolvedPred;
use crate::governor::ExecContext;
use crate::tuple::{Tuple, TupleLayout};
use crate::{BoxedOperator, Operator};

/// Index join: for each outer tuple, look up matching inner records
/// through the inner relation's B-tree, fetch them, and apply the
/// residual selection and any extra join predicates. Preserves the
/// outer's order.
///
/// Inner record fetches go through a [`BufferPool`] sized to the query's
/// memory grant: repeated probes for popular keys hit the cache, which is
/// the executable counterpart of the cost model's assumption that probe
/// I/O is bounded by one leaf access plus the matching fetches.
pub struct IndexJoinExec<'a> {
    outer: BoxedOperator<'a>,
    inner: &'a StoredTable,
    pool: BufferPool,
    index: IndexId,
    /// Position of the indexed join attribute within the outer layout.
    outer_key: usize,
    /// Extra equi-join checks: (outer position, inner attribute position).
    extra: Vec<(usize, usize)>,
    /// The inner relation's selection predicate, positions within the
    /// inner record.
    residual: Option<ResolvedPred>,
    layout: TupleLayout,
    ctx: ExecContext,
    pending: Vec<Tuple>,
}

impl<'a> IndexJoinExec<'a> {
    /// Creates an index join.
    ///
    /// # Errors
    /// [`ExecError::Storage`] if the buffer pool cannot be created.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        outer: BoxedOperator<'a>,
        inner: &'a StoredTable,
        inner_layout: &TupleLayout,
        index: IndexId,
        outer_key: usize,
        extra: Vec<(usize, usize)>,
        residual: Option<ResolvedPred>,
        ctx: ExecContext,
        pool_pages: usize,
    ) -> Result<Self, ExecError> {
        let layout = outer.layout().concat(inner_layout);
        let pool = BufferPool::new(inner.heap.disk().clone(), pool_pages.max(1))?;
        Ok(IndexJoinExec {
            outer,
            inner,
            pool,
            index,
            outer_key,
            extra,
            residual,
            layout,
            ctx,
            pending: Vec::new(),
        })
    }
}

impl Operator for IndexJoinExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.outer.open()?;
        self.pending.clear();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        loop {
            self.ctx.governor.check()?;
            if let Some(t) = self.pending.pop() {
                return Ok(Some(t));
            }
            let Some(outer) = self.outer.next()? else {
                return Ok(None);
            };
            let key = outer[self.outer_key];
            let tree = &self.inner.indexes[&self.index];
            for rid in tree.lookup(key)? {
                let misses_before = self.pool.misses();
                let page = SlottedPage::from_bytes(self.pool.read(rid.page)?);
                if self.pool.misses() > misses_before {
                    self.ctx.governor.charge_io(1)?;
                }
                let record = page
                    .get(rid.slot)
                    .ok_or(ExecError::Storage(StorageError::RecordNotFound {
                        page: rid.page,
                        slot: rid.slot,
                    }))?
                    .to_vec();
                let inner = self.inner.decode(&record);
                self.ctx.counters.add_compares(1);
                if let Some(residual) = &self.residual {
                    if !residual.matches(&inner) {
                        continue;
                    }
                }
                if !self.extra.iter().all(|&(o, i)| outer[o] == inner[i]) {
                    continue;
                }
                let mut joined = outer.clone();
                joined.extend_from_slice(&inner);
                self.ctx.counters.add_records(1);
                self.pending.push(joined);
            }
            self.pending.reverse();
        }
    }

    fn close(&mut self) {
        self.outer.close();
        self.pending.clear();
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }
}
