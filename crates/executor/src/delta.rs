//! Delta propagation: incremental (DBSP-style) maintenance of resolved
//! plans.
//!
//! A [`Delta`] is a pair of columnar [`RowBatch`]es — multiset inserts and
//! deletes. [`compile_delta_plan`] turns a **resolved** (choose-plan-free)
//! physical plan into a [`DeltaPipeline`] of delta-propagating operator
//! variants:
//!
//! * scans become per-relation delta **sources** (a filtered B-tree scan
//!   carries its predicate along),
//! * filters apply their predicate to inserts and deletes alike,
//! * joins retain **two-sided multiset state** keyed by the join keys and
//!   propagate `Δ(L ⋈ R) = ΔL ⋈ R_old + L_new ⋈ ΔR` (the second term
//!   runs against the already-updated left state, which folds the
//!   `ΔL ⋈ ΔR` cross term in),
//! * sort maintains an ordered multiset so an ordered snapshot of the
//!   view is available without re-sorting.
//!
//! Feeding a *full* delta (every stored row as an insert) through a fresh
//! pipeline materializes the view and seeds the retained state in one
//! pass; afterwards each committed write batch costs work proportional to
//! the delta, not the data. Retained-state growth is reserved against the
//! caller's [`ResourceGovernor`], so live views obey the same memory
//! discipline as blocking operators.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use dqep_algebra::PhysicalOp;
use dqep_catalog::{Catalog, RelationId};
use dqep_cost::Bindings;
use dqep_plan::PlanNode;

use crate::batch::RowBatch;
use crate::compile::{orient, resolve_pred};
use crate::error::ExecError;
use crate::filter::ResolvedPred;
use crate::governor::{ExecContext, ResourceGovernor};
use crate::tuple::{Tuple, TupleLayout};

/// A multiset change: rows added and rows removed, in columnar layout.
/// Duplicates are represented physically — a row inserted twice appears
/// twice in `inserts`.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Rows added.
    pub inserts: RowBatch,
    /// Rows removed.
    pub deletes: RowBatch,
}

impl Delta {
    /// An empty delta of `width`-attribute rows.
    #[must_use]
    pub fn new(width: usize) -> Delta {
        Delta {
            inserts: RowBatch::with_capacity(width, 0),
            deletes: RowBatch::with_capacity(width, 0),
        }
    }

    /// Whether the delta changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total changed rows (inserts plus deletes).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }
}

/// Per-relation base-table deltas of one committed write batch.
pub type BaseDeltas = HashMap<RelationId, Delta>;

/// Retained join-side state: join key → (row → multiplicity). Counts are
/// strictly positive; rows vanish when their count reaches zero.
type JoinState = HashMap<Vec<i64>, HashMap<Tuple, i64>>;

/// One operator of the delta pipeline.
#[derive(Debug)]
enum DeltaNode {
    /// Base-table delta source, with the pushed-down scan predicate of a
    /// `Filter-B-tree-Scan` (or an index join's residual) when present.
    Source {
        relation: RelationId,
        filter: Option<ResolvedPred>,
        width: usize,
    },
    /// Predicate over both sides of the child delta.
    Filter {
        child: Box<DeltaNode>,
        pred: ResolvedPred,
    },
    /// Equi-join with retained two-sided state. Hash, merge, and index
    /// joins all propagate deltas identically — the algorithms differ
    /// only in how they compute the *initial* result, which the live view
    /// takes from the ordinary executor.
    Join {
        left: Box<DeltaNode>,
        right: Box<DeltaNode>,
        /// (left position, right position) per conjunct.
        keys: Vec<(usize, usize)>,
        left_state: JoinState,
        right_state: JoinState,
        left_width: usize,
        right_width: usize,
        /// Approximate retained bytes, maintained incrementally.
        bytes: u64,
    },
    /// Order maintenance: an ordered multiset of the child's rows keyed by
    /// the sort attribute. Deltas pass through unchanged; the ordered
    /// contents are served from [`DeltaPipeline::ordered_snapshot`].
    Sort {
        child: Box<DeltaNode>,
        key: usize,
        state: BTreeMap<(i64, Tuple), i64>,
        bytes: u64,
    },
}

/// A compiled delta-propagating pipeline for one resolved plan, with its
/// retained operator state.
#[derive(Debug)]
pub struct DeltaPipeline {
    root: DeltaNode,
    layout: TupleLayout,
    /// Bytes currently reserved with the governor for retained state.
    reserved: u64,
}

/// Compiles a **resolved** (choose-plan-free) physical plan into a delta
/// pipeline with empty retained state. Seed the state by applying a full
/// delta (all stored rows as inserts) — its output is the materialized
/// view.
///
/// # Errors
/// [`ExecError::UnresolvedChoosePlan`] on a choose-plan node; unbound
/// host variables and predicate mismatches from predicate resolution.
pub fn compile_delta_plan(
    node: &Arc<PlanNode>,
    catalog: &Catalog,
    bindings: &Bindings,
) -> Result<DeltaPipeline, ExecError> {
    let (root, layout) = build(node, catalog, bindings)?;
    Ok(DeltaPipeline { root, layout, reserved: 0 })
}

fn build(
    node: &Arc<PlanNode>,
    catalog: &Catalog,
    bindings: &Bindings,
) -> Result<(DeltaNode, TupleLayout), ExecError> {
    Ok(match &node.op {
        PhysicalOp::FileScan { relation } | PhysicalOp::BtreeScan { relation, .. } => {
            let layout = TupleLayout::base(catalog, *relation);
            let width = layout.width();
            (DeltaNode::Source { relation: *relation, filter: None, width }, layout)
        }
        PhysicalOp::FilterBtreeScan { relation, predicate, .. } => {
            let layout = TupleLayout::base(catalog, *relation);
            let filter = Some(resolve_pred(predicate, &layout, bindings)?);
            let width = layout.width();
            (DeltaNode::Source { relation: *relation, filter, width }, layout)
        }
        PhysicalOp::Filter { predicate } => {
            let (child, layout) = build(&node.children[0], catalog, bindings)?;
            let pred = resolve_pred(predicate, &layout, bindings)?;
            (DeltaNode::Filter { child: Box::new(child), pred }, layout)
        }
        PhysicalOp::HashJoin { predicates } | PhysicalOp::MergeJoin { predicates } => {
            let (left, ll) = build(&node.children[0], catalog, bindings)?;
            let (right, rl) = build(&node.children[1], catalog, bindings)?;
            let keys = predicates
                .iter()
                .map(|p| orient(p, &ll, &rl))
                .collect::<Result<Vec<_>, _>>()?;
            let out = ll.concat(&rl);
            (
                DeltaNode::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    keys,
                    left_state: JoinState::new(),
                    right_state: JoinState::new(),
                    left_width: ll.width(),
                    right_width: rl.width(),
                    bytes: 0,
                },
                out,
            )
        }
        PhysicalOp::IndexJoin { predicates, inner, residual, .. } => {
            let (left, ll) = build(&node.children[0], catalog, bindings)?;
            let rl = TupleLayout::base(catalog, *inner);
            let filter = residual
                .as_ref()
                .map(|p| resolve_pred(p, &rl, bindings))
                .transpose()?;
            let right = DeltaNode::Source {
                relation: *inner,
                filter,
                width: rl.width(),
            };
            let keys = predicates
                .iter()
                .map(|p| orient(p, &ll, &rl))
                .collect::<Result<Vec<_>, _>>()?;
            let out = ll.concat(&rl);
            (
                DeltaNode::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    keys,
                    left_state: JoinState::new(),
                    right_state: JoinState::new(),
                    left_width: ll.width(),
                    right_width: rl.width(),
                    bytes: 0,
                },
                out,
            )
        }
        PhysicalOp::Sort { attr } => {
            let (child, layout) = build(&node.children[0], catalog, bindings)?;
            let key = layout
                .position(*attr)
                .ok_or_else(|| ExecError::PredicateMismatch(format!("sort key {attr}")))?;
            (
                DeltaNode::Sort {
                    child: Box::new(child),
                    key,
                    state: BTreeMap::new(),
                    bytes: 0,
                },
                layout,
            )
        }
        PhysicalOp::ChoosePlan => return Err(ExecError::UnresolvedChoosePlan),
    })
}

impl DeltaPipeline {
    /// The output row layout.
    #[must_use]
    pub fn layout(&self) -> &TupleLayout {
        &self.layout
    }

    /// The distinct base relations this pipeline consumes deltas of.
    #[must_use]
    pub fn relations(&self) -> Vec<RelationId> {
        let mut out = Vec::new();
        collect_relations(&self.root, &mut out);
        out.dedup();
        out
    }

    /// Propagates one committed write batch through the pipeline,
    /// returning the output delta and updating retained state. Rows
    /// processed are charged to the context's CPU counters and checked
    /// against the governor (budgets, cancellation); retained-state
    /// growth is reserved against the governor's memory grant.
    ///
    /// # Errors
    /// [`ExecError::ResourceExhausted`] when a budget trips or state no
    /// longer fits the memory grant; [`ExecError::Cancelled`] under
    /// cooperative cancellation. Retained state stays consistent either
    /// way — only the reservation, not the propagation, can fail after
    /// state is touched.
    pub fn apply(&mut self, base: &BaseDeltas, ctx: &ExecContext) -> Result<Delta, ExecError> {
        let before = node_bytes(&self.root);
        let out = self.root.apply(base, ctx)?;
        let after = node_bytes(&self.root);
        if after > before {
            let grow = after - before;
            ctx.governor.try_reserve_memory(grow)?;
            self.reserved += grow;
        } else {
            let shrink = (before - after).min(self.reserved);
            ctx.governor.release_memory(shrink);
            self.reserved -= shrink;
        }
        ctx.governor.charge_rows(out.rows() as u64)?;
        Ok(out)
    }

    /// Rows retained across all join and sort states (a size probe for
    /// metrics and tests).
    #[must_use]
    pub fn state_bytes(&self) -> u64 {
        node_bytes(&self.root)
    }

    /// The view contents in sort order, when the pipeline's root
    /// maintains one (the plan ended in a `Sort`). `None` for unordered
    /// views — snapshot from the caller's own multiset instead.
    #[must_use]
    pub fn ordered_snapshot(&self) -> Option<Vec<Tuple>> {
        match &self.root {
            DeltaNode::Sort { state, .. } => {
                let mut out = Vec::new();
                for ((_, row), &count) in state {
                    for _ in 0..count {
                        out.push(row.clone());
                    }
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Releases the pipeline's retained-state memory reservation back to
    /// `governor`. Call before dropping a pipeline whose reservations were
    /// made through a long-lived context (a live view being rebuilt).
    pub fn release(&mut self, governor: &ResourceGovernor) {
        governor.release_memory(self.reserved);
        self.reserved = 0;
    }
}

fn collect_relations(node: &DeltaNode, out: &mut Vec<RelationId>) {
    match node {
        DeltaNode::Source { relation, .. } => out.push(*relation),
        DeltaNode::Filter { child, .. } | DeltaNode::Sort { child, .. } => {
            collect_relations(child, out);
        }
        DeltaNode::Join { left, right, .. } => {
            collect_relations(left, out);
            collect_relations(right, out);
        }
    }
}

fn node_bytes(node: &DeltaNode) -> u64 {
    match node {
        DeltaNode::Source { .. } => 0,
        DeltaNode::Filter { child, .. } => node_bytes(child),
        DeltaNode::Join { left, right, bytes, .. } => {
            bytes + node_bytes(left) + node_bytes(right)
        }
        DeltaNode::Sort { child, bytes, .. } => bytes + node_bytes(child),
    }
}

/// Copies `batch`'s live rows into `out`, keeping only those matching
/// `filter` when present.
fn copy_filtered(batch: &RowBatch, filter: Option<&ResolvedPred>, out: &mut RowBatch) {
    let mut row = Vec::with_capacity(batch.width());
    for i in batch.selected_indices() {
        row.clear();
        batch.gather_row_into(i, &mut row);
        if filter.is_none_or(|p| p.matches(&row)) {
            out.push_row(&row);
        }
    }
}

/// Applies `sign` multiplicity of `row` under `key` to a join side.
fn integrate(state: &mut JoinState, bytes: &mut u64, key: Vec<i64>, row: Tuple, sign: i64) {
    let row_bytes = ((key.len() + row.len() + 2) * 8) as u64;
    let rows = state.entry(key).or_default();
    let count = rows.entry(row).or_insert(0);
    *count += sign;
    if *count > 0 && sign > 0 {
        *bytes += row_bytes;
    } else if sign < 0 {
        *bytes = bytes.saturating_sub(row_bytes);
    }
    if *count <= 0 {
        // Remove dead rows so state size tracks live contents. The
        // re-lookup is on the same key the entry API just hashed.
        let dead = rows
            .iter()
            .find_map(|(r, &c)| (c <= 0).then(|| r.clone()));
        if let Some(r) = dead {
            rows.remove(&r);
        }
    }
}

impl DeltaNode {
    fn apply(&mut self, base: &BaseDeltas, ctx: &ExecContext) -> Result<Delta, ExecError> {
        match self {
            DeltaNode::Source { relation, filter, width } => {
                let mut out = Delta::new(*width);
                if let Some(d) = base.get(relation) {
                    ctx.governor.check_batch(d.rows() as u64)?;
                    ctx.counters.add_records(d.rows() as u64);
                    copy_filtered(&d.inserts, filter.as_ref(), &mut out.inserts);
                    copy_filtered(&d.deletes, filter.as_ref(), &mut out.deletes);
                }
                Ok(out)
            }
            DeltaNode::Filter { child, pred } => {
                let d = child.apply(base, ctx)?;
                ctx.counters.add_compares(d.rows() as u64);
                let mut out = Delta::new(d.inserts.width());
                copy_filtered(&d.inserts, Some(pred), &mut out.inserts);
                copy_filtered(&d.deletes, Some(pred), &mut out.deletes);
                Ok(out)
            }
            DeltaNode::Join {
                left,
                right,
                keys,
                left_state,
                right_state,
                left_width,
                right_width,
                bytes,
            } => {
                let dl = left.apply(base, ctx)?;
                let dr = right.apply(base, ctx)?;
                ctx.governor.check_batch((dl.rows() + dr.rows()) as u64)?;
                ctx.counters.add_hashes((dl.rows() + dr.rows()) as u64);
                let mut out = Delta::new(*left_width + *right_width);
                let lkeys: Vec<usize> = keys.iter().map(|&(l, _)| l).collect();
                let rkeys: Vec<usize> = keys.iter().map(|&(_, r)| r).collect();
                // ΔL ⋈ R_old.
                emit_joined(&dl.inserts, right_state, &lkeys, false, &mut out.inserts);
                emit_joined(&dl.deletes, right_state, &lkeys, false, &mut out.deletes);
                // L_new = L_old + ΔL.
                apply_side(left_state, bytes, &dl, &lkeys);
                // L_new ⋈ ΔR (folds the ΔL ⋈ ΔR cross term in).
                emit_joined(&dr.inserts, left_state, &rkeys, true, &mut out.inserts);
                emit_joined(&dr.deletes, left_state, &rkeys, true, &mut out.deletes);
                apply_side(right_state, bytes, &dr, &rkeys);
                Ok(out)
            }
            DeltaNode::Sort { child, key, state, bytes } => {
                let d = child.apply(base, ctx)?;
                ctx.counters.add_compares(d.rows() as u64);
                let mut row = Vec::new();
                for i in d.inserts.selected_indices() {
                    row.clear();
                    d.inserts.gather_row_into(i, &mut row);
                    let entry = (row[*key], row.clone());
                    *bytes += ((row.len() + 3) * 8) as u64;
                    *state.entry(entry).or_insert(0) += 1;
                }
                for i in d.deletes.selected_indices() {
                    row.clear();
                    d.deletes.gather_row_into(i, &mut row);
                    let entry = (row[*key], row.clone());
                    *bytes = bytes.saturating_sub(((row.len() + 3) * 8) as u64);
                    if let Some(count) = state.get_mut(&entry) {
                        *count -= 1;
                        if *count <= 0 {
                            state.remove(&entry);
                        }
                    }
                }
                Ok(d)
            }
        }
    }
}

/// Joins each live row of `rows` against the matching side state, pushing
/// the concatenated outputs (state row left or right depending on
/// `state_is_left`) once per multiplicity.
fn emit_joined(
    rows: &RowBatch,
    state: &JoinState,
    key_pos: &[usize],
    state_is_left: bool,
    out: &mut RowBatch,
) {
    let mut row = Vec::with_capacity(rows.width());
    let mut key = Vec::with_capacity(key_pos.len());
    for i in rows.selected_indices() {
        row.clear();
        rows.gather_row_into(i, &mut row);
        key.clear();
        key.extend(key_pos.iter().map(|&p| row[p]));
        if let Some(matches) = state.get(&key) {
            for (other, &count) in matches {
                for _ in 0..count {
                    if state_is_left {
                        out.push_concat(other, &row);
                    } else {
                        out.push_concat(&row, other);
                    }
                }
            }
        }
    }
}

/// Integrates a delta into one join side's retained state.
fn apply_side(state: &mut JoinState, bytes: &mut u64, d: &Delta, key_pos: &[usize]) {
    let mut row = Vec::new();
    for i in d.inserts.selected_indices() {
        row.clear();
        d.inserts.gather_row_into(i, &mut row);
        let key: Vec<i64> = key_pos.iter().map(|&p| row[p]).collect();
        integrate(state, bytes, key, row.clone(), 1);
    }
    for i in d.deletes.selected_indices() {
        row.clear();
        d.deletes.gather_row_into(i, &mut row);
        let key: Vec<i64> = key_pos.iter().map(|&p| row[p]).collect();
        integrate(state, bytes, key, row.clone(), -1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::drain;
    use crate::governor::{ExecContext, ResourceLimits};
    use crate::metrics::SharedCounters;
    use dqep_algebra::{CompareOp, HostVar, JoinPred, LogicalExpr, PhysProps, SelectPred};
    use dqep_catalog::{CatalogBuilder, SystemConfig};
    use dqep_core::Optimizer;
    use dqep_cost::Environment;
    use dqep_plan::evaluate_startup;
    use dqep_storage::StoredDatabase;

    fn fixture() -> (Catalog, StoredDatabase) {
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 300, 512, |r| {
                r.attr("a", 300.0).attr("j", 40.0).btree("a", false)
            })
            .relation("s", 200, 512, |r| {
                r.attr("a", 200.0).attr("j", 40.0).btree("a", false)
            })
            .build()
            .unwrap();
        let db = StoredDatabase::generate(&cat, 11);
        (cat, db)
    }

    /// Full-table deltas: every stored row as an insert.
    fn full_deltas(cat: &Catalog, db: &StoredDatabase, rels: &[RelationId]) -> BaseDeltas {
        let mut out = BaseDeltas::new();
        for &rel in rels {
            let table = db.table(rel);
            let width = cat.relation(rel).attributes.len();
            let delta = out.entry(rel).or_insert_with(|| Delta::new(width));
            for rec in table.heap.scan() {
                delta.inserts.push_row(&table.decode(&rec.unwrap()));
            }
        }
        out
    }

    fn join_plan(cat: &Catalog, env: &Environment) -> Arc<PlanNode> {
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        let q = LogicalExpr::get(r.id)
            .select(SelectPred::unbound(
                r.attr_id("a").unwrap(),
                CompareOp::Lt,
                HostVar(0),
            ))
            .join(
                LogicalExpr::get(s.id),
                vec![JoinPred::new(r.attr_id("j").unwrap(), s.attr_id("j").unwrap())],
            );
        Optimizer::new(cat, env).optimize(&q).unwrap().plan
    }

    fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
        rows.sort_unstable();
        rows
    }

    fn executed_rows(
        plan: &Arc<PlanNode>,
        db: &StoredDatabase,
        cat: &Catalog,
        bindings: &Bindings,
    ) -> Vec<Tuple> {
        let ctx = ExecContext::new(SharedCounters::new());
        let mut op = crate::compile_plan(plan, db, cat, bindings, 1 << 22, &ctx).unwrap();
        drain(op.as_mut()).unwrap()
    }

    #[test]
    fn full_delta_materializes_the_view() {
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = join_plan(&cat, &env);
        let bindings = Bindings::new().with_value(HostVar(0), 120);
        let startup = evaluate_startup(&plan, &cat, &env, &bindings);

        let mut pipe = compile_delta_plan(&startup.resolved, &cat, &bindings).unwrap();
        let rels = pipe.relations();
        let ctx = ExecContext::new(SharedCounters::new());
        let out = pipe.apply(&full_deltas(&cat, &db, &rels), &ctx).unwrap();
        assert!(out.deletes.is_empty());

        let expected = executed_rows(&startup.resolved, &db, &cat, &bindings);
        assert_eq!(sorted(out.inserts.to_tuples()), sorted(expected));
        assert!(pipe.state_bytes() > 0, "join state retained");
    }

    #[test]
    fn incremental_matches_rerun_after_writes() {
        let (cat, mut db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = join_plan(&cat, &env);
        let bindings = Bindings::new().with_value(HostVar(0), 150);
        let startup = evaluate_startup(&plan, &cat, &env, &bindings);
        let mut pipe = compile_delta_plan(&startup.resolved, &cat, &bindings).unwrap();
        let rels = pipe.relations();
        let ctx = ExecContext::new(SharedCounters::new());

        // Materialize.
        let mut view: HashMap<Tuple, i64> = HashMap::new();
        let init = pipe.apply(&full_deltas(&cat, &db, &rels), &ctx).unwrap();
        for t in init.inserts.iter() {
            *view.entry(t).or_insert(0) += 1;
        }

        let r = cat.relation_by_name("r").unwrap().id;
        let s = cat.relation_by_name("s").unwrap().id;
        // A few commits of interleaved writes, including rows on both
        // sides of the filter and a delete of a just-inserted row.
        let commits: Vec<Vec<(RelationId, Vec<i64>, bool)>> = vec![
            vec![(r, vec![10, 7], true), (s, vec![50, 7], true)],
            vec![(r, vec![10, 7], false), (r, vec![250, 3], true)],
            vec![(s, vec![50, 7], true), (s, vec![50, 7], false)],
        ];
        for ops in commits {
            let mut base = BaseDeltas::new();
            for (rel, values, is_insert) in ops {
                if is_insert {
                    db.insert(&cat, rel, &values).unwrap();
                    base.entry(rel)
                        .or_insert_with(|| Delta::new(values.len()))
                        .inserts
                        .push_row(&values);
                } else {
                    assert!(db.delete(&cat, rel, &values).unwrap().is_some());
                    base.entry(rel)
                        .or_insert_with(|| Delta::new(values.len()))
                        .deletes
                        .push_row(&values);
                }
            }
            let out = pipe.apply(&base, &ctx).unwrap();
            for t in out.inserts.iter() {
                *view.entry(t).or_insert(0) += 1;
            }
            for t in out.deletes.iter() {
                let count = view.entry(t.clone()).or_insert(0);
                *count -= 1;
                if *count == 0 {
                    view.remove(&t);
                }
            }
            // Parity: the maintained multiset equals a fresh execution.
            let mut maintained = Vec::new();
            for (row, &count) in &view {
                assert!(count > 0, "no negative multiplicities");
                for _ in 0..count {
                    maintained.push(row.clone());
                }
            }
            let expected = executed_rows(&startup.resolved, &db, &cat, &bindings);
            assert_eq!(sorted(maintained), sorted(expected));
        }
    }

    #[test]
    fn sorted_view_maintains_order() {
        let (cat, mut db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let r = cat.relation_by_name("r").unwrap();
        // ORDER BY via required root properties (Sort enforcer or an
        // order-delivering access path — either maintains order here).
        let q = LogicalExpr::get(r.id).select(SelectPred::unbound(
            r.attr_id("a").unwrap(),
            CompareOp::Lt,
            HostVar(0),
        ));
        let plan = Optimizer::new(&cat, &env)
            .optimize_with_props(&q, PhysProps::sorted(r.attr_id("j").unwrap()))
            .unwrap()
            .plan;
        let bindings = Bindings::new().with_value(HostVar(0), 100);
        let startup = evaluate_startup(&plan, &cat, &env, &bindings);
        let mut pipe = compile_delta_plan(&startup.resolved, &cat, &bindings).unwrap();
        let rels = pipe.relations();
        let ctx = ExecContext::new(SharedCounters::new());
        pipe.apply(&full_deltas(&cat, &db, &rels), &ctx).unwrap();

        db.insert(&cat, r.id, &[5, 0]).unwrap();
        let mut base = BaseDeltas::new();
        base.entry(r.id).or_insert_with(|| Delta::new(2)).inserts.push_row(&[5, 0]);
        pipe.apply(&base, &ctx).unwrap();

        let snapshot = pipe.ordered_snapshot().expect("sort root maintains order");
        assert!(snapshot.windows(2).all(|w| w[0][1] <= w[1][1]), "ordered by j");
        let expected = executed_rows(&startup.resolved, &db, &cat, &bindings);
        assert_eq!(snapshot.len(), expected.len());
        assert_eq!(sorted(snapshot), sorted(expected));
    }

    #[test]
    fn state_growth_is_governed() {
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = join_plan(&cat, &env);
        let bindings = Bindings::new().with_value(HostVar(0), 300);
        let startup = evaluate_startup(&plan, &cat, &env, &bindings);
        let mut pipe = compile_delta_plan(&startup.resolved, &cat, &bindings).unwrap();
        let rels = pipe.relations();
        let limits = ResourceLimits {
            memory_bytes: Some(4 * 1024),
            ..ResourceLimits::unlimited()
        };
        let ctx = ExecContext::with_limits(SharedCounters::new(), limits);
        let err = pipe.apply(&full_deltas(&cat, &db, &rels), &ctx).unwrap_err();
        assert!(err.is_retryable(), "memory refusal is retryable: {err}");
        // Releasing returns the reservation.
        pipe.release(&ctx.governor);
        assert_eq!(ctx.governor.memory_used(), 0);
    }
}
