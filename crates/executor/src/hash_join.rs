//! Hash join: in-memory when the build input fits the memory grant,
//! Grace-partitioned otherwise — serial or partition-parallel.
//!
//! The build side is the **left** input (the optimizer's convention; the
//! commutativity rule generates the swapped variant). When the build input
//! exceeds the memory budget, both inputs are partitioned by join-key hash
//! into accounted temporary files, then each partition pair is joined in
//! memory — the extra write+read pass over both inputs is exactly what the
//! cost model charges.
//!
//! **Vectorized path.** In batch mode the resident join is
//! radix-partitioned and fully columnar: build rows are ingested straight
//! into per-attribute vectors ([`ColumnStore`]), hashed with one
//! multiply-xor pass per key *column* (the auto-vectorizable
//! [`fold_hash_column`] kernel — each row's hash is bit-identical to the
//! row-at-a-time [`hash_key`]), then scattered histogram → prefix-sum into
//! cache-sized partitions whose chained bucket arrays replace the
//! `HashMap` — probing re-uses the hash computed at partition time, walks
//! an index chain instead of re-hashing through SipHash, and gathers match
//! pairs into the output batch column by column. Partition count scales
//! with the build size (one partition per L2-sized slice) and the degree
//! of parallelism. The tuple path keeps the classic `HashMap` build so
//! both modes stay independently auditable; results, counters, and
//! fallback behavior are parity-exact (see tests/batch_parity.rs).
//!
//! Build-side rows are *reserved* with the query's resource governor
//! before they are held — both the resident build table and each Grace
//! partition's rebuilt table — so a governor limit below what the chosen
//! strategy needs surfaces as [`ExecError::ResourceExhausted`] instead of
//! silently exceeding the grant.
//!
//! With `ctx.dop > 1` the join runs its partition work on worker threads:
//! the in-memory strategy splits build and probe rows into radix
//! partitions (each row hashed once, as in the serial join; the partition
//! is the hash's low bits, replacing the old modulo split) and builds +
//! probes each partition on its own worker; the Grace strategy spills
//! exactly as the serial join does (identical pages, identical write
//! order) and then joins the spilled partition pairs concurrently, each
//! pair's table reservation drawn from the shared governor through a
//! wait-or-fail [`ReserveGate`] so concurrency never oversubscribes the
//! grant. Work belonging to the serial join's `next()` phase (probe
//! streaming, partition-pair joining) still runs eagerly inside `open()`,
//! but its errors are *deferred* to the first `next()`/`next_batch()`
//! call, so choose-plan fallback semantics stay identical to serial
//! execution. Per-worker counters are merged back, making accounting
//! totals independent of the degree of parallelism.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

use dqep_storage::gen::{decode_record, encode_record};
use dqep_storage::{HeapFile, SimDisk};

use crate::batch::{RowBatch, BATCH_CAPACITY};
use crate::error::ExecError;
use crate::exchange::run_parallel;
use crate::governor::{ExecContext, ExecMode, ResourceGovernor};
use crate::metrics::SharedCounters;
use crate::tuple::{Tuple, TupleLayout};
use crate::{BoxedOperator, Operator};

/// Grace spill fan-out (fixed: spill page identity must not depend on
/// memory grant or DOP).
const PARTITIONS: usize = 8;

/// Bytes of build-side data per radix partition — roughly an L2 slice, so
/// each partition's bucket array and rows stay cache-resident during its
/// build+probe.
const RADIX_PARTITION_BYTES: usize = 256 * 1024;

/// Upper bound on radix fan-out; beyond this the per-partition bucket
/// arrays stop paying for themselves.
const MAX_RADIX_PARTITIONS: usize = 64;

/// (build position, probe position) pairs of the equi-join keys.
type Keys = Vec<(usize, usize)>;

/// Seed of the join-key hash chain (every row's hash starts here).
pub const HASH_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Multiply-xor finalizer (splitmix64's): full avalanche in two
/// multiplies, no per-row hasher state to construct.
#[inline]
#[must_use]
pub fn mix(v: u64) -> u64 {
    let mut x = v;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes the join-key columns of one tuple with an inline multiply-xor
/// mix. The previous implementation constructed a `DefaultHasher` per
/// row; setting up SipHash state per row dominates hashing one or two
/// `i64`s. The hash is a pure function of the key *values*, so build and
/// probe rows with equal keys hash identically and partition assignment
/// stays stable across sides, modes, and degrees of parallelism.
#[inline]
#[must_use]
pub fn hash_key(keys: &[(usize, usize)], tuple: &[i64], side_build: bool) -> u64 {
    let mut h = HASH_SEED;
    for &(b, p) in keys {
        h = mix(h ^ tuple[if side_build { b } else { p }] as u64);
    }
    h
}

/// Folds one key column into a running hash state, one row per lane:
/// `hashes[i] = mix(hashes[i] ^ col[i])`. This is the batched counterpart
/// of [`hash_key`]'s per-key step — seeding `hashes` with [`HASH_SEED`]
/// and folding each key column in order produces bit-identical hashes to
/// the scalar loop, but as one tight pass over contiguous slices the
/// compiler can auto-vectorize.
#[inline]
pub fn fold_hash_column(hashes: &mut [u64], col: &[i64]) {
    for (h, &v) in hashes.iter_mut().zip(col) {
        *h = mix(*h ^ v as u64);
    }
}

/// Batched probe-side hash: one hash per **live** row of `batch`, each
/// bit-identical to `hash_key(keys, row, false)`. Dense batches take the
/// column-slice fold; batches with a selection vector gather first.
fn hash_probe_batch(keys: &[(usize, usize)], batch: &RowBatch, hashes: &mut Vec<u64>) {
    hashes.clear();
    match batch.selection() {
        None => {
            hashes.resize(batch.rows(), HASH_SEED);
            for &(_, p) in keys {
                fold_hash_column(hashes, batch.column(p));
            }
        }
        Some(sel) => {
            hashes.resize(sel.len(), HASH_SEED);
            for &(_, p) in keys {
                let col = batch.column(p);
                for (h, &i) in hashes.iter_mut().zip(sel) {
                    *h = mix(*h ^ col[i as usize] as u64);
                }
            }
        }
    }
}

fn keys_match(keys: &Keys, build: &[i64], probe: &[i64]) -> bool {
    keys.iter().all(|&(b, p)| build[b] == probe[p])
}

fn build_table(keys: &Keys, counters: &SharedCounters, rows: Vec<Tuple>) -> HashMap<u64, Vec<Tuple>> {
    // Pre-sized to the exact row count: the build loop never rehashes.
    let mut table: HashMap<u64, Vec<Tuple>> = HashMap::with_capacity(rows.len());
    for row in rows {
        counters.add_hashes(1);
        table.entry(hash_key(keys, &row, true)).or_default().push(row);
    }
    table
}

/// [`build_table`] over rows whose hashes were already computed (and
/// charged) during partitioning — the parallel in-memory path hashes each
/// row once, like the serial path, not once per phase.
fn build_table_prehashed(rows: Vec<(u64, Tuple)>) -> HashMap<u64, Vec<Tuple>> {
    let mut table: HashMap<u64, Vec<Tuple>> = HashMap::with_capacity(rows.len());
    for (h, row) in rows {
        table.entry(h).or_default().push(row);
    }
    table
}

/// Probes `table` with one row, appending matches (build ++ probe) to
/// `out` in reverse (so `pop` yields them in order).
fn probe_into(
    keys: &Keys,
    counters: &SharedCounters,
    table: &HashMap<u64, Vec<Tuple>>,
    probe_row: &[i64],
    out: &mut Vec<Tuple>,
) {
    counters.add_hashes(1);
    if let Some(candidates) = table.get(&hash_key(keys, probe_row, false)) {
        for b in candidates.iter().rev() {
            if keys_match(keys, b, probe_row) {
                let mut joined = b.clone();
                joined.extend_from_slice(probe_row);
                counters.add_records(1);
                out.push(joined);
            }
        }
    }
}

/// Columnar row accumulator: per-attribute value vectors, the batch-mode
/// build buffer. Rows append in arrival order; `extend_from_batch`
/// compacts a selection vector away as it copies.
struct ColumnStore {
    rows: usize,
    cols: Vec<Vec<i64>>,
}

impl ColumnStore {
    fn new(width: usize) -> ColumnStore {
        ColumnStore {
            rows: 0,
            cols: (0..width).map(|_| Vec::new()).collect(),
        }
    }

    fn reserve(&mut self, rows: usize) {
        for col in &mut self.cols {
            col.reserve(rows);
        }
    }

    fn rows(&self) -> usize {
        self.rows
    }

    /// Appends the live rows of `batch` column-wise.
    fn extend_from_batch(&mut self, batch: &RowBatch) {
        match batch.selection() {
            None => {
                for (c, col) in self.cols.iter_mut().enumerate() {
                    col.extend_from_slice(batch.column(c));
                }
                self.rows += batch.rows();
            }
            Some(sel) => {
                for (c, col) in self.cols.iter_mut().enumerate() {
                    let src = batch.column(c);
                    col.extend(sel.iter().map(|&i| src[i as usize]));
                }
                self.rows += sel.len();
            }
        }
    }

    /// Appends one row (attribute-wise).
    fn push_row(&mut self, row: &[i64]) {
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Copies row `i` into `out` (gathering across the columns).
    fn gather_row_into(&self, i: usize, out: &mut Vec<i64>) {
        out.extend(self.cols.iter().map(|col| col[i]));
    }
}

/// Radix fan-out for a resident build side of `build_bytes`: one
/// partition per L2-sized slice, at least one per worker, always a power
/// of two (the partition is a mask of the hash's low bits), capped at
/// [`MAX_RADIX_PARTITIONS`].
fn radix_partitions(build_bytes: usize, dop: usize) -> usize {
    build_bytes
        .div_ceil(RADIX_PARTITION_BYTES)
        .next_power_of_two()
        .max(dop.next_power_of_two())
        .min(MAX_RADIX_PARTITIONS)
}

/// Stable histogram → prefix-sum scatter of `(cols, hashes)` rows into
/// `parts = part_mask + 1` partitions keyed by the hash's low bits.
/// Returns the scattered columns and hashes (partition-major, arrival
/// order preserved within each partition) plus the partition boundaries
/// (`parts + 1` offsets).
fn scatter_by_partition(
    cols: &[Vec<i64>],
    hashes: &[u64],
    part_mask: u64,
) -> (Vec<Vec<i64>>, Vec<u64>, Vec<usize>) {
    let n = hashes.len();
    let parts = part_mask as usize + 1;
    if parts == 1 {
        let starts = vec![0, n];
        return (cols.to_vec(), hashes.to_vec(), starts);
    }
    let pids: Vec<u32> = hashes.iter().map(|&h| (h & part_mask) as u32).collect();
    let mut starts = vec![0usize; parts + 1];
    for &p in &pids {
        starts[p as usize + 1] += 1;
    }
    for p in 0..parts {
        starts[p + 1] += starts[p];
    }
    // Destination index of each row: its partition's running cursor.
    let mut cursors: Vec<usize> = starts[..parts].to_vec();
    let mut dest = vec![0u32; n];
    for (d, &p) in dest.iter_mut().zip(&pids) {
        let c = &mut cursors[p as usize];
        *d = *c as u32;
        *c += 1;
    }
    let scat_cols: Vec<Vec<i64>> = cols
        .iter()
        .map(|col| {
            let mut out = vec![0i64; n];
            for (&v, &d) in col.iter().zip(&dest) {
                out[d as usize] = v;
            }
            out
        })
        .collect();
    let mut scat_hashes = vec![0u64; n];
    for (&h, &d) in hashes.iter().zip(&dest) {
        scat_hashes[d as usize] = h;
    }
    (scat_cols, scat_hashes, starts)
}

/// Per-partition chained bucket index of a [`RadixTable`].
struct PartBuckets {
    mask: u64,
    /// Bucket → first build row (global scattered index + 1; 0 = empty).
    /// Chains run in build-arrival order.
    heads: Vec<u32>,
}

/// The batch-mode resident join table: build rows scattered into radix
/// partitions (columnar), their precomputed hashes, and a chained bucket
/// index per partition. Probing reuses the stored hash as a pre-filter —
/// no re-hashing, no SipHash, no per-bucket `Vec` allocations — and match
/// rows gather into the output column by column.
struct RadixTable {
    part_mask: u64,
    /// Bits consumed by the partition mask; buckets use the bits above.
    part_bits: u32,
    /// Scattered build columns (partition-major).
    cols: Vec<Vec<i64>>,
    /// Scattered per-row hashes, aligned with `cols`.
    hashes: Vec<u64>,
    /// Next row in the same bucket chain (global index + 1; 0 = end).
    next_link: Vec<u32>,
    buckets: Vec<PartBuckets>,
}

impl RadixTable {
    /// Builds the table from a columnar build buffer, charging one hash
    /// per row exactly like [`build_table`]. `parts` must be a power of
    /// two.
    fn build(keys: &Keys, counters: &SharedCounters, store: &ColumnStore, parts: usize) -> RadixTable {
        let n = store.rows();
        debug_assert!(n < u32::MAX as usize, "build side exceeds u32 indexing");
        debug_assert!(parts.is_power_of_two());
        counters.add_hashes(n as u64);
        let mut hashes = vec![HASH_SEED; n];
        for &(b, _) in keys {
            fold_hash_column(&mut hashes, &store.cols[b]);
        }
        let part_mask = (parts - 1) as u64;
        let part_bits = parts.trailing_zeros();
        let (cols, hashes, part_starts) = scatter_by_partition(&store.cols, &hashes, part_mask);
        let mut next_link = vec![0u32; n];
        let buckets = (0..parts)
            .map(|p| {
                let (lo, hi) = (part_starts[p], part_starts[p + 1]);
                let nb = ((hi - lo) * 2).next_power_of_two();
                let mask = (nb - 1) as u64;
                let mut heads = vec![0u32; nb];
                // Reverse insertion leaves each chain in arrival order —
                // probe results match the HashMap path's candidate order.
                for i in (lo..hi).rev() {
                    let b = ((hashes[i] >> part_bits) & mask) as usize;
                    next_link[i] = heads[b];
                    heads[b] = i as u32 + 1;
                }
                PartBuckets { mask, heads }
            })
            .collect();
        RadixTable {
            part_mask,
            part_bits,
            cols,
            hashes,
            next_link,
            buckets,
        }
    }

    fn build_width(&self) -> usize {
        self.cols.len()
    }

    /// Scattered build rows matching hash `h` and the probe keys, in
    /// build-arrival order, appended to `matches` as global row indices.
    #[inline]
    fn chain_matches(
        &self,
        keys: &Keys,
        h: u64,
        probe_key_at: impl Fn(usize) -> i64,
        matches: &mut Vec<u32>,
    ) {
        let part = &self.buckets[(h & self.part_mask) as usize];
        let mut link = part.heads[((h >> self.part_bits) & part.mask) as usize];
        while link != 0 {
            let i = (link - 1) as usize;
            if self.hashes[i] == h
                && keys
                    .iter()
                    .all(|&(bk, pk)| self.cols[bk][i] == probe_key_at(pk))
            {
                matches.push(i as u32);
            }
            link = self.next_link[i];
        }
    }

    /// Tuple-path probe (the batch-built table still serves `next()`
    /// calls, e.g. from a Grace parent spilling its probe input
    /// tuple-wise): appends matches (build ++ probe) to `out` in reverse,
    /// so `pop` yields them in build-arrival order — exactly like
    /// [`probe_into`]. Charges mirror [`probe_into`]: one hash per probe
    /// row, one record per match.
    fn probe_row_into(
        &self,
        keys: &Keys,
        counters: &SharedCounters,
        probe_row: &[i64],
        out: &mut Vec<Tuple>,
    ) {
        counters.add_hashes(1);
        let h = hash_key(keys, probe_row, false);
        let mut matches: Vec<u32> = Vec::new();
        self.chain_matches(keys, h, |pk| probe_row[pk], &mut matches);
        for &i in matches.iter().rev() {
            let i = i as usize;
            let mut joined: Tuple = Vec::with_capacity(self.build_width() + probe_row.len());
            joined.extend(self.cols.iter().map(|col| col[i]));
            joined.extend_from_slice(probe_row);
            counters.add_records(1);
            out.push(joined);
        }
    }

    /// Gathers `pairs` (build scattered index, probe physical index) into
    /// `out`: build attributes column by column, then probe attributes.
    fn gather_pairs_into(
        &self,
        probe_batch: &RowBatch,
        pairs_b: &[u32],
        pairs_p: &[u32],
        out: &mut RowBatch,
    ) {
        let bw = self.build_width();
        out.extend_rows_with(pairs_b.len(), |cols| {
            for (c, col) in cols[..bw].iter_mut().enumerate() {
                let src = &self.cols[c];
                col.extend(pairs_b.iter().map(|&i| src[i as usize]));
            }
            for (c, col) in cols[bw..].iter_mut().enumerate() {
                let src = probe_batch.column(c);
                col.extend(pairs_p.iter().map(|&i| src[i as usize]));
            }
        });
    }

    /// One joined row from a match pair, as an owned tuple (the overflow
    /// stash path).
    fn pair_tuple(&self, probe_batch: &RowBatch, bi: u32, pi: u32) -> Tuple {
        let mut joined: Tuple = Vec::with_capacity(self.build_width() + probe_batch.width());
        joined.extend(self.cols.iter().map(|col| col[bi as usize]));
        probe_batch.gather_row_into(pi as usize, &mut joined);
        joined
    }
}

/// Locks a mutex, absorbing poisoning (a worker panic propagates through
/// the thread scope anyway; the gate's counter stays consistent).
fn lock_gate<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wait-or-fail admission for concurrent partition-table reservations: a
/// worker that cannot reserve its partition's bytes *waits* while sibling
/// partitions hold reservations (they will release), and only fails when
/// it is alone — exactly the situation in which the serial join, holding
/// no other partition's memory, would have been refused too.
struct ReserveGate {
    inflight: Mutex<usize>,
    cv: Condvar,
}

impl ReserveGate {
    fn new() -> ReserveGate {
        ReserveGate {
            inflight: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn reserve(&self, governor: &ResourceGovernor, bytes: u64) -> Result<(), ExecError> {
        let mut inflight = lock_gate(&self.inflight);
        loop {
            match governor.try_reserve_memory(bytes) {
                Ok(()) => {
                    *inflight += 1;
                    return Ok(());
                }
                Err(e) => {
                    if *inflight == 0 {
                        return Err(e);
                    }
                    inflight = self
                        .cv
                        .wait(inflight)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    fn release(&self, governor: &ResourceGovernor, bytes: u64) {
        let mut inflight = lock_gate(&self.inflight);
        *inflight -= 1;
        governor.release_memory(bytes);
        self.cv.notify_all();
    }
}

/// The build buffer: rows for the tuple path, columns for the batch path.
/// Both reserve the same bytes and spill the same records in the same
/// order, so the mode choice never shows in accounting.
enum BuildBuf {
    Rows(Vec<Tuple>),
    Cols(ColumnStore),
}

impl BuildBuf {
    fn len(&self) -> usize {
        match self {
            BuildBuf::Rows(rows) => rows.len(),
            BuildBuf::Cols(store) => store.rows(),
        }
    }
}

enum State {
    Closed,
    /// Build table resident (tuple mode); probe streams.
    InMemory(HashMap<u64, Vec<Tuple>>),
    /// Build table resident (batch mode, serial): radix-partitioned
    /// columnar table; probe streams batched.
    Radix(RadixTable),
    /// Grace mode: partition pairs joined one at a time.
    Partitioned {
        build_parts: Vec<HeapFile>,
        probe_parts: Vec<HeapFile>,
        part: usize,
    },
    /// Parallel tuple mode: all partition work finished at `open`; the
    /// merged result streams out.
    Streamed(std::vec::IntoIter<Tuple>),
    /// Parallel batch mode: the merged columnar result streams out in
    /// `max_rows` slices.
    StreamedCols { batch: RowBatch, pos: usize },
}

/// Hash join over equi-join keys. With `ctx.dop > 1` the partition work
/// (in-memory or Grace) fans out across worker threads; see the module
/// docs for the parity guarantees.
pub struct HashJoinExec<'a> {
    build: BoxedOperator<'a>,
    probe: BoxedOperator<'a>,
    keys: Keys,
    layout: TupleLayout,
    ctx: ExecContext,
    disk: SimDisk,
    /// Memory budget in bytes for the build table.
    budget_bytes: usize,
    /// Bytes currently reserved with the governor; released in `close`.
    reserved: u64,
    state: State,
    pending: Vec<Tuple>,
    /// A failure from work the serial join performs in `next()` (probe
    /// streaming, partition joining) that the parallel paths perform
    /// eagerly at `open()`; surfaced on the first `next`/`next_batch`.
    pending_err: Option<ExecError>,
    /// Mid-query re-optimization probe, fired once per `open` with the
    /// build input's actual cardinality when the build completes.
    checkpoint: Option<crate::reopt::ReoptProbe>,
}

impl<'a> HashJoinExec<'a> {
    /// Creates a hash join building on `build`. The degree of parallelism
    /// comes from `ctx.dop`; `1` compiles the classic serial join.
    #[must_use]
    pub fn new(
        build: BoxedOperator<'a>,
        probe: BoxedOperator<'a>,
        keys: Keys,
        ctx: ExecContext,
        disk: SimDisk,
        budget_bytes: usize,
    ) -> Self {
        let layout = build.layout().concat(probe.layout());
        HashJoinExec {
            build,
            probe,
            keys,
            layout,
            ctx,
            disk,
            budget_bytes,
            reserved: 0,
            state: State::Closed,
            pending: Vec::new(),
            pending_err: None,
            checkpoint: None,
        }
    }

    /// Attaches a re-optimization checkpoint probe to the build phase.
    pub(crate) fn with_checkpoint(mut self, probe: crate::reopt::ReoptProbe) -> Self {
        self.checkpoint = Some(probe);
        self
    }

    fn release(&mut self, bytes: u64) {
        self.ctx.governor.release_memory(bytes);
        self.reserved -= bytes;
    }

    /// Drains the probe input (mode-faithfully: batches in batch mode,
    /// rows in tuple mode), hashing each row once into `parts` radix
    /// partitions (`parts = part_mask + 1`). Hash charges match the
    /// serial probe exactly: one per probe row.
    fn partition_probe(
        &mut self,
        parts: usize,
        part_mask: u64,
    ) -> Result<Vec<Vec<(u64, Tuple)>>, ExecError> {
        let mut out: Vec<Vec<(u64, Tuple)>> = (0..parts).map(|_| Vec::new()).collect();
        // Pre-size each partition vector from the input's row estimate.
        if let Some(n) = self.probe.estimated_rows() {
            let share = (n.min(1 << 20) as usize / parts).saturating_add(1);
            for p in &mut out {
                p.reserve(share);
            }
        }
        if self.ctx.mode == ExecMode::Batch {
            while let Some(batch) = self.probe.next_batch(BATCH_CAPACITY)? {
                self.ctx.governor.check_batch(batch.len() as u64)?;
                self.ctx.counters.add_hashes(batch.len() as u64);
                for row in &batch {
                    let h = hash_key(&self.keys, &row, false);
                    out[(h & part_mask) as usize].push((h, row));
                }
            }
        } else {
            loop {
                self.ctx.governor.check()?;
                let Some(row) = self.probe.next()? else { break };
                self.ctx.counters.add_hashes(1);
                let h = hash_key(&self.keys, &row, false);
                out[(h & part_mask) as usize].push((h, row));
            }
        }
        Ok(out)
    }

    /// Parallel in-memory strategy, tuple mode: radix-partition the
    /// (already reserved) build rows and the probe input, then build +
    /// probe each partition's table on its own worker thread.
    fn open_parallel_in_memory(
        &mut self,
        build_rows: Vec<Tuple>,
        dop: usize,
    ) -> Result<(), ExecError> {
        let parts = dop.next_power_of_two();
        let part_mask = (parts - 1) as u64;
        let share = build_rows.len() / parts + 1;
        let mut build_parts: Vec<Vec<(u64, Tuple)>> =
            (0..parts).map(|_| Vec::with_capacity(share)).collect();
        for row in build_rows {
            self.ctx.counters.add_hashes(1);
            let h = hash_key(&self.keys, &row, true);
            build_parts[(h & part_mask) as usize].push((h, row));
        }
        // Probe-phase work starts here: the serial join performs it in
        // `next()`, so failures defer to `next()`.
        let probe_parts = match self.partition_probe(parts, part_mask) {
            Ok(parts) => parts,
            Err(e) => {
                self.pending_err = Some(e);
                self.state = State::Streamed(Vec::new().into_iter());
                return Ok(());
            }
        };
        let keys = &self.keys;
        let tasks: Vec<_> = build_parts
            .into_iter()
            .zip(probe_parts)
            .map(|(bpart, ppart)| {
                let worker = self.ctx.worker();
                move || {
                    let table = build_table_prehashed(bpart);
                    let mut out: Vec<Tuple> = Vec::new();
                    for (h, row) in ppart {
                        if let Some(candidates) = table.get(&h) {
                            for b in candidates {
                                if keys_match(keys, b, &row) {
                                    let mut joined = b.clone();
                                    joined.extend_from_slice(&row);
                                    worker.counters.add_records(1);
                                    out.push(joined);
                                }
                            }
                        }
                    }
                    Ok((out, worker.counters))
                }
            })
            .collect();
        let mut merged: Vec<Tuple> = Vec::new();
        for result in run_parallel(tasks) {
            // Workers are pure CPU here; errors are impossible, but keep
            // the merge defensive so the task signature stays uniform.
            let (out, counters) = result?;
            self.ctx.counters.merge_from(&counters);
            merged.extend(out);
        }
        self.state = State::Streamed(merged.into_iter());
        Ok(())
    }

    /// Parallel in-memory strategy, batch mode: build one [`RadixTable`]
    /// (fan-out ≥ `dop`), drain + scatter the probe input columnar, then
    /// have `dop` workers claim partitions and probe them — match pairs
    /// gather into per-partition output batches merged in partition
    /// order.
    fn open_parallel_radix(&mut self, store: &ColumnStore, dop: usize) -> Result<(), ExecError> {
        let build_bytes = store.rows() * self.build.layout().row_bytes;
        let parts = radix_partitions(build_bytes, dop);
        let table = RadixTable::build(&self.keys, &self.ctx.counters, store, parts);
        // Probe-phase work: drain batched (errors defer to `next()`),
        // hashing each live row once with the columnar kernel.
        let mut probe_store = ColumnStore::new(self.probe.layout().width());
        if let Some(n) = self.probe.estimated_rows() {
            probe_store.reserve(n.min(1 << 20) as usize);
        }
        let mut probe_hashes: Vec<u64> = Vec::new();
        let mut scratch: Vec<u64> = Vec::new();
        let drained: Result<(), ExecError> = loop {
            match self.probe.next_batch(BATCH_CAPACITY) {
                Ok(Some(batch)) => {
                    if let Err(e) = self.ctx.governor.check_batch(batch.len() as u64) {
                        break Err(e);
                    }
                    self.ctx.counters.add_hashes(batch.len() as u64);
                    hash_probe_batch(&self.keys, &batch, &mut scratch);
                    probe_hashes.extend_from_slice(&scratch);
                    probe_store.extend_from_batch(&batch);
                }
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        if let Err(e) = drained {
            self.pending_err = Some(e);
            self.state = State::Streamed(Vec::new().into_iter());
            return Ok(());
        }
        let (probe_cols, probe_hashes, probe_starts) =
            scatter_by_partition(&probe_store.cols, &probe_hashes, table.part_mask);
        let keys = &self.keys;
        let table_ref = &table;
        let probe_cols_ref = &probe_cols;
        let probe_hashes_ref = &probe_hashes;
        let probe_starts_ref = &probe_starts;
        let next_part = AtomicUsize::new(0);
        let out_width = self.layout.width();
        let tasks: Vec<_> = (0..dop.min(parts))
            .map(|_| {
                let worker = self.ctx.worker();
                let next_part = &next_part;
                move || {
                    let mut outs: Vec<(usize, RowBatch)> = Vec::new();
                    loop {
                        let p = next_part.fetch_add(1, Ordering::Relaxed);
                        if p >= parts {
                            return Ok((outs, worker.counters));
                        }
                        let (lo, hi) = (probe_starts_ref[p], probe_starts_ref[p + 1]);
                        let mut pairs_b: Vec<u32> = Vec::new();
                        let mut pairs_p: Vec<u32> = Vec::new();
                        for j in lo..hi {
                            table_ref.chain_matches(
                                keys,
                                probe_hashes_ref[j],
                                |pk| probe_cols_ref[pk][j],
                                &mut pairs_b,
                            );
                            pairs_p.resize(pairs_b.len(), j as u32);
                        }
                        worker.counters.add_records(pairs_b.len() as u64);
                        let mut out = RowBatch::with_capacity(out_width, pairs_b.len());
                        let bw = table_ref.build_width();
                        out.extend_rows_with(pairs_b.len(), |cols| {
                            for (c, col) in cols[..bw].iter_mut().enumerate() {
                                let src = &table_ref.cols[c];
                                col.extend(pairs_b.iter().map(|&i| src[i as usize]));
                            }
                            for (c, col) in cols[bw..].iter_mut().enumerate() {
                                let src = &probe_cols_ref[c];
                                col.extend(pairs_p.iter().map(|&i| src[i as usize]));
                            }
                        });
                        outs.push((p, out));
                    }
                }
            })
            .collect();
        let mut part_outs: Vec<(usize, RowBatch)> = Vec::new();
        for result in run_parallel(tasks) {
            let (outs, counters): (Vec<(usize, RowBatch)>, SharedCounters) = result?;
            self.ctx.counters.merge_from(&counters);
            part_outs.extend(outs);
        }
        part_outs.sort_by_key(|&(p, _)| p);
        let total: usize = part_outs.iter().map(|(_, b)| b.rows()).sum();
        let mut merged = RowBatch::with_capacity(out_width, total);
        for (_, part) in &part_outs {
            merged.extend_rows_with(part.rows(), |cols| {
                for (c, col) in cols.iter_mut().enumerate() {
                    col.extend_from_slice(part.column(c));
                }
            });
        }
        self.state = State::StreamedCols { batch: merged, pos: 0 };
        Ok(())
    }

    /// Parallel Grace strategy: the partitions were spilled exactly as
    /// the serial join spills them; join the `PARTITIONS` pairs
    /// concurrently on `dop` workers claiming partition indexes from an
    /// atomic counter. Each pair's table reservation goes through a
    /// [`ReserveGate`], so concurrent pairs never oversubscribe the query
    /// grant.
    fn open_parallel_grace(
        &mut self,
        build_parts: Vec<HeapFile>,
        probe_parts: Vec<HeapFile>,
        dop: usize,
    ) -> Result<(), ExecError> {
        let build_width = self.build.layout().width();
        let probe_width = self.probe.layout().width();
        let build_row_bytes = self.build.layout().row_bytes;
        let keys = &self.keys;
        let gate = ReserveGate::new();
        let next_part = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..dop.min(PARTITIONS))
            .map(|_| {
                let worker = self.ctx.worker();
                let gate = &gate;
                let next_part = &next_part;
                let build_parts = &build_parts;
                let probe_parts = &probe_parts;
                move || {
                    let mut outs: Vec<(usize, Vec<Tuple>)> = Vec::new();
                    loop {
                        let p = next_part.fetch_add(1, Ordering::Relaxed);
                        if p >= PARTITIONS {
                            return Ok((outs, worker.counters));
                        }
                        worker.governor.check()?;
                        let mut build_rows: Vec<Tuple> = Vec::new();
                        for record in build_parts[p].scan() {
                            build_rows.push(decode_record(&record?, build_width));
                        }
                        let mut probe_rows: Vec<Tuple> = Vec::new();
                        for record in probe_parts[p].scan() {
                            probe_rows.push(decode_record(&record?, probe_width));
                        }
                        let part_bytes = (build_rows.len() * build_row_bytes) as u64;
                        gate.reserve(&worker.governor, part_bytes)?;
                        let table = build_table(keys, &worker.counters, build_rows);
                        let mut out: Vec<Tuple> = Vec::new();
                        for row in &probe_rows {
                            probe_into(keys, &worker.counters, &table, row, &mut out);
                        }
                        out.reverse();
                        drop(table);
                        gate.release(&worker.governor, part_bytes);
                        outs.push((p, out));
                    }
                }
            })
            .collect();
        let results = run_parallel(tasks);
        let mut parts: Vec<(usize, Vec<Tuple>)> = Vec::new();
        let mut first_err: Option<ExecError> = None;
        for result in results {
            match result {
                Ok((outs, counters)) => {
                    self.ctx.counters.merge_from(&counters);
                    parts.extend(outs);
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            // Serial raises partition-phase failures from `next()`.
            self.pending_err = Some(e);
            self.state = State::Streamed(Vec::new().into_iter());
            return Ok(());
        }
        parts.sort_by_key(|&(p, _)| p);
        let merged: Vec<Tuple> = parts.into_iter().flat_map(|(_, out)| out).collect();
        self.state = State::Streamed(merged.into_iter());
        Ok(())
    }
}

impl Operator for HashJoinExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pending.clear();
        self.pending_err = None;
        let dop = self.ctx.dop.max(1);
        self.build.open()?;
        let build_row_bytes = self.build.layout().row_bytes;
        let build_width = self.build.layout().width();
        let batch_mode = self.ctx.mode == ExecMode::Batch;
        let mut buf = if batch_mode {
            BuildBuf::Cols(ColumnStore::new(build_width))
        } else {
            BuildBuf::Rows(Vec::new())
        };
        // Pre-size the build buffer from the input's row estimate — the
        // common in-memory case never reallocates mid-build.
        if let Some(n) = self.build.estimated_rows() {
            let n = n.min(1 << 20) as usize;
            match &mut buf {
                BuildBuf::Rows(rows) => rows.reserve(n),
                BuildBuf::Cols(store) => store.reserve(n),
            }
        }
        match &mut buf {
            BuildBuf::Cols(store) => {
                // Batched build: drain whole batches straight into the
                // columnar store, reserving and checking once per batch.
                // The reservation total and failure condition are
                // identical to the per-row path — only the charge
                // granularity changes.
                loop {
                    // Bounded so a refused batch reservation trips with
                    // the same cumulative row count as the per-row path:
                    // the request never extends past the first refusable
                    // row.
                    let req = self.ctx.governor.ingest_batch_rows(build_row_bytes);
                    let Some(batch) = self.build.next_batch(req)? else { break };
                    let n = batch.len();
                    self.ctx.governor.check_batch(n as u64)?;
                    self.ctx.governor.try_reserve_memory((n * build_row_bytes) as u64)?;
                    self.reserved += (n * build_row_bytes) as u64;
                    store.extend_from_batch(&batch);
                }
            }
            BuildBuf::Rows(rows) => loop {
                self.ctx.governor.check()?;
                let Some(t) = self.build.next()? else { break };
                self.ctx.governor.try_reserve_memory(build_row_bytes as u64)?;
                self.reserved += build_row_bytes as u64;
                rows.push(t);
            },
        }
        self.build.close();
        // Build completion is a pipeline breaker: the build input's true
        // cardinality is now known exactly.
        if let Some(probe) = &self.checkpoint {
            probe.observe(buf.len() as u64);
        }
        self.probe.open()?;

        let build_bytes = buf.len() * build_row_bytes;
        if build_bytes <= self.budget_bytes {
            // The reservation stays held while the table is resident;
            // `close` releases it.
            match buf {
                BuildBuf::Cols(store) => {
                    if dop > 1 {
                        return self.open_parallel_radix(&store, dop);
                    }
                    let parts = radix_partitions(build_bytes, 1);
                    self.state = State::Radix(RadixTable::build(
                        &self.keys,
                        &self.ctx.counters,
                        &store,
                        parts,
                    ));
                }
                BuildBuf::Rows(rows) => {
                    if dop > 1 {
                        return self.open_parallel_in_memory(rows, dop);
                    }
                    self.state =
                        State::InMemory(build_table(&self.keys, &self.ctx.counters, rows));
                }
            }
            return Ok(());
        }

        // Grace partitioning: spill both inputs by key hash (accounted);
        // the buffered build rows move to disk, so release their grant.
        // The spill is single-threaded at every DOP — identical pages in
        // identical order — only the partition-pair joining fans out.
        let probe_row_bytes = self.probe.layout().row_bytes;
        let mut build_parts: Vec<HeapFile> = (0..PARTITIONS)
            .map(|_| HeapFile::new_temp(self.disk.clone()))
            .collect();
        match buf {
            BuildBuf::Rows(rows) => {
                for row in rows {
                    self.ctx.counters.add_hashes(1);
                    let p = (hash_key(&self.keys, &row, true) as usize) % PARTITIONS;
                    build_parts[p].append(&encode_record(&row, build_row_bytes))?;
                }
            }
            BuildBuf::Cols(store) => {
                // Same rows in the same order as the tuple path — the
                // spilled pages are byte-identical across modes.
                let mut scratch: Tuple = Vec::with_capacity(build_width);
                for i in 0..store.rows() {
                    scratch.clear();
                    store.gather_row_into(i, &mut scratch);
                    self.ctx.counters.add_hashes(1);
                    let p = (hash_key(&self.keys, &scratch, true) as usize) % PARTITIONS;
                    build_parts[p].append(&encode_record(&scratch, build_row_bytes))?;
                }
            }
        }
        self.release(build_bytes as u64);
        for part in &mut build_parts {
            part.finish()?;
        }
        let mut probe_parts: Vec<HeapFile> = (0..PARTITIONS)
            .map(|_| HeapFile::new_temp(self.disk.clone()))
            .collect();
        // Probe spill stays tuple-wise in both modes: its cost is
        // partition I/O, and interleaving reads and spill writes
        // identically keeps fault-plan ordinals mode-independent.
        loop {
            self.ctx.governor.check()?;
            let Some(row) = self.probe.next()? else { break };
            self.ctx.counters.add_hashes(1);
            let p = (hash_key(&self.keys, &row, false) as usize) % PARTITIONS;
            probe_parts[p].append(&encode_record(&row, probe_row_bytes))?;
        }
        for part in &mut probe_parts {
            part.finish()?;
        }
        if dop > 1 {
            return self.open_parallel_grace(build_parts, probe_parts, dop);
        }
        self.state = State::Partitioned {
            build_parts,
            probe_parts,
            part: 0,
        };
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if let Some(e) = self.pending_err.take() {
            return Err(e);
        }
        loop {
            self.ctx.governor.check()?;
            if let Some(t) = self.pending.pop() {
                return Ok(Some(t));
            }
            match &mut self.state {
                State::Closed => return Ok(None),
                State::Streamed(out) => return Ok(out.next()),
                State::StreamedCols { batch, pos } => {
                    if *pos >= batch.rows() {
                        return Ok(None);
                    }
                    let row = batch.row_vec(*pos);
                    *pos += 1;
                    return Ok(Some(row));
                }
                State::InMemory(table) => {
                    let Some(probe_row) = self.probe.next()? else {
                        return Ok(None);
                    };
                    probe_into(&self.keys, &self.ctx.counters, table, &probe_row, &mut self.pending);
                }
                State::Radix(table) => {
                    let Some(probe_row) = self.probe.next()? else {
                        return Ok(None);
                    };
                    table.probe_row_into(&self.keys, &self.ctx.counters, &probe_row, &mut self.pending);
                }
                State::Partitioned {
                    build_parts,
                    probe_parts,
                    part,
                } => {
                    if *part >= PARTITIONS {
                        return Ok(None);
                    }
                    let p = *part;
                    *part += 1;
                    let build_width = self.build.layout().width();
                    let probe_width = self.probe.layout().width();
                    let build_row_bytes = self.build.layout().row_bytes;
                    let mut build_rows: Vec<Tuple> = Vec::new();
                    for record in build_parts[p].scan() {
                        build_rows.push(decode_record(&record?, build_width));
                    }
                    let mut probe_rows: Vec<Tuple> = Vec::new();
                    for record in probe_parts[p].scan() {
                        probe_rows.push(decode_record(&record?, probe_width));
                    }
                    // This partition's table is resident until the arm
                    // ends; reserve it (nothing is held on failure, both
                    // row vectors are dropped).
                    let part_bytes = (build_rows.len() * build_row_bytes) as u64;
                    self.ctx.governor.try_reserve_memory(part_bytes)?;
                    let table = build_table(&self.keys, &self.ctx.counters, build_rows);
                    for row in &probe_rows {
                        probe_into(&self.keys, &self.ctx.counters, &table, row, &mut self.pending);
                    }
                    drop(table);
                    self.ctx.governor.release_memory(part_bytes);
                    self.pending.reverse();
                }
            }
        }
    }

    /// Native batch probe. The serial resident path ([`State::Radix`])
    /// hashes each probe batch with the columnar kernel, walks the radix
    /// table's chains, and gathers match pairs into the output column by
    /// column; the serial Grace path joins each spilled partition pair
    /// through a per-partition radix table; the parallel batch path
    /// streams pre-merged columnar results in `max_rows` slices. The
    /// remaining states fall back to tuple-looping — their cost is thread
    /// work, not interpretation.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>, ExecError> {
        if let Some(e) = self.pending_err.take() {
            return Err(e);
        }
        match &mut self.state {
            State::Radix(_) => {}
            State::Partitioned { build_parts, probe_parts, part } => {
                // Batched Grace: one spilled partition pair per iteration,
                // joined through a per-partition radix table instead of
                // the tuple path's `HashMap`. Reads, reservation points,
                // and counter totals are identical to the tuple arm in
                // `next()` — only the in-memory join is columnar.
                let build_width = self.build.layout().width();
                let probe_width = self.probe.layout().width();
                let build_row_bytes = self.build.layout().row_bytes;
                let mut out = RowBatch::with_capacity(self.layout.width(), max_rows);
                loop {
                    while out.rows() < max_rows {
                        let Some(t) = self.pending.pop() else { break };
                        out.push_row(&t);
                    }
                    if out.rows() >= max_rows || *part >= PARTITIONS {
                        return Ok(if out.rows() == 0 { None } else { Some(out) });
                    }
                    let p = *part;
                    *part += 1;
                    let mut store = ColumnStore::new(build_width);
                    for record in build_parts[p].scan() {
                        store.push_row(&decode_record(&record?, build_width));
                    }
                    let mut probe_batch = RowBatch::with_capacity(probe_width, 0);
                    for record in probe_parts[p].scan() {
                        probe_batch.push_row(&decode_record(&record?, probe_width));
                    }
                    self.ctx.governor.check_batch(probe_batch.rows() as u64)?;
                    let part_bytes = (store.rows() * build_row_bytes) as u64;
                    self.ctx.governor.try_reserve_memory(part_bytes)?;
                    let table = RadixTable::build(
                        &self.keys,
                        &self.ctx.counters,
                        &store,
                        radix_partitions(part_bytes as usize, 1),
                    );
                    let mut hashes: Vec<u64> = Vec::new();
                    hash_probe_batch(&self.keys, &probe_batch, &mut hashes);
                    let mut pairs_b: Vec<u32> = Vec::new();
                    let mut pairs_p: Vec<u32> = Vec::new();
                    for (j, &h) in hashes.iter().enumerate() {
                        let start = pairs_b.len();
                        table.chain_matches(
                            &self.keys,
                            h,
                            |pk| probe_batch.column(pk)[j],
                            &mut pairs_b,
                        );
                        // The tuple arm bulk-reverses its pending stack and
                        // drains it by `pop`, which emits each probe row's
                        // matches in *reverse* build-arrival order; mirror
                        // that here so drained tuples are identical.
                        pairs_b[start..].reverse();
                        pairs_p.resize(pairs_b.len(), j as u32);
                    }
                    self.ctx.counters.add_hashes(probe_batch.rows() as u64);
                    self.ctx.counters.add_records(pairs_b.len() as u64);
                    let room = max_rows - out.rows();
                    let emit = pairs_b.len().min(room);
                    table.gather_pairs_into(
                        &probe_batch,
                        &pairs_b[..emit],
                        &pairs_p[..emit],
                        &mut out,
                    );
                    for k in (emit..pairs_b.len()).rev() {
                        self.pending
                            .push(table.pair_tuple(&probe_batch, pairs_b[k], pairs_p[k]));
                    }
                    drop(table);
                    self.ctx.governor.release_memory(part_bytes);
                }
            }
            State::StreamedCols { batch, pos } => {
                self.ctx.governor.check_batch(0)?;
                // Stashed rows first (tuple-path interleaving).
                if !self.pending.is_empty() {
                    let mut out = RowBatch::with_capacity(self.layout.width(), max_rows);
                    while out.rows() < max_rows {
                        let Some(t) = self.pending.pop() else { break };
                        out.push_row(&t);
                    }
                    return Ok(Some(out));
                }
                let take = max_rows.min(batch.rows() - *pos);
                if take == 0 {
                    return Ok(None);
                }
                let lo = *pos;
                *pos += take;
                let mut out = RowBatch::with_capacity(self.layout.width(), take);
                out.extend_rows_with(take, |cols| {
                    for (c, col) in cols.iter_mut().enumerate() {
                        col.extend_from_slice(&batch.column(c)[lo..lo + take]);
                    }
                });
                return Ok(Some(out));
            }
            _ => {
                // Grace / parallel tuple / closed: the default
                // tuple-looping behavior (`next` also surfaces a deferred
                // parallel-phase error first).
                let mut batch = RowBatch::with_capacity(self.layout.width(), max_rows);
                while batch.rows() < max_rows {
                    match self.next()? {
                        Some(t) => batch.push_row(&t),
                        None => break,
                    }
                }
                return Ok(if batch.rows() == 0 { None } else { Some(batch) });
            }
        }
        let State::Radix(table) = &self.state else {
            return Err(ExecError::Internal("hash join state changed".into()));
        };
        let mut out = RowBatch::with_capacity(self.layout.width(), max_rows);
        // Stashed matches first: from earlier tuple-path calls, or from a
        // previous batch whose last probe row out-produced the request.
        while out.rows() < max_rows {
            let Some(t) = self.pending.pop() else { break };
            out.push_row(&t);
        }
        let mut hashes: Vec<u64> = Vec::new();
        let mut pairs_b: Vec<u32> = Vec::new();
        let mut pairs_p: Vec<u32> = Vec::new();
        while out.rows() < max_rows {
            let Some(probe_batch) = self.probe.next_batch(max_rows)? else {
                break;
            };
            self.ctx.governor.check_batch(probe_batch.len() as u64)?;
            hash_probe_batch(&self.keys, &probe_batch, &mut hashes);
            pairs_b.clear();
            pairs_p.clear();
            for (j, idx) in probe_batch.selected_indices().enumerate() {
                table.chain_matches(
                    &self.keys,
                    hashes[j],
                    |pk| probe_batch.column(pk)[idx],
                    &mut pairs_b,
                );
                pairs_p.resize(pairs_b.len(), idx as u32);
            }
            self.ctx.counters.add_hashes(probe_batch.len() as u64);
            self.ctx.counters.add_records(pairs_b.len() as u64);
            let room = max_rows - out.rows();
            let emit = pairs_b.len().min(room);
            table.gather_pairs_into(&probe_batch, &pairs_b[..emit], &pairs_p[..emit], &mut out);
            // Matches past the request: deliver them next call, stashed
            // in reverse so `pop` keeps order.
            for k in (emit..pairs_b.len()).rev() {
                self.pending
                    .push(table.pair_tuple(&probe_batch, pairs_b[k], pairs_p[k]));
            }
        }
        Ok(if out.rows() == 0 { None } else { Some(out) })
    }

    fn close(&mut self) {
        self.probe.close();
        self.state = State::Closed;
        self.pending.clear();
        self.pending_err = None;
        if self.reserved > 0 {
            self.ctx.governor.release_memory(self.reserved);
            self.reserved = 0;
        }
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::ResourceLimits;

    #[test]
    fn hash_is_stable_across_sides_and_partitions() {
        // Build position 1 and probe position 0 carry the key.
        let keys: Keys = vec![(1, 0)];
        let build = [10i64, 42];
        let probe = [42i64, 99];
        let hb = hash_key(&keys, &build, true);
        let hp = hash_key(&keys, &probe, false);
        assert_eq!(hb, hp, "equal key values hash identically on both sides");
        for parts in [2usize, 4, 8] {
            assert_eq!(
                (hb as usize) % parts,
                (hp as usize) % parts,
                "partition assignment stable at {parts} partitions"
            );
        }
    }

    #[test]
    fn hash_spreads_small_sequential_keys() {
        let keys: Keys = vec![(0, 0)];
        let mut buckets = [0usize; PARTITIONS];
        for v in 0..800i64 {
            let h = hash_key(&keys, &[v], true);
            buckets[(h as usize) % PARTITIONS] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                count > 800 / PARTITIONS / 2,
                "bucket {i} starved: {buckets:?}"
            );
        }
    }

    #[test]
    fn batched_hash_kernel_matches_scalar() {
        // Two key columns; the folded column kernel must reproduce
        // hash_key bit for bit, dense and under a selection vector.
        let keys: Keys = vec![(0, 1), (1, 0)];
        let mut batch = RowBatch::new(2);
        for v in 0..100i64 {
            batch.push_row(&[v * 7 - 50, v * v]);
        }
        let mut hashes = Vec::new();
        hash_probe_batch(&keys, &batch, &mut hashes);
        for (i, &h) in hashes.iter().enumerate() {
            let row = batch.row_vec(i);
            assert_eq!(h, hash_key(&keys, &row, false), "row {i}");
        }
        batch.set_selection(vec![3, 17, 42, 99]);
        hash_probe_batch(&keys, &batch, &mut hashes);
        for (j, idx) in [3usize, 17, 42, 99].into_iter().enumerate() {
            let row = batch.row_vec(idx);
            assert_eq!(hashes[j], hash_key(&keys, &row, false), "selected row {idx}");
        }
    }

    #[test]
    fn radix_table_probe_matches_hashmap_semantics() {
        // Duplicate keys on both sides: matches must come back in
        // build-arrival order for each probe row, like the HashMap path.
        let keys: Keys = vec![(0, 0)];
        let counters = SharedCounters::default();
        let mut store = ColumnStore::new(2);
        let mut batch = RowBatch::new(2);
        for (k, payload) in [(1i64, 10i64), (2, 20), (1, 11), (3, 30), (1, 12)] {
            batch.push_row(&[k, payload]);
        }
        store.extend_from_batch(&batch);
        for parts in [1usize, 2, 4, 8] {
            let table = RadixTable::build(&keys, &counters, &store, parts);
            let mut out: Vec<Tuple> = Vec::new();
            table.probe_row_into(&keys, &counters, &[1, 99], &mut out);
            out.reverse();
            assert_eq!(
                out,
                vec![vec![1, 10, 1, 99], vec![1, 11, 1, 99], vec![1, 12, 1, 99]],
                "arrival order at {parts} partitions"
            );
            let mut none: Vec<Tuple> = Vec::new();
            table.probe_row_into(&keys, &counters, &[7, 0], &mut none);
            assert!(none.is_empty());
        }
    }

    #[test]
    fn scatter_preserves_arrival_order_within_partitions() {
        let hashes: Vec<u64> = (0..32).map(|i| mix(i as u64)).collect();
        let cols = vec![(0..32i64).collect::<Vec<_>>()];
        let (scols, shashes, starts) = scatter_by_partition(&cols, &hashes, 3);
        assert_eq!(*starts.last().unwrap(), 32);
        for p in 0..4u64 {
            let (lo, hi) = (starts[p as usize], starts[p as usize + 1]);
            let mut last = -1i64;
            for i in lo..hi {
                assert_eq!(shashes[i] & 3, p, "row landed in wrong partition");
                assert!(scols[0][i] > last, "arrival order broken in partition {p}");
                last = scols[0][i];
            }
        }
    }

    #[test]
    fn reserve_gate_waits_for_siblings_then_succeeds() {
        use std::sync::Arc;
        let governor = ResourceGovernor::new(ResourceLimits {
            memory_bytes: Some(100),
            ..ResourceLimits::default()
        });
        let gate = Arc::new(ReserveGate::new());
        // One "partition" holds most of the grant; a second must wait for
        // the release instead of failing.
        gate.reserve(&governor, 80).unwrap();
        let gate2 = Arc::clone(&gate);
        let governor2 = governor.clone();
        let waiter = std::thread::spawn(move || gate2.reserve(&governor2, 60));
        std::thread::sleep(std::time::Duration::from_millis(20));
        gate.release(&governor, 80);
        waiter.join().unwrap().unwrap();
        gate.release(&governor, 60);
        assert_eq!(governor.memory_used(), 0);
    }

    #[test]
    fn reserve_gate_fails_when_alone() {
        let governor = ResourceGovernor::new(ResourceLimits {
            memory_bytes: Some(100),
            ..ResourceLimits::default()
        });
        let gate = ReserveGate::new();
        let err = gate.reserve(&governor, 200).unwrap_err();
        assert!(matches!(err, ExecError::ResourceExhausted(_)));
    }
}
