//! Hash join: in-memory when the build input fits the memory grant,
//! Grace-partitioned otherwise.
//!
//! The build side is the **left** input (the optimizer's convention; the
//! commutativity rule generates the swapped variant). When the build input
//! exceeds the memory budget, both inputs are partitioned by join-key hash
//! into accounted temporary files, then each partition pair is joined in
//! memory — the extra write+read pass over both inputs is exactly what the
//! cost model charges.
//!
//! Build-side rows are *reserved* with the query's resource governor
//! before they are held — both the resident build table and each Grace
//! partition's rebuilt table — so a governor limit below what the chosen
//! strategy needs surfaces as [`ExecError::ResourceExhausted`] instead of
//! silently exceeding the grant.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use dqep_storage::gen::{decode_record, encode_record};
use dqep_storage::{HeapFile, SimDisk};

use crate::batch::RowBatch;
use crate::error::ExecError;
use crate::governor::{ExecContext, ExecMode};
use crate::metrics::SharedCounters;
use crate::tuple::{Tuple, TupleLayout};
use crate::Operator;

const PARTITIONS: usize = 8;

/// (build position, probe position) pairs of the equi-join keys.
type Keys = Vec<(usize, usize)>;

fn hash_key(keys: &Keys, tuple: &[i64], side_build: bool) -> u64 {
    let mut h = DefaultHasher::new();
    for &(b, p) in keys {
        tuple[if side_build { b } else { p }].hash(&mut h);
    }
    h.finish()
}

fn keys_match(keys: &Keys, build: &[i64], probe: &[i64]) -> bool {
    keys.iter().all(|&(b, p)| build[b] == probe[p])
}

fn build_table(keys: &Keys, counters: &SharedCounters, rows: Vec<Tuple>) -> HashMap<u64, Vec<Tuple>> {
    let mut table: HashMap<u64, Vec<Tuple>> = HashMap::new();
    for row in rows {
        counters.add_hashes(1);
        table.entry(hash_key(keys, &row, true)).or_default().push(row);
    }
    table
}

/// Probes `table` with one row, appending matches (build ++ probe) to
/// `out` in reverse (so `pop` yields them in order).
fn probe_into(
    keys: &Keys,
    counters: &SharedCounters,
    table: &HashMap<u64, Vec<Tuple>>,
    probe_row: &[i64],
    out: &mut Vec<Tuple>,
) {
    counters.add_hashes(1);
    if let Some(candidates) = table.get(&hash_key(keys, probe_row, false)) {
        for b in candidates.iter().rev() {
            if keys_match(keys, b, probe_row) {
                let mut joined = b.clone();
                joined.extend_from_slice(probe_row);
                counters.add_records(1);
                out.push(joined);
            }
        }
    }
}

enum State {
    Closed,
    /// Build table resident; probe streams.
    InMemory(HashMap<u64, Vec<Tuple>>),
    /// Grace mode: partition pairs joined one at a time.
    Partitioned {
        build_parts: Vec<HeapFile>,
        probe_parts: Vec<HeapFile>,
        part: usize,
    },
}

/// Hash join over equi-join keys.
pub struct HashJoinExec<'a> {
    build: Box<dyn Operator + 'a>,
    probe: Box<dyn Operator + 'a>,
    keys: Keys,
    layout: TupleLayout,
    ctx: ExecContext,
    disk: SimDisk,
    /// Memory budget in bytes for the build table.
    budget_bytes: usize,
    /// Bytes currently reserved with the governor; released in `close`.
    reserved: u64,
    state: State,
    pending: Vec<Tuple>,
}

impl<'a> HashJoinExec<'a> {
    /// Creates a hash join building on `build`.
    #[must_use]
    pub fn new(
        build: Box<dyn Operator + 'a>,
        probe: Box<dyn Operator + 'a>,
        keys: Keys,
        ctx: ExecContext,
        disk: SimDisk,
        budget_bytes: usize,
    ) -> Self {
        let layout = build.layout().concat(probe.layout());
        HashJoinExec {
            build,
            probe,
            keys,
            layout,
            ctx,
            disk,
            budget_bytes,
            reserved: 0,
            state: State::Closed,
            pending: Vec::new(),
        }
    }

    fn reserve(&mut self, bytes: u64) -> Result<(), ExecError> {
        self.ctx.governor.try_reserve_memory(bytes)?;
        self.reserved += bytes;
        Ok(())
    }

    fn release(&mut self, bytes: u64) {
        self.ctx.governor.release_memory(bytes);
        self.reserved -= bytes;
    }
}

impl Operator for HashJoinExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pending.clear();
        self.build.open()?;
        let build_row_bytes = self.build.layout().row_bytes;
        let mut build_rows = Vec::new();
        if self.ctx.mode == ExecMode::Batch {
            // Batched build: drain whole batches, reserving and checking
            // once per batch. The reservation total and failure condition
            // are identical to the per-row path — only the charge
            // granularity changes.
            if let Some(n) = self.build.estimated_rows() {
                build_rows.reserve(n.min(1 << 20) as usize);
            }
            loop {
                // Bounded so a refused batch reservation trips with the
                // same cumulative row count as the per-row path: the
                // request never extends past the first refusable row.
                let req = self.ctx.governor.ingest_batch_rows(build_row_bytes);
                let Some(batch) = self.build.next_batch(req)? else { break };
                let n = batch.len();
                self.ctx.governor.check_batch(n as u64)?;
                self.reserve((n * build_row_bytes) as u64)?;
                build_rows.extend(batch.iter().map(<[i64]>::to_vec));
            }
        } else {
            loop {
                self.ctx.governor.check()?;
                let Some(t) = self.build.next()? else { break };
                self.reserve(build_row_bytes as u64)?;
                build_rows.push(t);
            }
        }
        self.build.close();
        self.probe.open()?;

        let build_bytes = build_rows.len() * build_row_bytes;
        if build_bytes <= self.budget_bytes {
            // The reservation stays held while the table is resident;
            // `close` releases it.
            self.state = State::InMemory(build_table(&self.keys, &self.ctx.counters, build_rows));
            return Ok(());
        }

        // Grace partitioning: spill both inputs by key hash (accounted);
        // the buffered build rows move to disk, so release their grant.
        let probe_row_bytes = self.probe.layout().row_bytes;
        let mut build_parts: Vec<HeapFile> = (0..PARTITIONS)
            .map(|_| HeapFile::new_temp(self.disk.clone()))
            .collect();
        for row in build_rows {
            self.ctx.counters.add_hashes(1);
            let p = (hash_key(&self.keys, &row, true) as usize) % PARTITIONS;
            build_parts[p].append(&encode_record(&row, build_row_bytes))?;
        }
        self.release((build_bytes) as u64);
        for part in &mut build_parts {
            part.finish()?;
        }
        let mut probe_parts: Vec<HeapFile> = (0..PARTITIONS)
            .map(|_| HeapFile::new_temp(self.disk.clone()))
            .collect();
        // Probe spill stays tuple-wise in both modes: its cost is
        // partition I/O, and interleaving reads and spill writes
        // identically keeps fault-plan ordinals mode-independent.
        loop {
            self.ctx.governor.check()?;
            let Some(row) = self.probe.next()? else { break };
            self.ctx.counters.add_hashes(1);
            let p = (hash_key(&self.keys, &row, false) as usize) % PARTITIONS;
            probe_parts[p].append(&encode_record(&row, probe_row_bytes))?;
        }
        for part in &mut probe_parts {
            part.finish()?;
        }
        self.state = State::Partitioned {
            build_parts,
            probe_parts,
            part: 0,
        };
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        loop {
            self.ctx.governor.check()?;
            if let Some(t) = self.pending.pop() {
                return Ok(Some(t));
            }
            match &mut self.state {
                State::Closed => return Ok(None),
                State::InMemory(table) => {
                    let Some(probe_row) = self.probe.next()? else {
                        return Ok(None);
                    };
                    probe_into(&self.keys, &self.ctx.counters, table, &probe_row, &mut self.pending);
                }
                State::Partitioned {
                    build_parts,
                    probe_parts,
                    part,
                } => {
                    if *part >= PARTITIONS {
                        return Ok(None);
                    }
                    let p = *part;
                    *part += 1;
                    let build_width = self.build.layout().width();
                    let probe_width = self.probe.layout().width();
                    let build_row_bytes = self.build.layout().row_bytes;
                    let mut build_rows: Vec<Tuple> = Vec::new();
                    for record in build_parts[p].scan() {
                        build_rows.push(decode_record(&record?, build_width));
                    }
                    let mut probe_rows: Vec<Tuple> = Vec::new();
                    for record in probe_parts[p].scan() {
                        probe_rows.push(decode_record(&record?, probe_width));
                    }
                    // This partition's table is resident until the arm
                    // ends; reserve it (nothing is held on failure, both
                    // row vectors are dropped).
                    let part_bytes = (build_rows.len() * build_row_bytes) as u64;
                    self.ctx.governor.try_reserve_memory(part_bytes)?;
                    let table = build_table(&self.keys, &self.ctx.counters, build_rows);
                    for row in &probe_rows {
                        probe_into(&self.keys, &self.ctx.counters, &table, row, &mut self.pending);
                    }
                    drop(table);
                    self.ctx.governor.release_memory(part_bytes);
                    self.pending.reverse();
                }
            }
        }
    }

    /// Native batch probe for the in-memory strategy: pulls probe batches
    /// and probes every live row against the resident table, emitting
    /// joined rows contiguously. Grace mode falls back to tuple-looping —
    /// its cost is dominated by partition I/O, not interpretation.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>, ExecError> {
        if !matches!(self.state, State::InMemory(_)) {
            // Grace mode / closed: the default tuple-looping behavior.
            let mut batch = RowBatch::with_capacity(self.layout.width(), max_rows);
            while batch.rows() < max_rows {
                match self.next()? {
                    Some(t) => batch.push_row(&t),
                    None => break,
                }
            }
            return Ok(if batch.rows() == 0 { None } else { Some(batch) });
        }
        let State::InMemory(table) = &self.state else {
            return Err(ExecError::Internal("hash join state changed".into()));
        };
        let mut out = RowBatch::with_capacity(self.layout.width(), max_rows);
        // Stashed matches first: from earlier tuple-path calls, or from a
        // previous batch whose last probe row out-produced the request.
        while out.rows() < max_rows {
            let Some(t) = self.pending.pop() else { break };
            out.push_row(&t);
        }
        while out.rows() < max_rows {
            let Some(probe_batch) = self.probe.next_batch(max_rows)? else {
                break;
            };
            self.ctx.governor.check_batch(probe_batch.len() as u64)?;
            let mut matches = 0u64;
            let mut overflow: Vec<Tuple> = Vec::new();
            for row in &probe_batch {
                if let Some(candidates) = table.get(&hash_key(&self.keys, row, false)) {
                    for b in candidates {
                        if keys_match(&self.keys, b, row) {
                            matches += 1;
                            if out.rows() < max_rows {
                                out.push_concat(b, row);
                            } else {
                                let mut joined = b.clone();
                                joined.extend_from_slice(row);
                                overflow.push(joined);
                            }
                        }
                    }
                }
            }
            self.ctx.counters.add_hashes(probe_batch.len() as u64);
            self.ctx.counters.add_records(matches);
            // `pending` pops from the back; reversed extend keeps order.
            self.pending.extend(overflow.into_iter().rev());
        }
        Ok(if out.rows() == 0 { None } else { Some(out) })
    }

    fn close(&mut self) {
        self.probe.close();
        self.state = State::Closed;
        self.pending.clear();
        if self.reserved > 0 {
            self.ctx.governor.release_memory(self.reserved);
            self.reserved = 0;
        }
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }
}
