//! Hash join: in-memory when the build input fits the memory grant,
//! Grace-partitioned otherwise — serial or partition-parallel.
//!
//! The build side is the **left** input (the optimizer's convention; the
//! commutativity rule generates the swapped variant). When the build input
//! exceeds the memory budget, both inputs are partitioned by join-key hash
//! into accounted temporary files, then each partition pair is joined in
//! memory — the extra write+read pass over both inputs is exactly what the
//! cost model charges.
//!
//! Build-side rows are *reserved* with the query's resource governor
//! before they are held — both the resident build table and each Grace
//! partition's rebuilt table — so a governor limit below what the chosen
//! strategy needs surfaces as [`ExecError::ResourceExhausted`] instead of
//! silently exceeding the grant.
//!
//! With `ctx.dop > 1` the join runs its partition work on worker threads:
//! the in-memory strategy splits build and probe rows into `dop` hash
//! partitions (each row hashed once, as in the serial join) and builds +
//! probes each partition's table in parallel; the Grace strategy spills
//! exactly as the serial join does (identical pages, identical write
//! order) and then joins the spilled partition pairs concurrently, each
//! pair's table reservation drawn from the shared governor through a
//! wait-or-fail [`ReserveGate`] so concurrency never oversubscribes the
//! grant. Work belonging to the serial join's `next()` phase (probe
//! streaming, partition-pair joining) still runs eagerly inside `open()`,
//! but its errors are *deferred* to the first `next()`/`next_batch()`
//! call, so choose-plan fallback semantics stay identical to serial
//! execution. Per-worker counters are merged back, making accounting
//! totals independent of the degree of parallelism.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

use dqep_storage::gen::{decode_record, encode_record};
use dqep_storage::{HeapFile, SimDisk};

use crate::batch::{RowBatch, BATCH_CAPACITY};
use crate::error::ExecError;
use crate::exchange::run_parallel;
use crate::governor::{ExecContext, ExecMode, ResourceGovernor};
use crate::metrics::SharedCounters;
use crate::tuple::{Tuple, TupleLayout};
use crate::{BoxedOperator, Operator};

const PARTITIONS: usize = 8;

/// (build position, probe position) pairs of the equi-join keys.
type Keys = Vec<(usize, usize)>;

/// Multiply-xor finalizer (splitmix64's): full avalanche in two
/// multiplies, no per-row hasher state to construct.
#[inline]
fn mix(v: u64) -> u64 {
    let mut x = v;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes the join-key columns of one tuple with an inline multiply-xor
/// mix. The previous implementation constructed a `DefaultHasher` per
/// row; setting up SipHash state per row dominates hashing one or two
/// `i64`s. The hash is a pure function of the key *values*, so build and
/// probe rows with equal keys hash identically and partition assignment
/// (`hash % P`) stays stable across sides, modes, and degrees of
/// parallelism.
#[inline]
fn hash_key(keys: &Keys, tuple: &[i64], side_build: bool) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15_u64;
    for &(b, p) in keys {
        h = mix(h ^ tuple[if side_build { b } else { p }] as u64);
    }
    h
}

fn keys_match(keys: &Keys, build: &[i64], probe: &[i64]) -> bool {
    keys.iter().all(|&(b, p)| build[b] == probe[p])
}

fn build_table(keys: &Keys, counters: &SharedCounters, rows: Vec<Tuple>) -> HashMap<u64, Vec<Tuple>> {
    // Pre-sized to the exact row count: the build loop never rehashes.
    let mut table: HashMap<u64, Vec<Tuple>> = HashMap::with_capacity(rows.len());
    for row in rows {
        counters.add_hashes(1);
        table.entry(hash_key(keys, &row, true)).or_default().push(row);
    }
    table
}

/// [`build_table`] over rows whose hashes were already computed (and
/// charged) during partitioning — the parallel in-memory path hashes each
/// row once, like the serial path, not once per phase.
fn build_table_prehashed(rows: Vec<(u64, Tuple)>) -> HashMap<u64, Vec<Tuple>> {
    let mut table: HashMap<u64, Vec<Tuple>> = HashMap::with_capacity(rows.len());
    for (h, row) in rows {
        table.entry(h).or_default().push(row);
    }
    table
}

/// Probes `table` with one row, appending matches (build ++ probe) to
/// `out` in reverse (so `pop` yields them in order).
fn probe_into(
    keys: &Keys,
    counters: &SharedCounters,
    table: &HashMap<u64, Vec<Tuple>>,
    probe_row: &[i64],
    out: &mut Vec<Tuple>,
) {
    counters.add_hashes(1);
    if let Some(candidates) = table.get(&hash_key(keys, probe_row, false)) {
        for b in candidates.iter().rev() {
            if keys_match(keys, b, probe_row) {
                let mut joined = b.clone();
                joined.extend_from_slice(probe_row);
                counters.add_records(1);
                out.push(joined);
            }
        }
    }
}

/// Locks a mutex, absorbing poisoning (a worker panic propagates through
/// the thread scope anyway; the gate's counter stays consistent).
fn lock_gate<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wait-or-fail admission for concurrent partition-table reservations: a
/// worker that cannot reserve its partition's bytes *waits* while sibling
/// partitions hold reservations (they will release), and only fails when
/// it is alone — exactly the situation in which the serial join, holding
/// no other partition's memory, would have been refused too.
struct ReserveGate {
    inflight: Mutex<usize>,
    cv: Condvar,
}

impl ReserveGate {
    fn new() -> ReserveGate {
        ReserveGate {
            inflight: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn reserve(&self, governor: &ResourceGovernor, bytes: u64) -> Result<(), ExecError> {
        let mut inflight = lock_gate(&self.inflight);
        loop {
            match governor.try_reserve_memory(bytes) {
                Ok(()) => {
                    *inflight += 1;
                    return Ok(());
                }
                Err(e) => {
                    if *inflight == 0 {
                        return Err(e);
                    }
                    inflight = self
                        .cv
                        .wait(inflight)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    fn release(&self, governor: &ResourceGovernor, bytes: u64) {
        let mut inflight = lock_gate(&self.inflight);
        *inflight -= 1;
        governor.release_memory(bytes);
        self.cv.notify_all();
    }
}

enum State {
    Closed,
    /// Build table resident; probe streams.
    InMemory(HashMap<u64, Vec<Tuple>>),
    /// Grace mode: partition pairs joined one at a time.
    Partitioned {
        build_parts: Vec<HeapFile>,
        probe_parts: Vec<HeapFile>,
        part: usize,
    },
    /// Parallel mode: all partition work finished at `open`; the merged
    /// result streams out.
    Streamed(std::vec::IntoIter<Tuple>),
}

/// Hash join over equi-join keys. With `ctx.dop > 1` the partition work
/// (in-memory or Grace) fans out across worker threads; see the module
/// docs for the parity guarantees.
pub struct HashJoinExec<'a> {
    build: BoxedOperator<'a>,
    probe: BoxedOperator<'a>,
    keys: Keys,
    layout: TupleLayout,
    ctx: ExecContext,
    disk: SimDisk,
    /// Memory budget in bytes for the build table.
    budget_bytes: usize,
    /// Bytes currently reserved with the governor; released in `close`.
    reserved: u64,
    state: State,
    pending: Vec<Tuple>,
    /// A failure from work the serial join performs in `next()` (probe
    /// streaming, partition joining) that the parallel paths perform
    /// eagerly at `open()`; surfaced on the first `next`/`next_batch`.
    pending_err: Option<ExecError>,
    /// Mid-query re-optimization probe, fired once per `open` with the
    /// build input's actual cardinality when the build completes.
    checkpoint: Option<crate::reopt::ReoptProbe>,
}

impl<'a> HashJoinExec<'a> {
    /// Creates a hash join building on `build`. The degree of parallelism
    /// comes from `ctx.dop`; `1` compiles the classic serial join.
    #[must_use]
    pub fn new(
        build: BoxedOperator<'a>,
        probe: BoxedOperator<'a>,
        keys: Keys,
        ctx: ExecContext,
        disk: SimDisk,
        budget_bytes: usize,
    ) -> Self {
        let layout = build.layout().concat(probe.layout());
        HashJoinExec {
            build,
            probe,
            keys,
            layout,
            ctx,
            disk,
            budget_bytes,
            reserved: 0,
            state: State::Closed,
            pending: Vec::new(),
            pending_err: None,
            checkpoint: None,
        }
    }

    /// Attaches a re-optimization checkpoint probe to the build phase.
    pub(crate) fn with_checkpoint(mut self, probe: crate::reopt::ReoptProbe) -> Self {
        self.checkpoint = Some(probe);
        self
    }

    fn reserve(&mut self, bytes: u64) -> Result<(), ExecError> {
        self.ctx.governor.try_reserve_memory(bytes)?;
        self.reserved += bytes;
        Ok(())
    }

    fn release(&mut self, bytes: u64) {
        self.ctx.governor.release_memory(bytes);
        self.reserved -= bytes;
    }

    /// Drains the probe input (mode-faithfully: batches in batch mode,
    /// rows in tuple mode), hashing each row once into `dop` partitions.
    /// Hash charges match the serial probe exactly: one per probe row.
    fn partition_probe(&mut self, dop: usize) -> Result<Vec<Vec<(u64, Tuple)>>, ExecError> {
        let mut parts: Vec<Vec<(u64, Tuple)>> = (0..dop).map(|_| Vec::new()).collect();
        // Pre-size each partition vector from the input's row estimate.
        if let Some(n) = self.probe.estimated_rows() {
            let share = (n.min(1 << 20) as usize / dop).saturating_add(1);
            for p in &mut parts {
                p.reserve(share);
            }
        }
        if self.ctx.mode == ExecMode::Batch {
            while let Some(batch) = self.probe.next_batch(BATCH_CAPACITY)? {
                self.ctx.governor.check_batch(batch.len() as u64)?;
                self.ctx.counters.add_hashes(batch.len() as u64);
                for row in &batch {
                    let h = hash_key(&self.keys, row, false);
                    parts[(h % dop as u64) as usize].push((h, row.to_vec()));
                }
            }
        } else {
            loop {
                self.ctx.governor.check()?;
                let Some(row) = self.probe.next()? else { break };
                self.ctx.counters.add_hashes(1);
                let h = hash_key(&self.keys, &row, false);
                parts[(h % dop as u64) as usize].push((h, row));
            }
        }
        Ok(parts)
    }

    /// Parallel in-memory strategy: hash-partition the (already reserved)
    /// build rows and the probe input `dop` ways, then build + probe each
    /// partition's table on its own worker thread.
    fn open_parallel_in_memory(
        &mut self,
        build_rows: Vec<Tuple>,
        dop: usize,
    ) -> Result<(), ExecError> {
        let share = build_rows.len() / dop + 1;
        let mut build_parts: Vec<Vec<(u64, Tuple)>> =
            (0..dop).map(|_| Vec::with_capacity(share)).collect();
        for row in build_rows {
            self.ctx.counters.add_hashes(1);
            let h = hash_key(&self.keys, &row, true);
            build_parts[(h % dop as u64) as usize].push((h, row));
        }
        // Probe-phase work starts here: the serial join performs it in
        // `next()`, so failures defer to `next()`.
        let probe_parts = match self.partition_probe(dop) {
            Ok(parts) => parts,
            Err(e) => {
                self.pending_err = Some(e);
                self.state = State::Streamed(Vec::new().into_iter());
                return Ok(());
            }
        };
        let keys = &self.keys;
        let tasks: Vec<_> = build_parts
            .into_iter()
            .zip(probe_parts)
            .map(|(bpart, ppart)| {
                let worker = self.ctx.worker();
                move || {
                    let table = build_table_prehashed(bpart);
                    let mut out: Vec<Tuple> = Vec::new();
                    for (h, row) in ppart {
                        if let Some(candidates) = table.get(&h) {
                            for b in candidates {
                                if keys_match(keys, b, &row) {
                                    let mut joined = b.clone();
                                    joined.extend_from_slice(&row);
                                    worker.counters.add_records(1);
                                    out.push(joined);
                                }
                            }
                        }
                    }
                    Ok((out, worker.counters))
                }
            })
            .collect();
        let mut merged: Vec<Tuple> = Vec::new();
        for result in run_parallel(tasks) {
            // Workers are pure CPU here; errors are impossible, but keep
            // the merge defensive so the task signature stays uniform.
            let (out, counters) = result?;
            self.ctx.counters.merge_from(&counters);
            merged.extend(out);
        }
        self.state = State::Streamed(merged.into_iter());
        Ok(())
    }

    /// Parallel Grace strategy: the partitions were spilled exactly as
    /// the serial join spills them; join the `PARTITIONS` pairs
    /// concurrently on `dop` workers claiming partition indexes from an
    /// atomic counter. Each pair's table reservation goes through a
    /// [`ReserveGate`], so concurrent pairs never oversubscribe the query
    /// grant.
    fn open_parallel_grace(
        &mut self,
        build_parts: Vec<HeapFile>,
        probe_parts: Vec<HeapFile>,
        dop: usize,
    ) -> Result<(), ExecError> {
        let build_width = self.build.layout().width();
        let probe_width = self.probe.layout().width();
        let build_row_bytes = self.build.layout().row_bytes;
        let keys = &self.keys;
        let gate = ReserveGate::new();
        let next_part = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..dop.min(PARTITIONS))
            .map(|_| {
                let worker = self.ctx.worker();
                let gate = &gate;
                let next_part = &next_part;
                let build_parts = &build_parts;
                let probe_parts = &probe_parts;
                move || {
                    let mut outs: Vec<(usize, Vec<Tuple>)> = Vec::new();
                    loop {
                        let p = next_part.fetch_add(1, Ordering::Relaxed);
                        if p >= PARTITIONS {
                            return Ok((outs, worker.counters));
                        }
                        worker.governor.check()?;
                        let mut build_rows: Vec<Tuple> = Vec::new();
                        for record in build_parts[p].scan() {
                            build_rows.push(decode_record(&record?, build_width));
                        }
                        let mut probe_rows: Vec<Tuple> = Vec::new();
                        for record in probe_parts[p].scan() {
                            probe_rows.push(decode_record(&record?, probe_width));
                        }
                        let part_bytes = (build_rows.len() * build_row_bytes) as u64;
                        gate.reserve(&worker.governor, part_bytes)?;
                        let table = build_table(keys, &worker.counters, build_rows);
                        let mut out: Vec<Tuple> = Vec::new();
                        for row in &probe_rows {
                            probe_into(keys, &worker.counters, &table, row, &mut out);
                        }
                        out.reverse();
                        drop(table);
                        gate.release(&worker.governor, part_bytes);
                        outs.push((p, out));
                    }
                }
            })
            .collect();
        let results = run_parallel(tasks);
        let mut parts: Vec<(usize, Vec<Tuple>)> = Vec::new();
        let mut first_err: Option<ExecError> = None;
        for result in results {
            match result {
                Ok((outs, counters)) => {
                    self.ctx.counters.merge_from(&counters);
                    parts.extend(outs);
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            // Serial raises partition-phase failures from `next()`.
            self.pending_err = Some(e);
            self.state = State::Streamed(Vec::new().into_iter());
            return Ok(());
        }
        parts.sort_by_key(|&(p, _)| p);
        let merged: Vec<Tuple> = parts.into_iter().flat_map(|(_, out)| out).collect();
        self.state = State::Streamed(merged.into_iter());
        Ok(())
    }
}

impl Operator for HashJoinExec<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pending.clear();
        self.pending_err = None;
        let dop = self.ctx.dop.max(1);
        self.build.open()?;
        let build_row_bytes = self.build.layout().row_bytes;
        let mut build_rows = Vec::new();
        // Pre-size the build buffer from the input's row estimate — the
        // common in-memory case never reallocates mid-build.
        if let Some(n) = self.build.estimated_rows() {
            build_rows.reserve(n.min(1 << 20) as usize);
        }
        if self.ctx.mode == ExecMode::Batch {
            // Batched build: drain whole batches, reserving and checking
            // once per batch. The reservation total and failure condition
            // are identical to the per-row path — only the charge
            // granularity changes.
            loop {
                // Bounded so a refused batch reservation trips with the
                // same cumulative row count as the per-row path: the
                // request never extends past the first refusable row.
                let req = self.ctx.governor.ingest_batch_rows(build_row_bytes);
                let Some(batch) = self.build.next_batch(req)? else { break };
                let n = batch.len();
                self.ctx.governor.check_batch(n as u64)?;
                self.reserve((n * build_row_bytes) as u64)?;
                build_rows.extend(batch.iter().map(<[i64]>::to_vec));
            }
        } else {
            loop {
                self.ctx.governor.check()?;
                let Some(t) = self.build.next()? else { break };
                self.reserve(build_row_bytes as u64)?;
                build_rows.push(t);
            }
        }
        self.build.close();
        // Build completion is a pipeline breaker: the build input's true
        // cardinality is now known exactly.
        if let Some(probe) = &self.checkpoint {
            probe.observe(build_rows.len() as u64);
        }
        self.probe.open()?;

        let build_bytes = build_rows.len() * build_row_bytes;
        if build_bytes <= self.budget_bytes {
            if dop > 1 {
                return self.open_parallel_in_memory(build_rows, dop);
            }
            // The reservation stays held while the table is resident;
            // `close` releases it.
            self.state = State::InMemory(build_table(&self.keys, &self.ctx.counters, build_rows));
            return Ok(());
        }

        // Grace partitioning: spill both inputs by key hash (accounted);
        // the buffered build rows move to disk, so release their grant.
        // The spill is single-threaded at every DOP — identical pages in
        // identical order — only the partition-pair joining fans out.
        let probe_row_bytes = self.probe.layout().row_bytes;
        let mut build_parts: Vec<HeapFile> = (0..PARTITIONS)
            .map(|_| HeapFile::new_temp(self.disk.clone()))
            .collect();
        for row in build_rows {
            self.ctx.counters.add_hashes(1);
            let p = (hash_key(&self.keys, &row, true) as usize) % PARTITIONS;
            build_parts[p].append(&encode_record(&row, build_row_bytes))?;
        }
        self.release((build_bytes) as u64);
        for part in &mut build_parts {
            part.finish()?;
        }
        let mut probe_parts: Vec<HeapFile> = (0..PARTITIONS)
            .map(|_| HeapFile::new_temp(self.disk.clone()))
            .collect();
        // Probe spill stays tuple-wise in both modes: its cost is
        // partition I/O, and interleaving reads and spill writes
        // identically keeps fault-plan ordinals mode-independent.
        loop {
            self.ctx.governor.check()?;
            let Some(row) = self.probe.next()? else { break };
            self.ctx.counters.add_hashes(1);
            let p = (hash_key(&self.keys, &row, false) as usize) % PARTITIONS;
            probe_parts[p].append(&encode_record(&row, probe_row_bytes))?;
        }
        for part in &mut probe_parts {
            part.finish()?;
        }
        if dop > 1 {
            return self.open_parallel_grace(build_parts, probe_parts, dop);
        }
        self.state = State::Partitioned {
            build_parts,
            probe_parts,
            part: 0,
        };
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if let Some(e) = self.pending_err.take() {
            return Err(e);
        }
        loop {
            self.ctx.governor.check()?;
            if let Some(t) = self.pending.pop() {
                return Ok(Some(t));
            }
            match &mut self.state {
                State::Closed => return Ok(None),
                State::Streamed(out) => return Ok(out.next()),
                State::InMemory(table) => {
                    let Some(probe_row) = self.probe.next()? else {
                        return Ok(None);
                    };
                    probe_into(&self.keys, &self.ctx.counters, table, &probe_row, &mut self.pending);
                }
                State::Partitioned {
                    build_parts,
                    probe_parts,
                    part,
                } => {
                    if *part >= PARTITIONS {
                        return Ok(None);
                    }
                    let p = *part;
                    *part += 1;
                    let build_width = self.build.layout().width();
                    let probe_width = self.probe.layout().width();
                    let build_row_bytes = self.build.layout().row_bytes;
                    let mut build_rows: Vec<Tuple> = Vec::new();
                    for record in build_parts[p].scan() {
                        build_rows.push(decode_record(&record?, build_width));
                    }
                    let mut probe_rows: Vec<Tuple> = Vec::new();
                    for record in probe_parts[p].scan() {
                        probe_rows.push(decode_record(&record?, probe_width));
                    }
                    // This partition's table is resident until the arm
                    // ends; reserve it (nothing is held on failure, both
                    // row vectors are dropped).
                    let part_bytes = (build_rows.len() * build_row_bytes) as u64;
                    self.ctx.governor.try_reserve_memory(part_bytes)?;
                    let table = build_table(&self.keys, &self.ctx.counters, build_rows);
                    for row in &probe_rows {
                        probe_into(&self.keys, &self.ctx.counters, &table, row, &mut self.pending);
                    }
                    drop(table);
                    self.ctx.governor.release_memory(part_bytes);
                    self.pending.reverse();
                }
            }
        }
    }

    /// Native batch probe for the in-memory strategy: pulls probe batches
    /// and probes every live row against the resident table, emitting
    /// joined rows contiguously. Grace and parallel modes fall back to
    /// tuple-looping — their cost is partition I/O / thread work, not
    /// interpretation.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<RowBatch>, ExecError> {
        if !matches!(self.state, State::InMemory(_)) {
            // Grace / parallel / closed: the default tuple-looping
            // behavior (`next` also surfaces a deferred parallel-phase
            // error first).
            let mut batch = RowBatch::with_capacity(self.layout.width(), max_rows);
            while batch.rows() < max_rows {
                match self.next()? {
                    Some(t) => batch.push_row(&t),
                    None => break,
                }
            }
            return Ok(if batch.rows() == 0 { None } else { Some(batch) });
        }
        let State::InMemory(table) = &self.state else {
            return Err(ExecError::Internal("hash join state changed".into()));
        };
        let mut out = RowBatch::with_capacity(self.layout.width(), max_rows);
        // Stashed matches first: from earlier tuple-path calls, or from a
        // previous batch whose last probe row out-produced the request.
        while out.rows() < max_rows {
            let Some(t) = self.pending.pop() else { break };
            out.push_row(&t);
        }
        while out.rows() < max_rows {
            let Some(probe_batch) = self.probe.next_batch(max_rows)? else {
                break;
            };
            self.ctx.governor.check_batch(probe_batch.len() as u64)?;
            let mut matches = 0u64;
            let mut overflow: Vec<Tuple> = Vec::new();
            for row in &probe_batch {
                if let Some(candidates) = table.get(&hash_key(&self.keys, row, false)) {
                    for b in candidates {
                        if keys_match(&self.keys, b, row) {
                            matches += 1;
                            if out.rows() < max_rows {
                                out.push_concat(b, row);
                            } else {
                                let mut joined = b.clone();
                                joined.extend_from_slice(row);
                                overflow.push(joined);
                            }
                        }
                    }
                }
            }
            self.ctx.counters.add_hashes(probe_batch.len() as u64);
            self.ctx.counters.add_records(matches);
            // `pending` pops from the back; reversed extend keeps order.
            self.pending.extend(overflow.into_iter().rev());
        }
        Ok(if out.rows() == 0 { None } else { Some(out) })
    }

    fn close(&mut self) {
        self.probe.close();
        self.state = State::Closed;
        self.pending.clear();
        self.pending_err = None;
        if self.reserved > 0 {
            self.ctx.governor.release_memory(self.reserved);
            self.reserved = 0;
        }
    }

    fn layout(&self) -> &TupleLayout {
        &self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::ResourceLimits;

    #[test]
    fn hash_is_stable_across_sides_and_partitions() {
        // Build position 1 and probe position 0 carry the key.
        let keys: Keys = vec![(1, 0)];
        let build = [10i64, 42];
        let probe = [42i64, 99];
        let hb = hash_key(&keys, &build, true);
        let hp = hash_key(&keys, &probe, false);
        assert_eq!(hb, hp, "equal key values hash identically on both sides");
        for parts in [2usize, 4, 8] {
            assert_eq!(
                (hb as usize) % parts,
                (hp as usize) % parts,
                "partition assignment stable at {parts} partitions"
            );
        }
    }

    #[test]
    fn hash_spreads_small_sequential_keys() {
        let keys: Keys = vec![(0, 0)];
        let mut buckets = [0usize; PARTITIONS];
        for v in 0..800i64 {
            let h = hash_key(&keys, &[v], true);
            buckets[(h as usize) % PARTITIONS] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                count > 800 / PARTITIONS / 2,
                "bucket {i} starved: {buckets:?}"
            );
        }
    }

    #[test]
    fn reserve_gate_waits_for_siblings_then_succeeds() {
        use std::sync::Arc;
        let governor = ResourceGovernor::new(ResourceLimits {
            memory_bytes: Some(100),
            ..ResourceLimits::default()
        });
        let gate = Arc::new(ReserveGate::new());
        // One "partition" holds most of the grant; a second must wait for
        // the release instead of failing.
        gate.reserve(&governor, 80).unwrap();
        let gate2 = Arc::clone(&gate);
        let governor2 = governor.clone();
        let waiter = std::thread::spawn(move || gate2.reserve(&governor2, 60));
        std::thread::sleep(std::time::Duration::from_millis(20));
        gate.release(&governor, 80);
        waiter.join().unwrap().unwrap();
        gate.release(&governor, 60);
        assert_eq!(governor.memory_used(), 0);
    }

    #[test]
    fn reserve_gate_fails_when_alone() {
        let governor = ResourceGovernor::new(ResourceLimits {
            memory_bytes: Some(100),
            ..ResourceLimits::default()
        });
        let gate = ReserveGate::new();
        let err = gate.reserve(&governor, 200).unwrap_err();
        assert!(matches!(err, ExecError::ResourceExhausted(_)));
    }
}
