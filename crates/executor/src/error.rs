//! The unified executor error type.
//!
//! Every failure in the execution pipeline — compilation problems, storage
//! faults, resource-governor aborts, cancellation — is an [`ExecError`].
//! Errors are classified **retryable** or **fatal**
//! ([`ExecError::is_retryable`]): a retryable error means *this plan* hit a
//! transient or plan-specific wall (an injected storage fault, a memory
//! grant too small for its buffering strategy) and a different alternative
//! of a choose-plan may still succeed; a fatal error means the query as a
//! whole cannot proceed (cancelled, over a query-wide limit, malformed
//! plan).

use std::fmt;

use dqep_algebra::HostVar;
use dqep_storage::StorageError;

/// Which governed resource was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// A memory reservation exceeded the governor's limit (bytes).
    Memory {
        /// Bytes the operator asked for on top of current usage.
        requested: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The query produced more result rows than allowed.
    Rows {
        /// The configured limit.
        limit: u64,
    },
    /// The query performed more page I/Os than allowed.
    Io {
        /// The configured limit.
        limit: u64,
    },
    /// The query ran past its wall-clock deadline.
    WallClock {
        /// The configured limit in milliseconds.
        limit_ms: u64,
    },
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Memory { requested, limit } => {
                write!(f, "memory (requested {requested} more bytes, limit {limit})")
            }
            Resource::Rows { limit } => write!(f, "rows (limit {limit})"),
            Resource::Io { limit } => write!(f, "io (limit {limit} pages)"),
            Resource::WallClock { limit_ms } => {
                write!(f, "wall-clock (limit {limit_ms} ms)")
            }
        }
    }
}

/// Execution-pipeline errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A predicate references a host variable with no binding.
    UnboundHostVar(HostVar),
    /// The plan still contains a choose-plan operator; compile it with
    /// [`crate::compile_dynamic_plan`] or resolve it first.
    UnresolvedChoosePlan,
    /// A join predicate does not span the operator's inputs.
    PredicateMismatch(String),
    /// The storage layer failed (injected fault, unallocated page, …).
    Storage(StorageError),
    /// The (simulated) network failed: a malformed frame, a closed
    /// channel, or a link whose retransmission budget ran out.
    Network(String),
    /// The resource governor refused to let the query continue.
    ResourceExhausted(Resource),
    /// The query was cooperatively cancelled.
    Cancelled,
    /// An executor invariant was violated (e.g. `next` before `open`).
    Internal(String),
}

impl ExecError {
    /// Whether a choose-plan operator may recover by running a different
    /// alternative.
    ///
    /// Storage faults and memory exhaustion are plan-local: another
    /// alternative may avoid the faulted pages or buffer less. Row, I/O
    /// and wall-clock limits are query-wide budgets already spent, and
    /// cancellation / malformed-plan errors are terminal by definition.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            ExecError::Storage(_) | ExecError::Network(_) => true,
            ExecError::ResourceExhausted(r) => matches!(r, Resource::Memory { .. }),
            ExecError::UnboundHostVar(_)
            | ExecError::UnresolvedChoosePlan
            | ExecError::PredicateMismatch(_)
            | ExecError::Cancelled
            | ExecError::Internal(_) => false,
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnboundHostVar(h) => write!(f, "host variable {h} is unbound"),
            ExecError::UnresolvedChoosePlan => {
                f.write_str("plan contains an unresolved choose-plan operator")
            }
            ExecError::PredicateMismatch(p) => write!(f, "predicate does not span inputs: {p}"),
            ExecError::Storage(_) => f.write_str("storage access failed"),
            ExecError::Network(msg) => write!(f, "network transfer failed: {msg}"),
            ExecError::ResourceExhausted(r) => write!(f, "resource exhausted: {r}"),
            ExecError::Cancelled => f.write_str("query cancelled"),
            ExecError::Internal(msg) => write!(f, "executor invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_storage::PageId;

    #[test]
    fn retryable_classification() {
        let fault = ExecError::Storage(StorageError::InjectedFault {
            page: PageId(1),
            write: false,
        });
        assert!(fault.is_retryable());
        assert!(ExecError::ResourceExhausted(Resource::Memory { requested: 10, limit: 5 })
            .is_retryable());
        assert!(!ExecError::ResourceExhausted(Resource::Rows { limit: 5 }).is_retryable());
        assert!(!ExecError::ResourceExhausted(Resource::Io { limit: 5 }).is_retryable());
        assert!(
            !ExecError::ResourceExhausted(Resource::WallClock { limit_ms: 5 }).is_retryable()
        );
        assert!(!ExecError::Cancelled.is_retryable());
        assert!(!ExecError::UnboundHostVar(HostVar(0)).is_retryable());
        assert!(!ExecError::Internal("x".into()).is_retryable());
    }

    #[test]
    fn source_chains_to_storage() {
        use std::error::Error;
        let e = ExecError::Storage(StorageError::ZeroCapacityPool);
        let src = e.source().expect("storage source");
        assert!(src.to_string().contains("at least one frame"));
        assert!(ExecError::Cancelled.source().is_none());
    }

    #[test]
    fn display_covers_variants() {
        assert!(ExecError::Cancelled.to_string().contains("cancelled"));
        assert!(ExecError::ResourceExhausted(Resource::Io { limit: 9 })
            .to_string()
            .contains("limit 9"));
        assert!(ExecError::ResourceExhausted(Resource::WallClock { limit_ms: 7 })
            .to_string()
            .contains("7 ms"));
        assert!(ExecError::Internal("boom".into()).to_string().contains("boom"));
    }
}
