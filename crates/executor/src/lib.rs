//! Volcano-style iterator execution engine.
//!
//! Executes (resolved) physical plans against a [`dqep_storage`] database:
//! file scans, B-tree scans and range probes, filters, in-memory and
//! partitioned (Grace) hash joins, merge joins, index nested-loop joins,
//! and external sort — every algorithm of the paper's physical algebra
//! (Table 1). The run-time **choose-plan** behaviour is provided by
//! [`execute_plan`], which resolves a dynamic plan with the actual
//! bindings (the Section 4 decision procedure) and then runs the chosen
//! alternative.
//!
//! Execution is *simulated-time measured*: every page access is accounted
//! by the simulated disk and every record/comparison/hash by CPU counters,
//! and [`ExecSummary::simulated_seconds`] converts both with the same
//! constants the cost model uses. The end-to-end validation tests rely on
//! this: the alternative the choose-plan operator picks at start-up must
//! also be the faster one when actually executed.

#![warn(missing_docs)]

pub mod adaptive;
mod choose;
mod compile;
mod exec;
mod filter;
mod hash_join;
mod index_join;
mod merge_join;
mod metrics;
mod scan;
mod sort;
mod tuple;

pub use adaptive::{execute_adaptive, AdaptiveResult};
pub use choose::{compile_dynamic_plan, ChoosePlanExec};
pub use compile::{compile_plan, execute_plan, ExecError};
pub use exec::Operator;
pub use metrics::{CpuCounters, ExecSummary, SharedCounters};
pub use tuple::{Tuple, TupleLayout};
