//! Volcano-style iterator execution engine.
//!
//! Executes (resolved) physical plans against a [`dqep_storage`] database:
//! file scans, B-tree scans and range probes, filters, in-memory and
//! partitioned (Grace) hash joins, merge joins, index nested-loop joins,
//! and external sort — every algorithm of the paper's physical algebra
//! (Table 1). The run-time **choose-plan** behaviour is provided by
//! [`execute_plan`], which resolves a dynamic plan with the actual
//! bindings (the Section 4 decision procedure) and then runs the chosen
//! alternative.
//!
//! Execution is *simulated-time measured*: every page access is accounted
//! by the simulated disk and every record/comparison/hash by CPU counters,
//! and [`ExecSummary::simulated_seconds`] converts both with the same
//! constants the cost model uses. The end-to-end validation tests rely on
//! this: the alternative the choose-plan operator picks at start-up must
//! also be the faster one when actually executed.
//!
//! The pipeline is **fallible end to end**: `open`/`next` return
//! `Result`, storage faults surface as [`ExecError::Storage`], and every
//! query runs under a [`ResourceGovernor`] enforcing its memory grant plus
//! optional row / I/O / wall-clock budgets with cooperative cancellation
//! ([`execute_plan_with`]). A choose-plan whose chosen alternative fails
//! *retryably* at `open` falls back to the next alternative in cost order,
//! recording the fallback in [`ExecSummary::fallbacks`].
//!
//! Execution is **vectorized by default**: operators exchange
//! [`RowBatch`]es of ~[`BATCH_CAPACITY`] rows through
//! [`Operator::next_batch`], with native batch implementations for the
//! hot operators (scans, filter, hash join, sort) and a tuple-looping
//! default for the rest. The tuple path remains fully supported
//! ([`ExecMode::Tuple`], [`execute_plan_mode`]) and the two paths produce
//! identical results, accounting, and fallback behavior.

#![warn(missing_docs)]
// Runtime executor code must propagate errors, not panic: unwrap/expect
// are reserved for tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
// The executor is the hot path; keep the perf lint group clean.
#![deny(clippy::perf)]

pub mod adaptive;
mod batch;
mod choose;
mod compile;
mod delta;
mod error;
mod exchange;
mod exec;
mod explain;
mod filter;
mod governor;
mod hash_join;
mod index_join;
mod journal;
mod merge_join;
mod metrics;
mod netexchange;
mod reopt;
mod scan;
mod sort;
mod trace;
mod tuple;

pub use adaptive::{execute_adaptive, AdaptiveResult};
pub use batch::{RowBatch, RowBatchIter, BATCH_CAPACITY};
pub use choose::{compile_dynamic_plan, ChoosePlanExec};
pub use compile::{
    compile_plan, execute_plan, execute_plan_dop, execute_plan_mode, execute_plan_traced,
    execute_plan_with, run_compiled, run_dynamic,
};
pub use delta::{compile_delta_plan, BaseDeltas, Delta, DeltaPipeline};
pub use error::{ExecError, Resource};
pub use exchange::{parallel_scan, ExchangeExec};
pub use exec::{drain, drain_batch, BoxedOperator, Operator};
pub use explain::{
    card_drift, cost_drift, explain_json, parse_json, render_explain, validate_explain_json,
    JsonValue,
};
pub use governor::{ExecContext, ExecMode, ResourceGovernor, ResourceLimits};
pub use hash_join::{fold_hash_column, hash_key, mix, HASH_SEED};
pub use journal::{
    journal, monotonic_ns, validate_journal_json, EventKind, Journal, JournalEvent,
    JOURNAL_CAPACITY, NO_ID,
};
pub use metrics::{CpuCounters, ExecSummary, PlanCacheInfo, SharedCounters};
pub use netexchange::{
    credit_frames, decode_frame, decode_frame_traced, encode_frame, encode_frame_traced,
    frame_encoded_len, presized_batch, scatter_by_shard, shard_route, FrameTrace, LinkFaultPlan,
    NetChannel, NetConfig, NetStats, SimNet, FRAME_HEADER_BYTES,
};
pub use reopt::{
    escapes_interval, execute_plan_reopt, execute_plan_reopt_ctx, execute_plan_reopt_traced,
    MaterializedScanExec, ReoptConfig, ReoptCounters, ReoptEvent, ReoptEventKind, ReoptOutcome,
    ReoptReport, ReoptState,
};
pub use trace::{
    merge_distributed, AltAudit, AttemptAudit, ChooseAudit, NetSpanStats, NodeEstimate, SpanId,
    SpanRecord, SpanStats, TraceReport, TracedExec, Tracer,
};
pub use tuple::{Tuple, TupleLayout};
