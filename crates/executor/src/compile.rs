//! Plan compilation: physical plan nodes → executable operator trees.

use std::fmt;
use std::sync::Arc;

use dqep_algebra::{HostVar, JoinPred, PhysicalOp, Scalar, SelectPred};
use dqep_catalog::Catalog;
use dqep_cost::{Bindings, Environment};
use dqep_plan::{evaluate_startup, PlanNode, StartupResult};
use dqep_storage::StoredDatabase;

use crate::exec::drain;
use crate::filter::{FilterExec, ResolvedPred};
use crate::hash_join::HashJoinExec;
use crate::index_join::IndexJoinExec;
use crate::merge_join::MergeJoinExec;
use crate::metrics::{ExecSummary, SharedCounters};
use crate::scan::{BtreeScanExec, FileScanExec, FilterBtreeScanExec};
use crate::sort::SortExec;
use crate::tuple::TupleLayout;
use crate::Operator;

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A predicate references a host variable with no binding.
    UnboundHostVar(HostVar),
    /// The plan still contains a choose-plan operator; resolve it with
    /// [`evaluate_startup`] (which [`execute_plan`] does) before compiling.
    UnresolvedChoosePlan,
    /// A join predicate does not span the operator's inputs.
    PredicateMismatch(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnboundHostVar(h) => write!(f, "host variable {h} is unbound"),
            ExecError::UnresolvedChoosePlan => {
                f.write_str("plan contains an unresolved choose-plan operator")
            }
            ExecError::PredicateMismatch(p) => write!(f, "predicate does not span inputs: {p}"),
        }
    }
}

impl std::error::Error for ExecError {}

fn pred_value(pred: &SelectPred, bindings: &Bindings) -> Result<i64, ExecError> {
    match pred.rhs {
        Scalar::Const(v) => Ok(v),
        Scalar::Host(h) => bindings.value(h).ok_or(ExecError::UnboundHostVar(h)),
    }
}

fn resolve_pred(
    pred: &SelectPred,
    layout: &TupleLayout,
    bindings: &Bindings,
) -> Result<ResolvedPred, ExecError> {
    let pos = layout
        .position(pred.attr)
        .ok_or_else(|| ExecError::PredicateMismatch(pred.to_string()))?;
    Ok(ResolvedPred {
        pos,
        op: pred.op,
        value: pred_value(pred, bindings)?,
    })
}

/// Orients a join predicate so its first position indexes `left` and its
/// second indexes `right`.
fn orient(
    pred: &JoinPred,
    left: &TupleLayout,
    right: &TupleLayout,
) -> Result<(usize, usize), ExecError> {
    if let (Some(l), Some(r)) = (left.position(pred.left), right.position(pred.right)) {
        return Ok((l, r));
    }
    if let (Some(l), Some(r)) = (left.position(pred.right), right.position(pred.left)) {
        return Ok((l, r));
    }
    Err(ExecError::PredicateMismatch(pred.to_string()))
}

/// Compiles a **resolved** (choose-plan-free) physical plan into an
/// executable operator tree.
pub fn compile_plan<'a>(
    node: &Arc<PlanNode>,
    db: &'a StoredDatabase,
    catalog: &'a Catalog,
    bindings: &Bindings,
    memory_bytes: usize,
    counters: &SharedCounters,
) -> Result<Box<dyn Operator + 'a>, ExecError> {
    Ok(match &node.op {
        PhysicalOp::FileScan { relation } => Box::new(FileScanExec::new(
            db.table(*relation),
            TupleLayout::base(catalog, *relation),
            counters.clone(),
        )),
        PhysicalOp::BtreeScan {
            relation, index, ..
        } => Box::new(BtreeScanExec::new(
            db.table(*relation),
            *index,
            TupleLayout::base(catalog, *relation),
            counters.clone(),
        )),
        PhysicalOp::FilterBtreeScan {
            relation,
            index,
            predicate,
        } => {
            let layout = TupleLayout::base(catalog, *relation);
            let resolved = resolve_pred(predicate, &layout, bindings)?;
            Box::new(FilterBtreeScanExec::new(
                db.table(*relation),
                *index,
                resolved.key_range(),
                layout,
                counters.clone(),
            ))
        }
        PhysicalOp::Filter { predicate } => {
            let child = compile_plan(&node.children[0], db, catalog, bindings, memory_bytes, counters)?;
            let resolved = resolve_pred(predicate, child.layout(), bindings)?;
            Box::new(FilterExec::new(child, resolved, counters.clone()))
        }
        PhysicalOp::HashJoin { predicates } => {
            let build =
                compile_plan(&node.children[0], db, catalog, bindings, memory_bytes, counters)?;
            let probe =
                compile_plan(&node.children[1], db, catalog, bindings, memory_bytes, counters)?;
            let keys = predicates
                .iter()
                .map(|p| orient(p, build.layout(), probe.layout()))
                .collect::<Result<Vec<_>, _>>()?;
            Box::new(HashJoinExec::new(
                build,
                probe,
                keys,
                counters.clone(),
                db.disk.clone(),
                memory_bytes,
            ))
        }
        PhysicalOp::MergeJoin { predicates } => {
            let left =
                compile_plan(&node.children[0], db, catalog, bindings, memory_bytes, counters)?;
            let right =
                compile_plan(&node.children[1], db, catalog, bindings, memory_bytes, counters)?;
            let mut keys = predicates
                .iter()
                .map(|p| orient(p, left.layout(), right.layout()))
                .collect::<Result<Vec<_>, _>>()?;
            let (lk, rk) = keys.remove(0);
            Box::new(MergeJoinExec::new(left, right, lk, rk, keys, counters.clone()))
        }
        PhysicalOp::IndexJoin {
            predicates,
            inner,
            index,
            residual,
        } => {
            let outer =
                compile_plan(&node.children[0], db, catalog, bindings, memory_bytes, counters)?;
            let inner_layout = TupleLayout::base(catalog, *inner);
            let mut keys = predicates
                .iter()
                .map(|p| orient(p, outer.layout(), &inner_layout))
                .collect::<Result<Vec<_>, _>>()?;
            let (outer_key, _) = keys.remove(0);
            let residual = residual
                .as_ref()
                .map(|p| resolve_pred(p, &inner_layout, bindings))
                .transpose()?;
            Box::new(IndexJoinExec::new(
                outer,
                db.table(*inner),
                &inner_layout,
                *index,
                outer_key,
                keys,
                residual,
                counters.clone(),
                memory_bytes / dqep_storage::PAGE_SIZE,
            ))
        }
        PhysicalOp::Sort { attr } => {
            let child = compile_plan(&node.children[0], db, catalog, bindings, memory_bytes, counters)?;
            let key = child
                .layout()
                .position(*attr)
                .ok_or_else(|| ExecError::PredicateMismatch(format!("sort key {attr}")))?;
            Box::new(SortExec::new(
                child,
                key,
                counters.clone(),
                db.disk.clone(),
                memory_bytes,
            ))
        }
        PhysicalOp::ChoosePlan => return Err(ExecError::UnresolvedChoosePlan),
    })
}

/// Executes a (static or dynamic) plan end-to-end: runs the start-up-time
/// decision procedure against the bindings, compiles the resolved plan,
/// drains it, and reports both the execution summary (simulated I/O + CPU)
/// and the start-up result.
pub fn execute_plan(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
) -> Result<(ExecSummary, StartupResult), ExecError> {
    let startup = evaluate_startup(plan, catalog, env, bindings);
    let memory_pages = bindings
        .memory_pages
        .unwrap_or_else(|| env.memory.expected());
    let memory_bytes = (memory_pages * catalog.config.page_size as f64) as usize;
    let counters = SharedCounters::new();
    let io_before = db.disk.stats();
    let mut op = compile_plan(&startup.resolved, db, catalog, bindings, memory_bytes, &counters)?;
    let rows = drain(op.as_mut()).len() as u64;
    let io = db.disk.stats().since(&io_before);
    Ok((
        ExecSummary {
            rows,
            cpu: counters.snapshot(),
            io,
        },
        startup,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqep_algebra::{CompareOp, LogicalExpr};
    use dqep_catalog::{CatalogBuilder, SystemConfig};
    use dqep_core::Optimizer;

    /// Two small relations joined on `j`, selection on `r.a`.
    fn fixture() -> (Catalog, StoredDatabase) {
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 400, 512, |r| {
                r.attr("a", 400.0).attr("j", 50.0).btree("a", false).btree("j", false)
            })
            .relation("s", 300, 512, |r| {
                r.attr("a", 300.0).attr("j", 50.0).btree("a", false).btree("j", false)
            })
            .build()
            .unwrap();
        let db = StoredDatabase::generate(&cat, 99);
        (cat, db)
    }

    fn select_query(cat: &Catalog) -> LogicalExpr {
        let r = cat.relation_by_name("r").unwrap();
        LogicalExpr::get(r.id).select(SelectPred::unbound(
            r.attr_id("a").unwrap(),
            CompareOp::Lt,
            HostVar(0),
        ))
    }

    #[test]
    fn executes_resolved_selection_and_counts_match_ground_truth() {
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env)
            .optimize(&select_query(&cat))
            .unwrap()
            .plan;
        for v in [0i64, 40, 200, 400] {
            let bindings = Bindings::new().with_value(HostVar(0), v);
            let (summary, _) = execute_plan(&plan, &db, &cat, &env, &bindings).unwrap();
            // Ground truth from a raw heap scan.
            let table = db.table(cat.relation_by_name("r").unwrap().id);
            let expected = table
                .heap
                .scan()
                .filter(|rec| table.decode(rec)[0] < v)
                .count() as u64;
            assert_eq!(summary.rows, expected, "binding {v}");
        }
    }

    #[test]
    fn alternative_plans_agree_on_results() {
        // Both alternatives of the Figure 1 choose-plan produce the same
        // rows; only their cost differs.
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env)
            .optimize(&select_query(&cat))
            .unwrap()
            .plan;
        assert!(plan.is_choose_plan());
        let bindings = Bindings::new().with_value(HostVar(0), 120);
        let counters = SharedCounters::new();
        let mut results: Vec<u64> = Vec::new();
        for alt in &plan.children {
            let mut op =
                compile_plan(alt, &db, &cat, &bindings, 1 << 20, &counters).unwrap();
            results.push(drain(op.as_mut()).len() as u64);
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
    }

    #[test]
    fn chosen_alternative_is_faster_in_simulated_time() {
        // The headline validation: the start-up decision picks the plan
        // that is actually faster when executed on stored data.
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env)
            .optimize(&select_query(&cat))
            .unwrap()
            .plan;
        for v in [4i64, 396] {
            let bindings = Bindings::new().with_value(HostVar(0), v);
            let startup = evaluate_startup(&plan, &cat, &env, &bindings);
            let mut times = Vec::new();
            for alt in &plan.children {
                let counters = SharedCounters::new();
                let before = db.disk.stats();
                let mut op =
                    compile_plan(alt, &db, &cat, &bindings, 1 << 20, &counters).unwrap();
                let _ = drain(op.as_mut());
                let io = db.disk.stats().since(&before);
                let summary = ExecSummary {
                    rows: 0,
                    cpu: counters.snapshot(),
                    io,
                };
                times.push(summary.simulated_seconds(&cat.config));
            }
            let chosen = startup.decisions[0].chosen_index;
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                times[chosen] <= min * 1.3 + 1e-9,
                "binding {v}: chose {chosen} ({:.4}s) but best is {min:.4}s ({times:?})",
                times[chosen]
            );
        }
    }

    #[test]
    fn join_query_executes_and_matches_nested_loop_ground_truth() {
        let (cat, db) = fixture();
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        let q = LogicalExpr::get(r.id)
            .select(SelectPred::unbound(
                r.attr_id("a").unwrap(),
                CompareOp::Lt,
                HostVar(0),
            ))
            .join(
                LogicalExpr::get(s.id),
                vec![JoinPred::new(r.attr_id("j").unwrap(), s.attr_id("j").unwrap())],
            );
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;

        let bindings = Bindings::new().with_value(HostVar(0), 100);
        let (summary, _) = execute_plan(&plan, &db, &cat, &env, &bindings).unwrap();

        // Ground truth: nested loops over raw heap scans.
        let rt = db.table(r.id);
        let st = db.table(s.id);
        let r_rows: Vec<Vec<i64>> = rt.heap.scan().map(|rec| rt.decode(&rec)).collect();
        let s_rows: Vec<Vec<i64>> = st.heap.scan().map(|rec| st.decode(&rec)).collect();
        let expected = r_rows
            .iter()
            .filter(|row| row[0] < 100)
            .map(|row| s_rows.iter().filter(|srow| srow[1] == row[1]).count() as u64)
            .sum::<u64>();
        assert_eq!(summary.rows, expected);
        assert!(summary.io.total() > 0);
        assert!(summary.cpu.records > 0);
    }

    #[test]
    fn unbound_host_var_is_reported() {
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env)
            .optimize(&select_query(&cat))
            .unwrap()
            .plan;
        let err = execute_plan(&plan, &db, &cat, &env, &Bindings::new());
        // Start-up evaluation falls back to defaults, but compilation of a
        // predicate with no binding must fail.
        assert_eq!(err.unwrap_err(), ExecError::UnboundHostVar(HostVar(0)));
    }

    #[test]
    fn choose_plan_rejected_by_direct_compile() {
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env)
            .optimize(&select_query(&cat))
            .unwrap()
            .plan;
        assert!(plan.is_choose_plan());
        let err = compile_plan(
            &plan,
            &db,
            &cat,
            &Bindings::new().with_value(HostVar(0), 1),
            1 << 20,
            &SharedCounters::new(),
        );
        assert_eq!(err.err(), Some(ExecError::UnresolvedChoosePlan));
    }
}
