//! Plan compilation: physical plan nodes → executable operator trees.

use std::sync::Arc;

use dqep_algebra::{JoinPred, PhysicalOp, Scalar, SelectPred};
use dqep_catalog::Catalog;
use dqep_cost::{Bindings, Environment};
use dqep_plan::{evaluate_startup, PlanNode, StartupResult};
use dqep_storage::StoredDatabase;

use crate::batch::BATCH_CAPACITY;
use crate::error::ExecError;
use crate::filter::{FilterExec, ResolvedPred};
use crate::governor::{ExecContext, ExecMode, ResourceGovernor, ResourceLimits};
use crate::hash_join::HashJoinExec;
use crate::index_join::IndexJoinExec;
use crate::merge_join::MergeJoinExec;
use crate::metrics::{ExecSummary, SharedCounters};
use crate::scan::{BtreeScanExec, FileScanExec, FilterBtreeScanExec};
use crate::sort::SortExec;
use crate::trace::{TraceReport, Tracer};
use crate::tuple::TupleLayout;
use crate::{BoxedOperator, Operator};

fn pred_value(pred: &SelectPred, bindings: &Bindings) -> Result<i64, ExecError> {
    match pred.rhs {
        Scalar::Const(v) => Ok(v),
        Scalar::Host(h) => bindings.value(h).ok_or(ExecError::UnboundHostVar(h)),
    }
}

pub(crate) fn resolve_pred(
    pred: &SelectPred,
    layout: &TupleLayout,
    bindings: &Bindings,
) -> Result<ResolvedPred, ExecError> {
    let pos = layout
        .position(pred.attr)
        .ok_or_else(|| ExecError::PredicateMismatch(pred.to_string()))?;
    Ok(ResolvedPred {
        pos,
        op: pred.op,
        value: pred_value(pred, bindings)?,
    })
}

/// Orients a join predicate so its first position indexes `left` and its
/// second indexes `right`.
pub(crate) fn orient(
    pred: &JoinPred,
    left: &TupleLayout,
    right: &TupleLayout,
) -> Result<(usize, usize), ExecError> {
    if let (Some(l), Some(r)) = (left.position(pred.left), right.position(pred.right)) {
        return Ok((l, r));
    }
    if let (Some(l), Some(r)) = (left.position(pred.right), right.position(pred.left)) {
        return Ok((l, r));
    }
    Err(ExecError::PredicateMismatch(pred.to_string()))
}

/// Compiles a **resolved** (choose-plan-free) physical plan into an
/// executable operator tree. All operators share `ctx` — its counters for
/// simulated-CPU accounting and its governor for resource enforcement.
///
/// # Errors
/// [`ExecError::UnresolvedChoosePlan`] on a choose-plan node (compile
/// those with [`crate::compile_dynamic_plan`]); unbound-host-variable and
/// predicate errors from resolution; storage errors from operator setup.
pub fn compile_plan<'a>(
    node: &Arc<PlanNode>,
    db: &'a StoredDatabase,
    catalog: &'a Catalog,
    bindings: &Bindings,
    memory_bytes: usize,
    ctx: &ExecContext,
) -> Result<BoxedOperator<'a>, ExecError> {
    compile_node(node, db, catalog, None, bindings, memory_bytes, ctx)
}

/// Shared compiler body behind [`compile_plan`] (`env = None`: choose-plan
/// nodes are an error) and [`crate::compile_dynamic_plan`] (`env = Some`:
/// choose-plan nodes — at the root or anywhere inside the tree — become
/// run-time [`crate::ChoosePlanExec`] operators deciding lazily at
/// `open()`).
#[allow(clippy::too_many_lines)]
pub(crate) fn compile_node<'a>(
    node: &Arc<PlanNode>,
    db: &'a StoredDatabase,
    catalog: &'a Catalog,
    env: Option<&Environment>,
    bindings: &Bindings,
    memory_bytes: usize,
    ctx: &ExecContext,
) -> Result<BoxedOperator<'a>, ExecError> {
    // With a tracer in the context, every node gets a span and its
    // operator a `TracedExec` wrapper; children compile under `traced`'s
    // context so their spans nest. Without one, this is a single branch.
    let traced = crate::trace::node_span(ctx, node);
    let ctx = traced.as_ref().map_or(ctx, |(_, tctx)| tctx);
    // Mid-query re-optimization: a node whose result was retained at a
    // checkpoint compiles to a scan over the retained rows — the
    // substitution that keeps a re-plan from ever repeating finished work.
    if let Some(state) = ctx.reopt.as_ref() {
        if let Some((layout, rows)) = state.materialized(node.id) {
            let op: BoxedOperator<'a> =
                Box::new(crate::reopt::MaterializedScanExec::new(rows, layout, ctx.clone()));
            return Ok(match traced {
                Some((span, _)) => crate::trace::wrap_span(op, span, ctx, Some(db.disk.clone())),
                None => op,
            });
        }
    }
    // A checkpoint probe for a pipeline-breaker input, unless that input
    // is already served from retained rows (its cardinality is known).
    let probe_for = |input: &Arc<PlanNode>| {
        let state = ctx.reopt.as_ref()?;
        if state.materialized(input.id).is_some() {
            return None;
        }
        Some(crate::reopt::ReoptProbe::new(
            Arc::clone(state),
            input.id,
            input.op.name(),
            input.stats.card,
        ))
    };
    let op: BoxedOperator<'a> = match &node.op {
        PhysicalOp::FileScan { relation } => {
            let table = db.table(*relation);
            // The one place parallelism enters a compiled tree: a DOP > 1
            // file scan becomes an exchange over morsel-scan workers.
            // Every other operator reads `ctx.dop` itself.
            if ctx.dop > 1 && table.heap.page_count() >= 2 {
                let mut exchange = crate::exchange::parallel_scan(
                    table,
                    TupleLayout::base(catalog, *relation),
                    ctx,
                );
                // The exchange's worker join is a pipeline breaker: all
                // workers' output is merged before anything flows on.
                if let Some(probe) = probe_for(node) {
                    exchange = exchange.with_checkpoint(probe);
                }
                Box::new(exchange)
            } else {
                Box::new(FileScanExec::new(
                    table,
                    TupleLayout::base(catalog, *relation),
                    ctx.clone(),
                ))
            }
        }
        PhysicalOp::BtreeScan {
            relation, index, ..
        } => Box::new(BtreeScanExec::new(
            db.table(*relation),
            *index,
            TupleLayout::base(catalog, *relation),
            ctx.clone(),
        )),
        PhysicalOp::FilterBtreeScan {
            relation,
            index,
            predicate,
        } => {
            let layout = TupleLayout::base(catalog, *relation);
            let resolved = resolve_pred(predicate, &layout, bindings)?;
            Box::new(FilterBtreeScanExec::new(
                db.table(*relation),
                *index,
                resolved.key_range(),
                layout,
                ctx.clone(),
            ))
        }
        PhysicalOp::Filter { predicate } => {
            let child = compile_node(&node.children[0], db, catalog, env, bindings, memory_bytes, ctx)?;
            let resolved = resolve_pred(predicate, child.layout(), bindings)?;
            Box::new(FilterExec::new(child, resolved, ctx.clone()))
        }
        PhysicalOp::HashJoin { predicates } => {
            let build =
                compile_node(&node.children[0], db, catalog, env, bindings, memory_bytes, ctx)?;
            let probe =
                compile_node(&node.children[1], db, catalog, env, bindings, memory_bytes, ctx)?;
            let keys = predicates
                .iter()
                .map(|p| orient(p, build.layout(), probe.layout()))
                .collect::<Result<Vec<_>, _>>()?;
            let mut join = HashJoinExec::new(
                build,
                probe,
                keys,
                ctx.clone(),
                db.disk.clone(),
                memory_bytes,
            );
            if let Some(cp) = probe_for(&node.children[0]) {
                join = join.with_checkpoint(cp);
            }
            Box::new(join)
        }
        PhysicalOp::MergeJoin { predicates } => {
            let left =
                compile_node(&node.children[0], db, catalog, env, bindings, memory_bytes, ctx)?;
            let right =
                compile_node(&node.children[1], db, catalog, env, bindings, memory_bytes, ctx)?;
            let mut keys = predicates
                .iter()
                .map(|p| orient(p, left.layout(), right.layout()))
                .collect::<Result<Vec<_>, _>>()?;
            let (lk, rk) = keys.remove(0);
            Box::new(MergeJoinExec::new(left, right, lk, rk, keys, ctx.clone()))
        }
        PhysicalOp::IndexJoin {
            predicates,
            inner,
            index,
            residual,
        } => {
            let outer =
                compile_node(&node.children[0], db, catalog, env, bindings, memory_bytes, ctx)?;
            let inner_layout = TupleLayout::base(catalog, *inner);
            let mut keys = predicates
                .iter()
                .map(|p| orient(p, outer.layout(), &inner_layout))
                .collect::<Result<Vec<_>, _>>()?;
            let (outer_key, _) = keys.remove(0);
            let residual = residual
                .as_ref()
                .map(|p| resolve_pred(p, &inner_layout, bindings))
                .transpose()?;
            Box::new(IndexJoinExec::new(
                outer,
                db.table(*inner),
                &inner_layout,
                *index,
                outer_key,
                keys,
                residual,
                ctx.clone(),
                memory_bytes / dqep_storage::PAGE_SIZE,
            )?)
        }
        PhysicalOp::Sort { attr } => {
            let child = compile_node(&node.children[0], db, catalog, env, bindings, memory_bytes, ctx)?;
            let key = child
                .layout()
                .position(*attr)
                .ok_or_else(|| ExecError::PredicateMismatch(format!("sort key {attr}")))?;
            let mut sort = SortExec::new(
                child,
                key,
                ctx.clone(),
                db.disk.clone(),
                memory_bytes,
            );
            if let Some(cp) = probe_for(&node.children[0]) {
                sort = sort.with_checkpoint(cp);
            }
            Box::new(sort)
        }
        PhysicalOp::ChoosePlan => match env {
            // Dynamic compilation: the choose-plan becomes its run-time
            // operator, deciding (with any checkpoint observations) at
            // `open()`. It keeps the traced child context so alternatives
            // compiled lazily nest their spans under its span.
            Some(env) => Box::new(crate::choose::ChoosePlanExec::new(
                Arc::clone(node),
                db,
                catalog,
                env.clone(),
                bindings.clone(),
                memory_bytes,
                ctx.clone(),
            )),
            None => return Err(ExecError::UnresolvedChoosePlan),
        },
    };
    Ok(match traced {
        Some((span, _)) => crate::trace::wrap_span(op, span, ctx, Some(db.disk.clone())),
        None => op,
    })
}

/// Compiles a **resolved** (choose-plan-free) plan under the caller's
/// [`ExecContext`] and drains it, returning the produced row count. The
/// caller owns the context — counters accumulate into `ctx.counters`, the
/// governor's budgets and cancellation apply, and `ctx.mode` selects the
/// tuple or batch pipeline. This is the serving-layer entry point for
/// running a cached resolved plan without re-arbitration.
///
/// # Errors
/// Any [`ExecError`] from compilation or execution, including
/// [`ExecError::UnresolvedChoosePlan`] for dynamic plans (use
/// [`run_dynamic`] for those).
pub fn run_compiled(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    bindings: &Bindings,
    memory_bytes: usize,
    ctx: &ExecContext,
) -> Result<u64, ExecError> {
    let mut op = compile_plan(plan, db, catalog, bindings, memory_bytes, ctx)?;
    drain_root(op.as_mut(), &ctx.governor, ctx.mode)
}

/// Compiles a (possibly dynamic) plan under the caller's [`ExecContext`] —
/// mapping choose-plan nodes to the run-time [`crate::ChoosePlanExec`], so
/// arbitration happens at `open()` and retryable failures fall back to the
/// next-cheapest alternative — and drains it, returning the produced row
/// count. Fallbacks taken are recorded in `ctx.counters`.
///
/// # Errors
/// Any [`ExecError`] from compilation or execution.
pub fn run_dynamic(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    memory_bytes: usize,
    ctx: &ExecContext,
) -> Result<u64, ExecError> {
    let mut op =
        crate::choose::compile_dynamic_plan(plan, db, catalog, env, bindings, memory_bytes, ctx)?;
    drain_root(op.as_mut(), &ctx.governor, ctx.mode)
}

/// Opens and drains `op`, charging produced rows against the row budget;
/// closes the operator on success and on error. In batch mode the root
/// pulls [`crate::RowBatch`]es and charges the row budget once per batch —
/// the budget trips at the same cumulative counts as the per-row charge.
fn drain_root(
    op: &mut dyn Operator,
    governor: &ResourceGovernor,
    mode: ExecMode,
) -> Result<u64, ExecError> {
    fn run(op: &mut dyn Operator, governor: &ResourceGovernor, mode: ExecMode) -> Result<u64, ExecError> {
        let mut rows = 0u64;
        op.open()?;
        match mode {
            ExecMode::Tuple => {
                while op.next()?.is_some() {
                    governor.charge_rows(1)?;
                    rows += 1;
                }
            }
            ExecMode::Batch => {
                while let Some(batch) = op.next_batch(BATCH_CAPACITY)? {
                    let n = batch.len() as u64;
                    governor.charge_rows(n)?;
                    rows += n;
                }
            }
        }
        Ok(rows)
    }
    let result = run(op, governor, mode);
    op.close();
    result
}

/// Executes a (static or dynamic) plan end-to-end: runs the start-up-time
/// decision procedure against the bindings, compiles the plan — mapping
/// choose-plan nodes to the run-time [`crate::ChoosePlanExec`], so a
/// retryable failure in the chosen alternative falls back to the next one
/// — drains it, and reports both the execution summary (simulated I/O +
/// CPU + fallbacks taken) and the start-up result.
///
/// No resource limits are enforced; use [`execute_plan_with`] for that.
///
/// # Errors
/// Any [`ExecError`] from compilation or execution.
pub fn execute_plan(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
) -> Result<(ExecSummary, StartupResult), ExecError> {
    execute_plan_with(plan, db, catalog, env, bindings, ResourceLimits::unlimited())
}

/// [`execute_plan`] with resource governance: the query runs under a
/// [`ResourceGovernor`] enforcing `limits` (memory grant, row / I/O
/// budgets, wall-clock deadline). Uses the default (batch) execution
/// mode; see [`execute_plan_mode`] to pick explicitly.
///
/// # Errors
/// Any [`ExecError`], including [`ExecError::ResourceExhausted`] when a
/// budget is exceeded.
pub fn execute_plan_with(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    limits: ResourceLimits,
) -> Result<(ExecSummary, StartupResult), ExecError> {
    execute_plan_mode(plan, db, catalog, env, bindings, limits, ExecMode::default())
}

/// [`execute_plan_with`] with an explicit [`ExecMode`]: `Tuple` runs the
/// classic Volcano `next()` pipeline, `Batch` the vectorized one. Both
/// produce identical rows, identical simulated-cost accounting, and
/// identical choose-plan fallback behavior — the batch-parity tests pin
/// this down, and the executor benchmarks measure the difference that is
/// left: wall-clock interpretation overhead.
///
/// # Errors
/// Any [`ExecError`], including [`ExecError::ResourceExhausted`] when a
/// budget is exceeded.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_mode(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    limits: ResourceLimits,
    mode: ExecMode,
) -> Result<(ExecSummary, StartupResult), ExecError> {
    execute_plan_dop(plan, db, catalog, env, bindings, limits, mode, 1)
}

/// [`execute_plan_mode`] with an explicit degree of intra-query
/// parallelism. `dop > 1` compiles exchange-parallel operators — the
/// morsel-driven partition scan, the partitioned parallel hash join, and
/// the parallel-run sort — all behind the ordinary [`Operator`]
/// interface, so choose-plan fallback, resource governance, fault
/// injection, and both execution modes compose unchanged. Results,
/// counter totals, and fallback behavior are identical to `dop = 1`
/// (rows up to multiset order); the parallel-parity tests pin this down.
///
/// # Errors
/// Any [`ExecError`], including [`ExecError::ResourceExhausted`] when a
/// budget is exceeded.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_dop(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    limits: ResourceLimits,
    mode: ExecMode,
    dop: usize,
) -> Result<(ExecSummary, StartupResult), ExecError> {
    execute_inner(plan, db, catalog, env, bindings, limits, mode, dop, None)
        .map(|(summary, startup, _)| (summary, startup))
}

/// [`execute_plan_dop`] with per-operator tracing: every compiled node
/// records a [`crate::SpanRecord`] (rows, batches, wall time, CPU/I/O
/// deltas, memory high-water, DOP) and every choose-plan arbitration a
/// [`crate::ChooseAudit`], returned as a [`TraceReport`] alongside the
/// summary. Rendering lives in [`crate::render_explain`] /
/// [`crate::explain_json`].
///
/// Results, counter totals, and fallback behavior are identical to the
/// untraced entry points — the tracing wrappers only observe
/// (`tests/observability.rs` pins this down with a parity proptest).
///
/// # Errors
/// Any [`ExecError`], as [`execute_plan_dop`].
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_traced(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    limits: ResourceLimits,
    mode: ExecMode,
    dop: usize,
) -> Result<(ExecSummary, StartupResult, TraceReport), ExecError> {
    let tracer = Arc::new(Tracer::new());
    execute_inner(
        plan,
        db,
        catalog,
        env,
        bindings,
        limits,
        mode,
        dop,
        Some(tracer),
    )
}

/// Shared body of [`execute_plan_dop`] (tracer `None`) and
/// [`execute_plan_traced`] (tracer `Some`): one code path, so "tracing
/// disabled" *is* the plain entry point, not a near-copy of it.
#[allow(clippy::too_many_arguments)]
fn execute_inner(
    plan: &Arc<PlanNode>,
    db: &StoredDatabase,
    catalog: &Catalog,
    env: &Environment,
    bindings: &Bindings,
    limits: ResourceLimits,
    mode: ExecMode,
    dop: usize,
    tracer: Option<Arc<Tracer>>,
) -> Result<(ExecSummary, StartupResult, TraceReport), ExecError> {
    let startup = evaluate_startup(plan, catalog, env, bindings);
    let memory_pages = bindings
        .memory_pages
        .unwrap_or_else(|| env.memory.expected());
    let memory_bytes = (memory_pages * catalog.config.page_size as f64) as usize;
    let mut ctx = ExecContext::with_limits(SharedCounters::new(), limits)
        .with_mode(mode)
        .with_dop(dop);
    if let Some(tracer) = &tracer {
        ctx = ctx.with_tracer(Arc::clone(tracer));
    }
    let io_before = db.disk.stats();
    let rows = run_dynamic(plan, db, catalog, env, bindings, memory_bytes, &ctx)?;
    let io = db.disk.stats().since(&io_before);
    let report = tracer.map(|t| t.report()).unwrap_or_default();
    Ok((
        ExecSummary {
            rows,
            cpu: ctx.counters.snapshot(),
            io,
            fallbacks: ctx.counters.fallbacks(),
            ..ExecSummary::default()
        },
        startup,
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::drain;
    use dqep_algebra::{CompareOp, HostVar, LogicalExpr};
    use dqep_catalog::{CatalogBuilder, SystemConfig};
    use dqep_core::Optimizer;

    /// Two small relations joined on `j`, selection on `r.a`.
    fn fixture() -> (Catalog, StoredDatabase) {
        let cat = CatalogBuilder::new(SystemConfig::paper_1994())
            .relation("r", 400, 512, |r| {
                r.attr("a", 400.0).attr("j", 50.0).btree("a", false).btree("j", false)
            })
            .relation("s", 300, 512, |r| {
                r.attr("a", 300.0).attr("j", 50.0).btree("a", false).btree("j", false)
            })
            .build()
            .unwrap();
        let db = StoredDatabase::generate(&cat, 99);
        (cat, db)
    }

    fn select_query(cat: &Catalog) -> LogicalExpr {
        let r = cat.relation_by_name("r").unwrap();
        LogicalExpr::get(r.id).select(SelectPred::unbound(
            r.attr_id("a").unwrap(),
            CompareOp::Lt,
            HostVar(0),
        ))
    }

    #[test]
    fn executes_resolved_selection_and_counts_match_ground_truth() {
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env)
            .optimize(&select_query(&cat))
            .unwrap()
            .plan;
        for v in [0i64, 40, 200, 400] {
            let bindings = Bindings::new().with_value(HostVar(0), v);
            let (summary, _) = execute_plan(&plan, &db, &cat, &env, &bindings).unwrap();
            // Ground truth from a raw heap scan.
            let table = db.table(cat.relation_by_name("r").unwrap().id);
            let expected = table
                .heap
                .scan()
                .map(Result::unwrap)
                .filter(|rec| table.decode(rec)[0] < v)
                .count() as u64;
            assert_eq!(summary.rows, expected, "binding {v}");
        }
    }

    #[test]
    fn alternative_plans_agree_on_results() {
        // Both alternatives of the Figure 1 choose-plan produce the same
        // rows; only their cost differs.
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env)
            .optimize(&select_query(&cat))
            .unwrap()
            .plan;
        assert!(plan.is_choose_plan());
        let bindings = Bindings::new().with_value(HostVar(0), 120);
        let ctx = ExecContext::new(SharedCounters::new());
        let mut results: Vec<u64> = Vec::new();
        for alt in &plan.children {
            let mut op = compile_plan(alt, &db, &cat, &bindings, 1 << 20, &ctx).unwrap();
            results.push(drain(op.as_mut()).unwrap().len() as u64);
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
    }

    #[test]
    fn chosen_alternative_is_faster_in_simulated_time() {
        // The headline validation: the start-up decision picks the plan
        // that is actually faster when executed on stored data.
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env)
            .optimize(&select_query(&cat))
            .unwrap()
            .plan;
        for v in [4i64, 396] {
            let bindings = Bindings::new().with_value(HostVar(0), v);
            let startup = evaluate_startup(&plan, &cat, &env, &bindings);
            let mut times = Vec::new();
            for alt in &plan.children {
                let ctx = ExecContext::new(SharedCounters::new());
                let before = db.disk.stats();
                let mut op = compile_plan(alt, &db, &cat, &bindings, 1 << 20, &ctx).unwrap();
                let _ = drain(op.as_mut()).unwrap();
                let io = db.disk.stats().since(&before);
                let summary = ExecSummary {
                    rows: 0,
                    cpu: ctx.counters.snapshot(),
                    io,
                    ..ExecSummary::default()
                };
                times.push(summary.simulated_seconds(&cat.config));
            }
            let chosen = startup.decisions[0].chosen_index;
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                times[chosen] <= min * 1.3 + 1e-9,
                "binding {v}: chose {chosen} ({:.4}s) but best is {min:.4}s ({times:?})",
                times[chosen]
            );
        }
    }

    #[test]
    fn join_query_executes_and_matches_nested_loop_ground_truth() {
        let (cat, db) = fixture();
        let r = cat.relation_by_name("r").unwrap();
        let s = cat.relation_by_name("s").unwrap();
        let q = LogicalExpr::get(r.id)
            .select(SelectPred::unbound(
                r.attr_id("a").unwrap(),
                CompareOp::Lt,
                HostVar(0),
            ))
            .join(
                LogicalExpr::get(s.id),
                vec![JoinPred::new(r.attr_id("j").unwrap(), s.attr_id("j").unwrap())],
            );
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env).optimize(&q).unwrap().plan;

        let bindings = Bindings::new().with_value(HostVar(0), 100);
        let (summary, _) = execute_plan(&plan, &db, &cat, &env, &bindings).unwrap();

        // Ground truth: nested loops over raw heap scans.
        let rt = db.table(r.id);
        let st = db.table(s.id);
        let r_rows: Vec<Vec<i64>> =
            rt.heap.scan().map(|rec| rt.decode(&rec.unwrap())).collect();
        let s_rows: Vec<Vec<i64>> =
            st.heap.scan().map(|rec| st.decode(&rec.unwrap())).collect();
        let expected = r_rows
            .iter()
            .filter(|row| row[0] < 100)
            .map(|row| s_rows.iter().filter(|srow| srow[1] == row[1]).count() as u64)
            .sum::<u64>();
        assert_eq!(summary.rows, expected);
        assert!(summary.io.total() > 0);
        assert!(summary.cpu.records > 0);
        assert_eq!(summary.fallbacks, 0, "no faults: no fallbacks");
    }

    #[test]
    fn unbound_host_var_is_reported() {
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env)
            .optimize(&select_query(&cat))
            .unwrap()
            .plan;
        let err = execute_plan(&plan, &db, &cat, &env, &Bindings::new());
        // Start-up evaluation falls back to defaults, but compilation of a
        // predicate with no binding must fail.
        assert_eq!(err.unwrap_err(), ExecError::UnboundHostVar(HostVar(0)));
    }

    #[test]
    fn choose_plan_rejected_by_direct_compile() {
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env)
            .optimize(&select_query(&cat))
            .unwrap()
            .plan;
        assert!(plan.is_choose_plan());
        let err = compile_plan(
            &plan,
            &db,
            &cat,
            &Bindings::new().with_value(HostVar(0), 1),
            1 << 20,
            &ExecContext::new(SharedCounters::new()),
        );
        assert_eq!(err.err(), Some(ExecError::UnresolvedChoosePlan));
    }

    #[test]
    fn row_limit_aborts_execution() {
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env)
            .optimize(&select_query(&cat))
            .unwrap()
            .plan;
        let bindings = Bindings::new().with_value(HostVar(0), 400);
        let limits = ResourceLimits {
            max_rows: Some(10),
            ..ResourceLimits::default()
        };
        let err = execute_plan_with(&plan, &db, &cat, &env, &bindings, limits).unwrap_err();
        assert_eq!(
            err,
            ExecError::ResourceExhausted(crate::error::Resource::Rows { limit: 10 })
        );
        // The same query under a generous limit succeeds.
        let limits = ResourceLimits {
            max_rows: Some(1_000_000),
            ..ResourceLimits::default()
        };
        assert!(execute_plan_with(&plan, &db, &cat, &env, &bindings, limits).is_ok());
    }

    #[test]
    fn io_limit_aborts_execution() {
        let (cat, db) = fixture();
        let env = Environment::dynamic_compile_time(&cat.config);
        let plan = Optimizer::new(&cat, &env)
            .optimize(&select_query(&cat))
            .unwrap()
            .plan;
        let bindings = Bindings::new().with_value(HostVar(0), 400);
        let limits = ResourceLimits {
            max_io: Some(2),
            ..ResourceLimits::default()
        };
        let err = execute_plan_with(&plan, &db, &cat, &env, &bindings, limits).unwrap_err();
        assert_eq!(
            err,
            ExecError::ResourceExhausted(crate::error::Resource::Io { limit: 2 })
        );
    }
}
