//! Offline shim for `proptest`.
//!
//! See `shims/README.md`. Provides the macro-and-strategy surface the
//! workspace's property tests use — `proptest!`, `prop_assert*!`,
//! `prop_assume!`, range/tuple/`vec`/`any` strategies with `prop_map` and
//! `prop_flat_map` — backed by a deterministic per-test generator.
//! Unlike the real crate there is no shrinking: a failing case reports
//! the raw inputs via the panic message (inputs are reproducible because
//! case seeds derive from the test's module path and name alone).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator handed to strategies (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128) % span) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drives the cases of one property (used by the `proptest!` expansion).
#[derive(Debug)]
pub struct TestRunner {
    seed: u64,
}

impl TestRunner {
    /// A runner whose case seeds derive from the test's identity, so runs
    /// are reproducible without any persisted state.
    #[must_use]
    pub fn new(_config: &ProptestConfig, module_path: &str, test_name: &str) -> TestRunner {
        let mut seed = 0xCBF2_9CE4_8422_2325u64;
        for b in module_path.bytes().chain(test_name.bytes()) {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { seed }
    }

    /// The generator for case number `case`.
    #[must_use]
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng {
            state: self.seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples
    /// the produced strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API-compat helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A uniform choice among boxed strategies; built by [`prop_oneof!`].
/// (Real proptest supports per-branch weights; the shim picks uniformly.)
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_inclusive(0, self.options.len() - 1);
        self.options[i].generate(rng)
    }
}

/// Picks one of the listed strategies per case, uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- numeric range strategies -----------------------------------------

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + ((rng.next_u64() as u128) % span) as i128) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

// ---- tuple strategies -------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

// ---- `any` ------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// One arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The full-domain strategy of `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- collections ------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_inclusive(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- macros -----------------------------------------------------------

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __runner =
                    $crate::TestRunner::new(&__cfg, ::core::module_path!(), ::core::stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng = __runner.rng_for_case(__case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a property (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// The glob-import surface: strategies, macros, and config.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, TestRunner, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0i64..10, 5u64..=6), v in collection::vec(any::<bool>(), 3)) {
            prop_assert!((0..10).contains(&a));
            prop_assert!((5..=6).contains(&b));
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn maps_and_assume(x in (1usize..=3).prop_flat_map(|n| collection::vec(0.0f64..=1.0, n))) {
            prop_assume!(!x.is_empty());
            let m = x.iter().cloned().fold(f64::NAN, f64::max);
            prop_assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let cfg = ProptestConfig::default();
        let r1 = TestRunner::new(&cfg, "m", "t");
        let r2 = TestRunner::new(&cfg, "m", "t");
        let mut a = r1.rng_for_case(5);
        let mut b = r2.rng_for_case(5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRunner::new(&cfg, "m", "other").rng_for_case(5);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
