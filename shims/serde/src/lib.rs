//! Offline shim for `serde`.
//!
//! See `shims/README.md`. The workspace uses serde purely as derive
//! decoration on plain-old-data types; no code path serializes. The shim
//! therefore re-exports no-op derive macros and nothing else.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
