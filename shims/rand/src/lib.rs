//! Offline shim for `rand` 0.8.
//!
//! See `shims/README.md`. Implements the API subset the workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! and `Rng::gen` — on top of xoshiro256++ seeded via SplitMix64.
//! Streams are deterministic per seed but differ from the real crate's,
//! which only reshuffles the synthetic data the experiments generate.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derives a full seed from one `u64` (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A sample from the "standard" distribution of `T` (uniform bits for
    /// integers, uniform `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 seed expansion, as rand does for small seeds.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types sampleable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// The largest value strictly below `self` (for half-open ranges);
    /// for floats this is `self` itself (measure-zero endpoint).
    fn below(self) -> Self;
}

macro_rules! impl_sample_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                // Rejection-free modulo; bias is negligible for spans far
                // below 2^64 (all workspace uses).
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $ty
            }
            fn below(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
    fn below(self) -> Self {
        self
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_inclusive(f64::from(lo), f64::from(hi), rng) as f32
    }
    fn below(self) -> Self {
        self
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// A single uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(self.start, self.end.below(), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The "standard" distribution of a type.
pub trait Standard: Sized {
    /// One standard sample.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!((0..16).any(|_| c.next_u64() != 0));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            let v: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let w: u64 = rng.gen_range(10..=20);
            assert!((10..=20).contains(&w));
            let f: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
