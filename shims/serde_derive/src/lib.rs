//! Offline shim for `serde_derive`.
//!
//! The build environment has no network access to the crates registry, so
//! the workspace vendors a minimal stand-in (see `shims/README.md`). The
//! repo only *annotates* types with `#[derive(Serialize, Deserialize)]`
//! and never serializes, so the derives expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
