//! Offline shim for `parking_lot`.
//!
//! See `shims/README.md`. Wraps `std::sync` primitives with the
//! `parking_lot` calling convention: `lock()` returns the guard directly.
//! Poisoning is absorbed (`parking_lot` has no poisoning) by recovering
//! the inner guard, which matches `parking_lot`'s behaviour of letting a
//! panicked critical section's partial state remain visible.

use std::fmt;
use std::sync::PoisonError;

/// A mutex with the `parking_lot` API shape.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// An RAII mutex guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with the `parking_lot` API shape.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
