//! Offline shim for `criterion`.
//!
//! See `shims/README.md`. Runs each registered benchmark for a small,
//! fixed number of iterations and prints mean wall-clock per iteration —
//! enough to exercise every bench path and give ballpark numbers, without
//! the real crate's statistics, warm-up, or reporting.

use std::fmt;
use std::time::Instant;

/// Hands the benchmarked closure to the timing loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last [`Bencher::iter`] call.
    last_nanos: f64,
}

impl Bencher {
    /// Times `f` over a fixed iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_nanos = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A compound benchmark id (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The benchmark harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the per-benchmark iteration count.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one("", name, self.sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, iters: usize, mut f: F) {
    let mut b = Bencher {
        iters: iters as u64,
        last_nanos: 0.0,
    };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!("bench {label:<48} {:>12.0} ns/iter (n={iters})", b.last_nanos);
}

/// Declares a group of benchmark functions; supports both the positional
/// and the `name =`/`config =`/`targets =` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// The entry point running every declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    }

    #[test]
    fn group_macro_runs_targets() {
        benches();
    }

    #[test]
    fn ids_render_as_paths() {
        assert_eq!(BenchmarkId::new("opt", 7).to_string(), "opt/7");
        assert_eq!(black_box(5), 5);
    }
}
