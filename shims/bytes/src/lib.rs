//! Offline shim for `bytes`.
//!
//! See `shims/README.md`. Implements the subset the workspace uses:
//! [`BytesMut`] as an append-only builder with big-endian `put_*`
//! methods, [`Bytes`] as a cheaply-cloneable immutable view with
//! consuming big-endian `get_*` methods, and [`Buf`]/[`BufMut`] traits
//! naming those capabilities (the real crate's wire-compatible
//! big-endian encoding is preserved).

use std::sync::Arc;

/// Read-side byte cursor operations (big-endian).
pub trait Buf {
    /// Bytes remaining ahead of the cursor.
    fn remaining(&self) -> usize;
    /// Consumes and returns one byte.
    fn get_u8(&mut self) -> u8;
    /// Consumes and returns a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Consumes and returns a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consumes and returns a big-endian `i64`.
    fn get_i64(&mut self) -> i64;
    /// Consumes and returns a big-endian `f64`.
    fn get_f64(&mut self) -> f64;
}

/// Write-side byte sink operations (big-endian).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64);
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64);
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Freezes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data.into_boxed_slice()),
            start: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
}

/// An immutable, cheaply-cloneable byte sequence with an internal read
/// cursor (advanced by the [`Buf`] `get_*` methods).
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
}

impl Bytes {
    /// A view over a static slice.
    #[must_use]
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(s),
            start: 0,
        }
    }

    /// Copies a slice into a new `Bytes`.
    #[must_use]
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(s),
            start: 0,
        }
    }

    /// Remaining length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the remaining bytes.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        let abs = (self.start + range.start)..(self.start + range.end);
        assert!(abs.end <= self.data.len(), "slice out of bounds");
        Bytes {
            data: Arc::from(&self.data[abs]),
            start: 0,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underflow");
        let s = &self.data[self.start..self.start + n];
        self.start += n;
        s
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

macro_rules! get_be {
    ($self:ident, $ty:ty) => {{
        let n = std::mem::size_of::<$ty>();
        let mut a = [0u8; std::mem::size_of::<$ty>()];
        a.copy_from_slice($self.take(n));
        <$ty>::from_be_bytes(a)
    }};
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }
    fn get_u16(&mut self) -> u16 {
        get_be!(self, u16)
    }
    fn get_u32(&mut self) -> u32 {
        get_be!(self, u32)
    }
    fn get_i64(&mut self) -> i64 {
        get_be!(self, i64)
    }
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(get_be!(self, u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_is_big_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xAB);
        b.put_u16(0x0102);
        b.put_u32(0xDEAD_BEEF);
        b.put_i64(-5);
        b.put_f64(1.5);
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 8);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 23);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64(), -5);
        assert_eq!(r.get_f64(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slices_and_views() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(Bytes::from_static(&[9, 9]).len(), 2);
        let mut c = b.clone();
        let _ = c.get_u8();
        assert_eq!(c.len(), 4);
        assert_eq!(b.len(), 5, "clones advance independently");
    }
}
